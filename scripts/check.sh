#!/usr/bin/env bash
# Repo gate: lint (when ruff is available) + the tier-1 test suite + the
# chaos determinism gate (same seed, two processes, identical outcomes) +
# the data-cache coherence gate (warm == cold rows, hit ratio > 0, and the
# report is byte-identical across processes) + the scheduler determinism
# gate (same seed, two processes, byte-identical task timelines) + the
# serve determinism gate (same seed, two processes, byte-identical
# multi-principal reports, plain and under chaos) + the monitor
# determinism gate (same seed, two processes, byte-identical telemetry
# reports — RESERVATION_TIMELINE tie-out, alert log, variance table —
# plain and under chaos) + the transaction determinism gate (same seed,
# two processes, byte-identical chaos-workload reports — commit timeline,
# recovery actions, torn-state oracle — plain and under chaos) + the
# readsession determinism gate (same seed, two processes, byte-identical
# session-handoff reports — scaling/rebalance legs, row CRCs, consumer
# timelines — plain and under chaos) + the query-cache coherence gate
# (warm result-cache hit is byte-identical to the cold run with zero scan
# and strictly fewer GETs, DML invalidates by keying without flushing,
# and the walkthrough is byte-identical across processes).
# Usage: scripts/check.sh  (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== pytest (tier 1) =="
PYTHONPATH=src python -m pytest -x -q

echo "== data-cache coherence gate =="
# The CLI itself exits non-zero if the warm rows differ from the cold run
# or no bytes were served from cache; diffing two runs pins determinism.
cache_a="$(mktemp)" cache_b="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b"' EXIT
PYTHONPATH=src python -m repro cache-stats > "$cache_a"
PYTHONPATH=src python -m repro cache-stats > "$cache_b"
if diff -u "$cache_a" "$cache_b"; then
    echo "cache-stats run is deterministic"
else
    echo "cache determinism gate FAILED: two runs produced different stats" >&2
    exit 1
fi

echo "== query-cache coherence gate =="
# The CLI itself exits non-zero if the warm hit's rows differ from the
# cold run, the hit scans any bytes or fails to save GETs, or DML serves
# a stale entry / flushes the tier; diffing two runs pins determinism.
qc_a="$(mktemp)" qc_b="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b"' EXIT
PYTHONPATH=src python -m repro querycache > "$qc_a"
PYTHONPATH=src python -m repro querycache > "$qc_b"
if diff -u "$qc_a" "$qc_b"; then
    echo "querycache run is deterministic"
else
    echo "query-cache coherence gate FAILED: two runs produced different reports" >&2
    exit 1
fi

echo "== chaos determinism gate =="
chaos_a="$(mktemp)" chaos_b="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b"' EXIT
PYTHONPATH=src python -m repro chaos --suite --seed 1234 --rate 0.05 \
    --json "$chaos_a" >/dev/null
PYTHONPATH=src python -m repro chaos --suite --seed 1234 --rate 0.05 \
    --json "$chaos_b" >/dev/null
if diff -u "$chaos_a" "$chaos_b"; then
    echo "chaos run is deterministic"
else
    echo "chaos determinism gate FAILED: same seed produced different runs" >&2
    exit 1
fi

echo "== scheduler determinism gate =="
# The CLI itself exits non-zero if speculation changes any row or makes
# the query slower; diffing two same-seed reports pins the task timeline
# (slot placement, straggler draws, backup launches) byte-for-byte.
sched_a="$(mktemp)" sched_b="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b" "$sched_a" "$sched_b"' EXIT
PYTHONPATH=src python -m repro schedule --seed 1234 --json "$sched_a" >/dev/null
PYTHONPATH=src python -m repro schedule --seed 1234 --json "$sched_b" >/dev/null
if diff -u "$sched_a" "$sched_b"; then
    echo "schedule run is deterministic"
else
    echo "scheduler determinism gate FAILED: same seed produced different timelines" >&2
    exit 1
fi

echo "== serve determinism gate =="
# The CLI itself exits non-zero if the in-memory job handles disagree
# with INFORMATION_SCHEMA.JOBS; diffing two same-seed reports pins the
# whole multi-principal run (arrivals, admission order, queue waits,
# result CRCs) byte-for-byte — with and without the chaos plan.
serve_a="$(mktemp)" serve_b="$(mktemp)" serve_ca="$(mktemp)" serve_cb="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b" "$sched_a" "$sched_b" \
    "$serve_a" "$serve_b" "$serve_ca" "$serve_cb"' EXIT
PYTHONPATH=src python -m repro serve --smoke --seed 1234 --json "$serve_a" >/dev/null
PYTHONPATH=src python -m repro serve --smoke --seed 1234 --json "$serve_b" >/dev/null
if diff -u "$serve_a" "$serve_b"; then
    echo "serve run is deterministic"
else
    echo "serve determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi
PYTHONPATH=src python -m repro serve --smoke --chaos --seed 1234 --json "$serve_ca" >/dev/null
PYTHONPATH=src python -m repro serve --smoke --chaos --seed 1234 --json "$serve_cb" >/dev/null
if diff -u "$serve_ca" "$serve_cb"; then
    echo "serve run under chaos is deterministic"
else
    echo "serve chaos determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi

echo "== monitor determinism gate =="
# The CLI itself exits non-zero if the RESERVATION_TIMELINE tie-out
# breaks or a chaos run fires no burn-rate alert; diffing two same-seed
# reports pins the whole telemetry pipeline (scrape grid, reservation
# intervals, alert transitions, variance attribution) byte-for-byte —
# with and without the chaos plan.
mon_a="$(mktemp)" mon_b="$(mktemp)" mon_ca="$(mktemp)" mon_cb="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b" "$sched_a" "$sched_b" \
    "$serve_a" "$serve_b" "$serve_ca" "$serve_cb" \
    "$mon_a" "$mon_b" "$mon_ca" "$mon_cb"' EXIT
PYTHONPATH=src python -m repro monitor --smoke --seed 1234 --json "$mon_a" >/dev/null
PYTHONPATH=src python -m repro monitor --smoke --seed 1234 --json "$mon_b" >/dev/null
if diff -u "$mon_a" "$mon_b"; then
    echo "monitor run is deterministic"
else
    echo "monitor determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi
PYTHONPATH=src python -m repro monitor --smoke --chaos --seed 1234 --json "$mon_ca" >/dev/null
PYTHONPATH=src python -m repro monitor --smoke --chaos --seed 1234 --json "$mon_cb" >/dev/null
if diff -u "$mon_ca" "$mon_cb"; then
    echo "monitor run under chaos is deterministic"
else
    echo "monitor chaos determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi

echo "== transaction determinism gate =="
# The CLI itself exits non-zero if the chaos oracle sees a torn state, a
# dangling intent survives recovery, or any transaction fails to land;
# diffing two same-seed reports pins the whole run (writer interleaving,
# conflict losers, crash points, recovery actions, commit timeline)
# byte-for-byte — with and without the chaos plan.
txn_a="$(mktemp)" txn_b="$(mktemp)" txn_ca="$(mktemp)" txn_cb="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b" "$sched_a" "$sched_b" \
    "$serve_a" "$serve_b" "$serve_ca" "$serve_cb" \
    "$mon_a" "$mon_b" "$mon_ca" "$mon_cb" \
    "$txn_a" "$txn_b" "$txn_ca" "$txn_cb"' EXIT
PYTHONPATH=src python -m repro txn --smoke --seed 1234 --json "$txn_a" >/dev/null
PYTHONPATH=src python -m repro txn --smoke --seed 1234 --json "$txn_b" >/dev/null
if diff -u "$txn_a" "$txn_b"; then
    echo "txn run is deterministic"
else
    echo "txn determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi
PYTHONPATH=src python -m repro txn --smoke --chaos --seed 1234 --json "$txn_ca" >/dev/null
PYTHONPATH=src python -m repro txn --smoke --chaos --seed 1234 --json "$txn_cb" >/dev/null
if diff -u "$txn_ca" "$txn_cb"; then
    echo "txn run under chaos is deterministic"
else
    echo "txn chaos determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi

echo "== readsession determinism gate =="
# The CLI itself exits non-zero if rebalancing changes any returned row
# (CRC mismatch) or fails to recover lag-induced makespan inflation;
# diffing two same-seed reports pins the whole handoff run (stream
# layout, consumer timelines, rebalance moves, row CRCs) byte-for-byte —
# with and without the chaos plan.
rs_a="$(mktemp)" rs_b="$(mktemp)" rs_ca="$(mktemp)" rs_cb="$(mktemp)"
trap 'rm -f "$cache_a" "$cache_b" "$qc_a" "$qc_b" "$chaos_a" "$chaos_b" "$sched_a" "$sched_b" \
    "$serve_a" "$serve_b" "$serve_ca" "$serve_cb" \
    "$mon_a" "$mon_b" "$mon_ca" "$mon_cb" \
    "$txn_a" "$txn_b" "$txn_ca" "$txn_cb" \
    "$rs_a" "$rs_b" "$rs_ca" "$rs_cb"' EXIT
PYTHONPATH=src python -m repro readsession --smoke --seed 1234 --json "$rs_a" >/dev/null
PYTHONPATH=src python -m repro readsession --smoke --seed 1234 --json "$rs_b" >/dev/null
if diff -u "$rs_a" "$rs_b"; then
    echo "readsession run is deterministic"
else
    echo "readsession determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi
PYTHONPATH=src python -m repro readsession --smoke --chaos --seed 1234 --json "$rs_ca" >/dev/null
PYTHONPATH=src python -m repro readsession --smoke --chaos --seed 1234 --json "$rs_cb" >/dev/null
if diff -u "$rs_ca" "$rs_cb"; then
    echo "readsession run under chaos is deterministic"
else
    echo "readsession chaos determinism gate FAILED: same seed produced different reports" >&2
    exit 1
fi
