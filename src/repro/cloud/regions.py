"""Cloud providers, regions, and link classification."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.simtime import CostModel, MIB


class Cloud(enum.Enum):
    """Cloud providers Omni spans (§5: GCP control plane; AWS/Azure data planes)."""

    GCP = "gcp"
    AWS = "aws"
    AZURE = "azure"


@dataclass(frozen=True)
class Region:
    """A (cloud, region-name) pair; its string form is a *location*."""

    cloud: Cloud
    name: str

    @property
    def location(self) -> str:
        return f"{self.cloud.value}/{self.name}"

    @staticmethod
    def parse(location: str) -> "Region":
        cloud_name, _, region_name = location.partition("/")
        return Region(Cloud(cloud_name), region_name)

    def __str__(self) -> str:
        return self.location


class LinkKind(enum.Enum):
    """How two locations relate, which determines transfer cost."""

    LOCAL = "local"  # same cloud, same region
    CROSS_REGION = "cross_region"  # same cloud, different region
    CROSS_CLOUD = "cross_cloud"  # different clouds


def classify_link(source: str, destination: str) -> LinkKind:
    """Classify the link between two ``cloud/region`` locations."""
    src = Region.parse(source)
    dst = Region.parse(destination)
    if src.cloud is not dst.cloud:
        return LinkKind.CROSS_CLOUD
    if src.name != dst.name:
        return LinkKind.CROSS_REGION
    return LinkKind.LOCAL


def transfer_latency_ms(costs: CostModel, source: str, destination: str, num_bytes: int) -> float:
    """Simulated time to move ``num_bytes`` from ``source`` to ``destination``."""
    kind = classify_link(source, destination)
    if kind is LinkKind.LOCAL:
        return costs.transfer_ms(num_bytes, costs.in_region_per_mib_ms, costs.in_region_rtt_ms)
    if kind is LinkKind.CROSS_REGION:
        return costs.transfer_ms(num_bytes, costs.cross_region_per_mib_ms, costs.cross_region_rtt_ms)
    return costs.transfer_ms(num_bytes, costs.cross_cloud_per_mib_ms, costs.cross_cloud_rtt_ms)


def egress_cost_usd(costs: CostModel, source: str, destination: str, num_bytes: int) -> float:
    """Dollar cost of egress between two locations (zero in-region)."""
    kind = classify_link(source, destination)
    if kind is LinkKind.LOCAL:
        return 0.0
    gib = num_bytes / (MIB * 1024.0)
    # Cross-region same-cloud egress is priced at roughly half of
    # cross-cloud egress; the benchmarks only rely on cross-cloud > 0.
    if kind is LinkKind.CROSS_REGION:
        return gib * costs.cross_cloud_egress_usd_per_gib * 0.5
    return gib * costs.cross_cloud_egress_usd_per_gib
