"""Clouds, regions, and network links between them.

Omni's whole premise (§5) is that data lives in regions of different cloud
providers and moving bytes between them costs real time and money. This
package gives every component a *location* (``cloud/region``) and a way to
price a transfer between two locations.
"""

from repro.cloud.regions import (
    Cloud,
    Region,
    LinkKind,
    classify_link,
    transfer_latency_ms,
    egress_cost_usd,
)

__all__ = [
    "Cloud",
    "Region",
    "LinkKind",
    "classify_link",
    "transfer_latency_ms",
    "egress_cost_usd",
]
