"""Column constraints for partition and file pruning.

A :class:`ConstraintSet` is the engine-independent result of analyzing a
conjunctive predicate: per column, an optional inclusive range and an
optional IN-set. Big Metadata, the Hive baseline, file footers, and the
read-session pruner all consume the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ColumnConstraint:
    """Inclusive range and/or IN-set constraint on one column."""

    lo: Any = None
    hi: Any = None
    in_set: frozenset | None = None

    def merge_and(self, other: "ColumnConstraint") -> "ColumnConstraint":
        """Tighten: both constraints must hold."""
        lo = self.lo
        if other.lo is not None and (lo is None or other.lo > lo):
            lo = other.lo
        hi = self.hi
        if other.hi is not None and (hi is None or other.hi < hi):
            hi = other.hi
        if self.in_set is not None and other.in_set is not None:
            in_set = self.in_set & other.in_set
        else:
            in_set = self.in_set if self.in_set is not None else other.in_set
        return ColumnConstraint(lo=lo, hi=hi, in_set=in_set)

    def admits_range(self, file_min: Any, file_max: Any) -> bool:
        """Could any value in ``[file_min, file_max]`` satisfy the constraint?

        ``None`` bounds mean "unknown" and must be admitted (pruning is only
        sound when statistics prove emptiness).
        """
        if self.lo is not None and file_max is not None and file_max < self.lo:
            return False
        if self.hi is not None and file_min is not None and file_min > self.hi:
            return False
        if self.in_set is not None and file_min is not None and file_max is not None:
            if not any(file_min <= v <= file_max for v in self.in_set):
                return False
        return True

    def admits_value(self, value: Any) -> bool:
        """Does a concrete (partition) value satisfy the constraint?"""
        if value is None:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        if self.in_set is not None and value not in self.in_set:
            return False
        return True

    @property
    def is_trivial(self) -> bool:
        return self.lo is None and self.hi is None and self.in_set is None


@dataclass
class ConstraintSet:
    """Per-column constraints implied by a conjunctive predicate."""

    columns: dict[str, ColumnConstraint] = field(default_factory=dict)

    def add(self, column: str, constraint: ColumnConstraint) -> None:
        key = column.lower()
        existing = self.columns.get(key)
        if existing is None:
            self.columns[key] = constraint
        else:
            self.columns[key] = existing.merge_and(constraint)

    def get(self, column: str) -> ColumnConstraint | None:
        return self.columns.get(column.lower())

    def merged_with(self, other: "ConstraintSet") -> "ConstraintSet":
        out = ConstraintSet(dict(self.columns))
        for name, c in other.columns.items():
            out.add(name, c)
        return out

    @property
    def is_empty(self) -> bool:
        return not self.columns

    def __iter__(self):
        return iter(self.columns.items())
