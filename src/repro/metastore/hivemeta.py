"""Hive-Metastore-granularity baseline (§3.3).

The Hive Metastore tracks metadata at *partition* granularity: each
partition maps to a filesystem prefix, and nothing finer is known. Query
engines must LIST the object store under every surviving partition prefix
and read file footers to get statistics — the overhead Big Metadata's
file-granularity cache eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import NotFoundError
from repro.metastore.constraints import ConstraintSet
from repro.simtime import SimContext


@dataclass(frozen=True)
class HivePartition:
    """One partition: its column values and its storage prefix."""

    values: tuple[tuple[str, Any], ...]
    prefix: str  # key prefix within the table's bucket

    def value_map(self) -> dict[str, Any]:
        return dict(self.values)


@dataclass
class _HiveTable:
    table_id: str
    partition_columns: list[str]
    partitions: list[HivePartition] = field(default_factory=list)


class HiveMetastore:
    """Partition-prefix-only metadata service."""

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self._tables: dict[str, _HiveTable] = {}

    def register_table(self, table_id: str, partition_columns: list[str]) -> None:
        self._tables.setdefault(
            table_id, _HiveTable(table_id=table_id, partition_columns=list(partition_columns))
        )

    def add_partition(self, table_id: str, values: dict[str, Any], prefix: str) -> None:
        table = self._table(table_id)
        partition = HivePartition(values=tuple(sorted(values.items())), prefix=prefix)
        if partition not in table.partitions:
            table.partitions.append(partition)

    def partitions(self, table_id: str) -> list[HivePartition]:
        self.ctx.charge("hivemeta.list_partitions", self.ctx.costs.hive_partition_lookup_ms)
        return list(self._table(table_id).partitions)

    def prune_partitions(
        self, table_id: str, constraints: ConstraintSet
    ) -> list[HivePartition]:
        """Partition-level pruning: only constraints on partition columns
        help; everything else requires reading data files."""
        self.ctx.charge("hivemeta.prune", self.ctx.costs.hive_partition_lookup_ms)
        table = self._table(table_id)
        if constraints.is_empty:
            return list(table.partitions)
        survivors = []
        partition_cols = {c.lower() for c in table.partition_columns}
        for partition in table.partitions:
            values = {k.lower(): v for k, v in partition.values}
            keep = True
            for column, constraint in constraints:
                if column in partition_cols and column in values:
                    if not constraint.admits_value(values[column]):
                        keep = False
                        break
            if keep:
                survivors.append(partition)
        return survivors

    def _table(self, table_id: str) -> _HiveTable:
        try:
            return self._tables[table_id]
        except KeyError:
            raise NotFoundError(f"hive metastore has no table {table_id!r}") from None
