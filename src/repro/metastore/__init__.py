"""Catalog and metadata services.

* :mod:`repro.metastore.catalog` — the logical catalog (projects, datasets,
  tables of every kind the paper introduces: managed, BigLake external,
  BLMT, Object tables, materialized views).
* :mod:`repro.metastore.bigmeta` — Big Metadata (§3.3/§3.5): a columnar
  file-level metadata cache with a stateful transaction log (in-memory tail
  + periodically compacted columnar baselines), supporting snapshot reads,
  multi-table transactions, and high commit rates.
* :mod:`repro.metastore.hivemeta` — the Hive-Metastore-granularity baseline
  (partition prefixes only), used as the comparator in E1/E5.
* :mod:`repro.metastore.constraints` — plain column-range constraints used
  by partition/file pruning (engine-independent).
"""

from repro.metastore.catalog import (
    Catalog,
    Dataset,
    StorageDescriptor,
    TableInfo,
    TableKind,
    MetadataCacheConfig,
)
from repro.metastore.constraints import ColumnConstraint, ConstraintSet
from repro.metastore.bigmeta import (
    BigMetadataService,
    ColumnStats,
    FileEntry,
    MetaTransaction,
    TableMetadata,
)
from repro.metastore.hivemeta import HiveMetastore, HivePartition

__all__ = [
    "Catalog",
    "Dataset",
    "StorageDescriptor",
    "TableInfo",
    "TableKind",
    "MetadataCacheConfig",
    "ColumnConstraint",
    "ConstraintSet",
    "BigMetadataService",
    "ColumnStats",
    "FileEntry",
    "MetaTransaction",
    "TableMetadata",
    "HiveMetastore",
    "HivePartition",
]
