"""The logical catalog: projects, datasets, and table definitions.

§3's key idea: for BigLake tables, the catalog entry — not self-describing
files — is the source of truth for schema and governance, which is what
makes fine-grained security enforceable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.data.types import Schema
from repro.errors import AlreadyExistsError, CatalogError, NotFoundError
from repro.security.policies import TablePolicySet


class TableKind(enum.Enum):
    """Every table flavor the paper discusses."""

    MANAGED = "managed"  # BigQuery native storage
    EXTERNAL = "external"  # legacy read-only external table (pre-BigLake)
    BIGLAKE = "biglake"  # BigLake table over object storage (§3)
    BLMT = "blmt"  # BigLake managed table (§3.5)
    OBJECT = "object"  # Object table over unstructured data (§4.1)
    MATERIALIZED_VIEW = "materialized_view"


class MetadataCacheMode(enum.Enum):
    """Metadata-cache behaviour for BigLake/Object tables (§3.3)."""

    DISABLED = "disabled"
    MANUAL = "manual"
    AUTOMATIC = "automatic"


@dataclass
class MetadataCacheConfig:
    mode: MetadataCacheMode = MetadataCacheMode.DISABLED
    # Results may be served from cache while younger than this bound.
    max_staleness_ms: float = 3_600_000.0


@dataclass
class StorageDescriptor:
    """Where a table's bytes live."""

    bucket: str
    prefix: str
    file_format: str = "pqs"
    # ``cloud/region`` of the bucket; queries must run in a colocated engine.
    location: str = "gcp/us-central1"


@dataclass
class TableInfo:
    """One catalog entry."""

    project: str
    dataset: str
    name: str
    kind: TableKind
    schema: Schema
    storage: StorageDescriptor | None = None
    connection_name: str | None = None
    partition_columns: list[str] = field(default_factory=list)
    clustering_columns: list[str] = field(default_factory=list)
    policies: TablePolicySet = field(default_factory=TablePolicySet)
    cache_config: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    options: dict[str, Any] = field(default_factory=dict)
    version: int = 0  # bumped by every data commit

    @property
    def table_id(self) -> str:
        return f"{self.project}.{self.dataset}.{self.name}"

    @property
    def resource_name(self) -> str:
        """IAM resource path."""
        return f"projects/{self.project}/datasets/{self.dataset}/tables/{self.name}"

    @property
    def location(self) -> str:
        if self.storage is not None:
            return self.storage.location
        return self.options.get("location", "gcp/us-central1")


@dataclass
class Dataset:
    project: str
    name: str
    location: str = "gcp/us-central1"
    tables: dict[str, TableInfo] = field(default_factory=dict)

    @property
    def resource_name(self) -> str:
        return f"projects/{self.project}/datasets/{self.name}"


class Catalog:
    """Project-scoped dataset/table registry with cross-region visibility.

    One logical catalog spans all regions (the paper's "BigQuery
    cross-region metadata availability", §5.6.1) while table *data* remains
    regional; the control plane reads table locations from here to route
    queries.
    """

    def __init__(self, project: str = "repro-project") -> None:
        self.project = project
        self._datasets: dict[str, Dataset] = {}

    def create_dataset(self, name: str, location: str = "gcp/us-central1") -> Dataset:
        if name in self._datasets:
            raise AlreadyExistsError(f"dataset {name!r} already exists")
        ds = Dataset(project=self.project, name=name, location=location)
        self._datasets[name] = ds
        return ds

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise NotFoundError(f"dataset {name!r} not found") from None

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    def create_table(self, table: TableInfo, replace: bool = False) -> TableInfo:
        ds = self.dataset(table.dataset)
        if table.name in ds.tables and not replace:
            raise AlreadyExistsError(f"table {table.table_id} already exists")
        if table.kind in (TableKind.BIGLAKE, TableKind.BLMT, TableKind.OBJECT):
            if table.connection_name is None:
                raise CatalogError(
                    f"{table.kind.value} table {table.table_id} requires a connection "
                    "(delegated access, §3.1)"
                )
            if table.storage is None:
                raise CatalogError(f"{table.kind.value} table requires a storage descriptor")
        ds.tables[table.name] = table
        return table

    def get_table(self, dataset: str, name: str) -> TableInfo:
        ds = self.dataset(dataset)
        try:
            return ds.tables[name]
        except KeyError:
            raise NotFoundError(f"table {dataset}.{name} not found") from None

    def resolve(self, path: tuple[str, ...]) -> TableInfo:
        """Resolve a dotted SQL name: ``dataset.table`` or
        ``project.dataset.table``."""
        if len(path) == 2:
            return self.get_table(path[0], path[1])
        if len(path) == 3:
            if path[0] != self.project:
                raise NotFoundError(f"unknown project {path[0]!r}")
            return self.get_table(path[1], path[2])
        raise CatalogError(f"cannot resolve table name {'.'.join(path)!r}")

    def drop_table(self, dataset: str, name: str) -> None:
        ds = self.dataset(dataset)
        if name not in ds.tables:
            raise NotFoundError(f"table {dataset}.{name} not found")
        del ds.tables[name]

    def list_tables(self, dataset: str) -> list[TableInfo]:
        return list(self.dataset(dataset).tables.values())
