"""Big Metadata: scalable physical metadata management (§3.3, §3.5).

Per table, the service keeps a transaction log whose *tail* lives in memory
(a stateful service) and is periodically folded into *columnar baselines* —
numpy arrays of per-file statistics — for read efficiency. Queries read the
baseline and reconcile it with the tail, exactly the structure the paper
credits for BLMT's high mutation rate without sacrificing read performance.

The metadata cached per file matches §3.3: file name, partition values,
physical size, row count, and per-column min/max/null statistics at *file*
granularity (finer than Hive's partition granularity), enabling
high-performance partition and file pruning without object-store listing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.errors import CatalogError, NotFoundError, TransactionConflictError
from repro.metastore.constraints import ConstraintSet
from repro.simtime import SimContext


@dataclass(frozen=True)
class ColumnStats:
    """Per-file statistics for one column."""

    min_value: Any = None
    max_value: Any = None
    null_count: int = 0
    distinct_hint: int | None = None  # approximate NDV if the writer knows it


@dataclass(frozen=True)
class FileEntry:
    """One data file tracked in the metadata cache."""

    file_path: str  # "bucket/key"
    size_bytes: int
    row_count: int
    partition_values: tuple[tuple[str, Any], ...] = ()
    column_stats: tuple[tuple[str, ColumnStats], ...] = ()
    # Object-store generation of the file at registration time. Keys the
    # data cache (stale generations stop being addressed after rewrites);
    # 0 means unknown, which the cache treats as uncacheable.
    generation: int = 0

    def partition(self) -> dict[str, Any]:
        return dict(self.partition_values)

    def stats(self) -> dict[str, ColumnStats]:
        return dict(self.column_stats)

    def stats_for(self, column: str) -> ColumnStats | None:
        key = column.lower()
        for name, s in self.column_stats:
            if name.lower() == key:
                return s
        return None


@dataclass(frozen=True)
class LogRecord:
    """One committed mutation of one table's file set.

    ``txn_id`` is empty for ordinary (single-table, immediately visible)
    commits. A non-empty ``txn_id`` marks a record published by a
    multi-table transaction (:mod:`repro.txn`): the record is *pending*
    until the transaction's log marker reads COMMITTED, at which point it
    becomes visible with the marker's commit time as its effective
    timestamp — so every table of the transaction flips atomically for
    snapshot readers. Records of ABORTED transactions never become visible.
    """

    commit_id: int
    timestamp_ms: float
    added: tuple[FileEntry, ...]
    deleted: tuple[str, ...]  # file paths
    txn_id: str = ""


class ColumnarBaselineIndex:
    """Vectorized pruning over a compacted baseline.

    The paper stores baselines in *columnar* form for read efficiency;
    here the numeric per-file min/max statistics are transposed into numpy
    arrays at compaction time, so a pruning pass over N files is a handful
    of vectorized comparisons instead of N python-object walks. Non-numeric
    columns (strings, partition values) fall back to the per-entry check.
    """

    def __init__(self, entries: list[FileEntry]) -> None:
        self.entries = entries
        self._numeric: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        if not entries:
            return
        columns: set[str] = set()
        for entry in entries:
            for name, stats in entry.column_stats:
                if _is_numeric_stat(stats.min_value) and _is_numeric_stat(stats.max_value):
                    columns.add(name.lower())
        n = len(entries)
        for column in columns:
            mins = np.full(n, -np.inf)
            maxs = np.full(n, np.inf)
            known = np.zeros(n, dtype=bool)
            for i, entry in enumerate(entries):
                stats = entry.stats_for(column)
                if stats is None:
                    continue
                if _is_numeric_stat(stats.min_value) and _is_numeric_stat(stats.max_value):
                    mins[i] = float(stats.min_value)
                    maxs[i] = float(stats.max_value)
                    known[i] = True
            self._numeric[column] = (mins, maxs, known)

    def candidate_mask(self, constraints: ConstraintSet) -> np.ndarray:
        """Files that *may* satisfy the numeric constraints (vectorized)."""
        mask = np.ones(len(self.entries), dtype=bool)
        for column, constraint in constraints:
            indexed = self._numeric.get(column)
            if indexed is None:
                continue
            mins, maxs, known = indexed
            admitted = np.ones(len(self.entries), dtype=bool)
            if constraint.lo is not None and _is_numeric_stat(constraint.lo):
                admitted &= maxs >= float(constraint.lo)
            if constraint.hi is not None and _is_numeric_stat(constraint.hi):
                admitted &= mins <= float(constraint.hi)
            if constraint.in_set is not None:
                values = [v for v in constraint.in_set if _is_numeric_stat(v)]
                if len(values) == len(constraint.in_set) and values:
                    hits = np.zeros(len(self.entries), dtype=bool)
                    for v in values:
                        hits |= (mins <= float(v)) & (maxs >= float(v))
                    admitted &= hits
            # Files without statistics for this column stay candidates.
            mask &= admitted | ~known
        return mask


def _is_numeric_stat(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class TableMetadata:
    """The Big Metadata state for one table."""

    table_id: str
    # Compacted baseline: live files as of ``baseline_commit_id``.
    baseline: dict[str, FileEntry] = field(default_factory=dict)
    baseline_index: ColumnarBaselineIndex | None = None
    baseline_commit_id: int = 0
    # In-memory tail of the transaction log (records after the baseline).
    tail: list[LogRecord] = field(default_factory=list)
    # Full history for audit (the log is tamper-proof: append-only, owned
    # by the service, never writable by clients — §3.5).
    history: list[LogRecord] = field(default_factory=list)
    version: int = 0
    # Resolver for txn-tagged records: ``fn(txn_id) -> (state, commit_ms)``
    # against the transaction log's marker (set by the txn coordinator;
    # None means tagged records are unresolvable and stay invisible).
    txn_resolver: Any = None

    def record_visibility(self, record: LogRecord) -> tuple[bool, float]:
        """(visible, effective timestamp) of one log record.

        Untagged records are visible at their own commit time. Tagged
        records are visible iff their transaction's marker is COMMITTED —
        the marker is the sole source of truth — and their effective time
        is the *marker's* commit time, so all tables of one transaction
        flip at the same instant for as-of readers.
        """
        if not record.txn_id:
            return True, record.timestamp_ms
        if self.txn_resolver is None:
            return False, record.timestamp_ms
        state, commit_ms = self.txn_resolver(record.txn_id)
        if state == "COMMITTED":
            return True, commit_ms
        return False, record.timestamp_ms

    def live_entries(self, as_of_ms: float | None = None) -> dict[str, FileEntry]:
        """Reconstruct the live file set (baseline ⊕ tail), optionally at a
        past timestamp for snapshot reads. Pending/aborted transactional
        records are skipped; committed ones use their marker time."""
        live = dict(self.baseline)
        records: Iterable[LogRecord] = self.tail
        if as_of_ms is not None:
            # Snapshot semantics require replaying full history up to the
            # timestamp, since the baseline may already include later commits.
            live = {}
            records = self.history
        for record in records:
            visible, effective_ms = self.record_visibility(record)
            if not visible:
                continue
            if as_of_ms is not None and effective_ms > as_of_ms:
                continue
            for path in record.deleted:
                live.pop(path, None)
            for entry in record.added:
                live[entry.file_path] = entry
        return live


class MetaTransaction:
    """A multi-table atomic transaction against Big Metadata (§3.5).

    Usage::

        txn = service.begin()
        txn.stage(t1, added=[...], deleted=[...])
        txn.stage(t2, added=[...])
        txn.commit()

    Conflict rule (optimistic): appends always commute; a transaction that
    *deletes* files conflicts if its table advanced since the transaction
    began (a concurrent writer may have already deleted or compacted them).
    """

    def __init__(self, service: "BigMetadataService", txn_id: str = "") -> None:
        self._service = service
        self._staged: dict[str, tuple[list[FileEntry], list[str]]] = {}
        self._start_versions: dict[str, int] = {}
        self._done = False
        # Non-empty: records are published tagged (pending until the
        # multi-table transaction's marker commits — see repro.txn).
        self.txn_id = txn_id

    def stage(
        self,
        table_id: str,
        added: list[FileEntry] | None = None,
        deleted: list[str] | None = None,
    ) -> None:
        if self._done:
            raise CatalogError("transaction already finished")
        meta = self._service.table(table_id)
        if table_id not in self._start_versions:
            self._start_versions[table_id] = meta.version
        adds, dels = self._staged.setdefault(table_id, ([], []))
        adds.extend(added or [])
        dels.extend(deleted or [])

    def commit(self) -> int:
        """Atomically apply all staged mutations; returns the commit id."""
        if self._done:
            raise CatalogError("transaction already finished")
        self._done = True
        # Validate before mutating anything (atomicity).
        for table_id, (adds, dels) in self._staged.items():
            meta = self._service.table(table_id)
            if dels and meta.version != self._start_versions[table_id]:
                raise TransactionConflictError(
                    f"table {table_id} changed during transaction "
                    f"(v{self._start_versions[table_id]} -> v{meta.version})"
                )
            live = meta.live_entries()
            for path in dels:
                if path not in live:
                    raise TransactionConflictError(
                        f"cannot delete {path}: not live in {table_id}"
                    )
        return self._service._apply_transaction(self._staged, txn_id=self.txn_id)

    def abort(self) -> None:
        self._done = True


class BigMetadataService:
    """The Big Metadata service: one instance per (simulated) region."""

    def __init__(self, ctx: SimContext, tail_compaction_threshold: int = 64) -> None:
        self.ctx = ctx
        self._tables: dict[str, TableMetadata] = {}
        self._commit_ids = itertools.count(1)
        # Tail records folded into the baseline once the tail exceeds this.
        self.tail_compaction_threshold = tail_compaction_threshold
        # fn(txn_id) -> (state, commit_ms) against the transaction log;
        # installed by the txn coordinator, shared with every table.
        self.txn_resolver = None

    def set_txn_resolver(self, resolver) -> None:
        """Install the transaction-marker resolver (repro.txn wires this)."""
        self.txn_resolver = resolver
        for meta in self._tables.values():
            meta.txn_resolver = resolver

    # -- table lifecycle ----------------------------------------------------

    def register_table(self, table_id: str) -> TableMetadata:
        if table_id in self._tables:
            return self._tables[table_id]
        meta = TableMetadata(table_id=table_id, txn_resolver=self.txn_resolver)
        self._tables[table_id] = meta
        return meta

    def table(self, table_id: str) -> TableMetadata:
        try:
            return self._tables[table_id]
        except KeyError:
            raise NotFoundError(f"no metadata for table {table_id!r}") from None

    def has_table(self, table_id: str) -> bool:
        return table_id in self._tables

    def drop_table(self, table_id: str) -> None:
        self._tables.pop(table_id, None)

    # -- commits ---------------------------------------------------------------

    def begin(self, txn_id: str = "") -> MetaTransaction:
        return MetaTransaction(self, txn_id=txn_id)

    def commit(
        self,
        table_id: str,
        added: list[FileEntry] | None = None,
        deleted: list[str] | None = None,
        txn_id: str = "",
    ) -> int:
        """Single-table commit (sugar over a one-table transaction)."""
        txn = self.begin(txn_id=txn_id)
        txn.stage(table_id, added=added, deleted=deleted)
        return txn.commit()

    def _apply_transaction(
        self,
        staged: dict[str, tuple[list[FileEntry], list[str]]],
        txn_id: str = "",
    ) -> int:
        # Hazard point before any mutation: an injected commit fault leaves
        # the metadata untouched, so a caller's retry observes a clean slate.
        self.ctx.faults.check("bigmeta.commit", tables=len(staged))
        commit_id = next(self._commit_ids)
        # A commit is a memory-speed append to the in-memory tail.
        with self.ctx.tracer.span(
            "bigmeta.commit", layer="metastore", tables=len(staged)
        ):
            self.ctx.charge("bigmeta.commit", self.ctx.costs.bigmeta_commit_ms)
        self.ctx.metrics.counter("bigmeta_commits_total", "Big Metadata commits").inc()
        timestamp = self.ctx.clock.now_ms
        for table_id, (adds, dels) in staged.items():
            meta = self._tables[table_id]
            record = LogRecord(
                commit_id=commit_id,
                timestamp_ms=timestamp,
                added=tuple(adds),
                deleted=tuple(dels),
                txn_id=txn_id,
            )
            meta.tail.append(record)
            meta.history.append(record)
            meta.version += 1
            if len(meta.tail) >= self.tail_compaction_threshold and self._tail_resolved(meta):
                self._compact(meta)
        return commit_id

    def _tail_resolved(self, meta: TableMetadata) -> bool:
        """Whether every tagged tail record's transaction reached a
        terminal state. Compaction folds the tail into the baseline using
        *current* visibility, which would freeze a pending transaction's
        records out of (or into) the baseline permanently — so while any
        tail transaction is unresolved, compaction is deferred (recovery
        clears such windows quickly). Resolver errors defer too: never
        guess at a marker."""
        for record in meta.tail:
            if not record.txn_id:
                continue
            if meta.txn_resolver is None:
                return False
            try:
                state, _ = meta.txn_resolver(record.txn_id)
            except Exception:
                return False
            if state not in ("COMMITTED", "ABORTED"):
                return False
        return True

    def _compact(self, meta: TableMetadata) -> None:
        """Fold the tail into the columnar baseline (read-optimization)."""
        meta.baseline = meta.live_entries()
        meta.baseline_index = ColumnarBaselineIndex(list(meta.baseline.values()))
        if meta.tail:
            meta.baseline_commit_id = meta.tail[-1].commit_id
        meta.tail.clear()
        self.ctx.metering.count("bigmeta.baseline_compaction")

    def compact_baseline(self, table_id: str) -> None:
        meta = self.table(table_id)
        # Same guard as the automatic path: folding an unresolved pending
        # transaction would permanently drop its records from the tail.
        if self._tail_resolved(meta):
            self._compact(meta)

    # -- reads --------------------------------------------------------------------

    def snapshot(
        self, table_id: str, as_of_ms: float | None = None
    ) -> list[FileEntry]:
        """All live files (point-in-time if ``as_of_ms`` given)."""
        self.ctx.faults.check("bigmeta.lookup", table=table_id)
        with self.ctx.tracer.span(
            "bigmeta.snapshot", layer="metastore", table=table_id
        ):
            self.ctx.charge("bigmeta.lookup", self.ctx.costs.bigmeta_lookup_ms)
        self.ctx.metrics.counter(
            "bigmeta_reads_total", "Big Metadata read operations by path"
        ).inc(path="snapshot")
        meta = self.table(table_id)
        return list(meta.live_entries(as_of_ms).values())

    def prune(
        self,
        table_id: str,
        constraints: ConstraintSet,
        as_of_ms: float | None = None,
    ) -> list[FileEntry]:
        """Live files that may contain matching rows, using partition values
        and per-file column min/max stats. This single lookup replaces the
        LIST + per-file footer reads of the uncached path.

        Current-time reads with a compacted baseline take the columnar
        fast path: a vectorized candidate mask over the baseline index plus
        a per-entry check of the (short) tail — the paper's "read the
        columnar baselines and reconcile with the tail"."""
        self.ctx.faults.check("bigmeta.lookup", table=table_id)
        columnar = (
            not constraints.is_empty
            and as_of_ms is None
            and self.table(table_id).baseline_index is not None
        )
        path = "columnar" if columnar else "tail_replay"
        with self.ctx.tracer.span(
            "bigmeta.prune", layer="metastore", table=table_id, path=path
        ) as span:
            self.ctx.charge("bigmeta.prune", self.ctx.costs.bigmeta_lookup_ms)
            meta = self.table(table_id)
            if constraints.is_empty:
                entries = list(meta.live_entries(as_of_ms).values())
            elif columnar:
                entries = self._prune_columnar(meta, constraints)
            else:
                entries = [
                    entry
                    for entry in meta.live_entries(as_of_ms).values()
                    if self._entry_matches(entry, constraints)
                ]
            span.set_tag("entries", len(entries))
        self.ctx.metrics.counter(
            "bigmeta_reads_total", "Big Metadata read operations by path"
        ).inc(path=path)
        return entries

    def _prune_columnar(
        self, meta: TableMetadata, constraints: ConstraintSet
    ) -> list[FileEntry]:
        """Baseline via the columnar index; tail reconciled per record."""
        self.ctx.metering.count("bigmeta.columnar_prune")
        index = meta.baseline_index
        mask = index.candidate_mask(constraints)
        deleted_in_tail: set[str] = set()
        added_in_tail: dict[str, FileEntry] = {}
        for record in meta.tail:
            visible, _ = meta.record_visibility(record)
            if not visible:
                continue
            for path in record.deleted:
                deleted_in_tail.add(path)
                added_in_tail.pop(path, None)
            for entry in record.added:
                added_in_tail[entry.file_path] = entry
                deleted_in_tail.discard(entry.file_path)
        survivors = [
            entry
            for entry, candidate in zip(index.entries, mask)
            if candidate
            and entry.file_path not in deleted_in_tail
            and entry.file_path not in added_in_tail
            and self._entry_matches(entry, constraints)
        ]
        survivors.extend(
            entry
            for entry in added_in_tail.values()
            if self._entry_matches(entry, constraints)
        )
        return survivors

    @staticmethod
    def _entry_matches(entry: FileEntry, constraints: ConstraintSet) -> bool:
        partition = {k.lower(): v for k, v in entry.partition_values}
        for column, constraint in constraints:
            if column in partition:
                if not constraint.admits_value(partition[column]):
                    return False
                continue
            stats = entry.stats_for(column)
            if stats is None:
                continue  # no statistics: cannot prune
            if stats.min_value is None and stats.max_value is None:
                # All-null file for this column cannot satisfy a constraint.
                if stats.null_count >= entry.row_count and not constraint.is_trivial:
                    return False
                continue
            if not constraint.admits_range(stats.min_value, stats.max_value):
                return False
        return True

    # -- table-level statistics (for planning, §3.4) ----------------------------------

    def table_stats(self, table_id: str) -> dict[str, Any]:
        """Aggregate statistics the read API returns to external engines:
        row/byte totals and per-column min/max + NDV hints."""
        entries = self.table(table_id).live_entries().values()
        total_rows = sum(e.row_count for e in entries)
        total_bytes = sum(e.size_bytes for e in entries)
        columns: dict[str, dict[str, Any]] = {}
        for entry in entries:
            for name, stats in entry.column_stats:
                agg = columns.setdefault(
                    name, {"min": None, "max": None, "null_count": 0, "distinct_hint": 0}
                )
                if stats.min_value is not None and (
                    agg["min"] is None or stats.min_value < agg["min"]
                ):
                    agg["min"] = stats.min_value
                if stats.max_value is not None and (
                    agg["max"] is None or stats.max_value > agg["max"]
                ):
                    agg["max"] = stats.max_value
                agg["null_count"] += stats.null_count
                if stats.distinct_hint:
                    agg["distinct_hint"] = max(agg["distinct_hint"], stats.distinct_hint)
        return {
            "num_rows": total_rows,
            "num_bytes": total_bytes,
            "num_files": len(entries),
            "columns": columns,
        }

    def history(self, table_id: str) -> list[LogRecord]:
        """The immutable audit history of a table's commits."""
        return list(self.table(table_id).history)
