"""Object-table convenience services (§4.1).

The Object table itself lives in the catalog and is served by the Read
API; this package provides the workflows the paper's §6 use cases
describe on top of it: governed sampling, signed-URL export for external
processing, and corpus statistics.
"""

from repro.objects.service import ObjectSample, ObjectTableService

__all__ = ["ObjectSample", "ObjectTableService"]
