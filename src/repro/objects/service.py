"""High-level Object-table workflows: sampling, signed URLs, stats."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CatalogError
from repro.metastore.catalog import TableInfo, TableKind
from repro.objectstore.store import SignedUrl
from repro.security.iam import Principal


@dataclass
class ObjectSample:
    """A governed sample of objects: (uri, bucket, key) triples."""

    rows: list[tuple[str, str, str]]

    def uris(self) -> list[str]:
        return [uri for uri, _, _ in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


class ObjectTableService:
    """Workflows over Object tables, always through the governed SQL path.

    Every method runs as the supplied principal via the engine, so row
    policies on the Object table bound exactly what can be sampled,
    exported, or counted — the §4.1 invariant and the §6
    "training corpus definition" / "granular security enforcement" use
    cases.
    """

    def __init__(self, platform) -> None:
        self.platform = platform

    def _require_object_table(self, table: TableInfo) -> None:
        if table.kind is not TableKind.OBJECT:
            raise CatalogError(f"{table.table_id} is not an Object table")

    def list_objects(
        self,
        table: TableInfo,
        principal: Principal,
        where: str | None = None,
        limit: int | None = None,
    ) -> ObjectSample:
        """Governed listing: uri/bucket/key of visible objects."""
        self._require_object_table(table)
        sql = f"SELECT uri, bucket, key FROM {table.dataset}.{table.name}"
        if where:
            sql += f" WHERE {where}"
        if limit is not None:
            sql += f" ORDER BY key LIMIT {limit}"
        result = self.platform.home_engine.execute(sql, principal)
        return ObjectSample(rows=result.rows())

    def sample(
        self,
        table: TableInfo,
        principal: Principal,
        every_nth: int = 100,
        where: str | None = None,
    ) -> ObjectSample:
        """Deterministic 1/N sample of visible objects (the paper's
        "two lines of SQL" sampling, §4.1) using the generation-stable
        object ordering."""
        self._require_object_table(table)
        listing = self.list_objects(table, principal, where=where)
        return ObjectSample(rows=listing.rows[::every_nth])

    def export_signed_urls(
        self,
        table: TableInfo,
        principal: Principal,
        where: str | None = None,
        ttl_ms: float = 3_600_000.0,
        limit: int | None = None,
    ) -> list[SignedUrl]:
        """Mint signed URLs for exactly the objects the principal can see.

        The URL set is bounded by the principal's row policies, extending
        the governance umbrella to external consumers (§4.1).
        """
        sample = self.list_objects(table, principal, where=where, limit=limit)
        store = self.platform.stores.store_for(table.storage.location)
        return [
            store.generate_signed_url(bucket, key, ttl_ms=ttl_ms)
            for _, bucket, key in sample.rows
        ]

    def corpus_stats(self, table: TableInfo, principal: Principal) -> dict:
        """Visible-object counts and sizes, grouped by content type."""
        self._require_object_table(table)
        result = self.platform.home_engine.execute(
            f"SELECT content_type, COUNT(*) AS objects, SUM(size) AS bytes "
            f"FROM {table.dataset}.{table.name} GROUP BY content_type",
            principal,
        )
        by_type = {
            content_type: {"objects": n, "bytes": size}
            for content_type, n, size in result.rows()
        }
        return {
            "total_objects": sum(v["objects"] for v in by_type.values()),
            "total_bytes": sum(v["bytes"] or 0 for v in by_type.values()),
            "by_content_type": by_type,
        }
