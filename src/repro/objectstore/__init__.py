"""In-memory cloud object store simulation (GCS / S3 / Azure Blob).

Models the behaviours BigLake's experiments hinge on:

* paginated LIST with per-page latency (listing millions of objects is
  slow — the motivation for metadata caching, §3.3, and Object tables, §4.1);
* per-object GET/PUT with first-byte + per-MiB latency and byte metering;
* conditional (generation-match) writes with a per-object mutation rate
  limit — the bottleneck that caps open-table-format commit rates (§3.5);
* signed URLs extending governance outside the warehouse (§4.1);
* location-aware access so cross-region/cross-cloud reads accrue egress.
"""

from repro.objectstore.store import (
    Bucket,
    ObjectMeta,
    ObjectStore,
    SignedUrl,
)

__all__ = ["Bucket", "ObjectMeta", "ObjectStore", "SignedUrl"]
