"""Registry of object stores across clouds and regions."""

from __future__ import annotations

from repro.cloud import Region
from repro.errors import NotFoundError
from repro.objectstore.store import ObjectStore
from repro.simtime import SimContext


class StoreRegistry:
    """Location (``cloud/region``) -> :class:`ObjectStore` lookup.

    A multi-cloud deployment has one object-store endpoint per region; the
    registry is how engines find the store colocated with (or remote from)
    a table's bucket.
    """

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self._stores: dict[str, ObjectStore] = {}
        # fn(txn_id) -> (state, commit_ms): transaction-marker resolution
        # for Iceberg readers, installed on every store (repro.txn).
        self.txn_resolver = None

    def add_region(self, region: Region) -> ObjectStore:
        """Create (or return) the store endpoint for a region."""
        if region.location not in self._stores:
            store = ObjectStore(region, self.ctx)
            store.txn_resolver = self.txn_resolver
            self._stores[region.location] = store
        return self._stores[region.location]

    def set_txn_resolver(self, resolver) -> None:
        """Install the transaction-marker resolver on every store, present
        and future (the txn coordinator wires this)."""
        self.txn_resolver = resolver
        for store in self._stores.values():
            store.txn_resolver = resolver

    def store_for(self, location: str) -> ObjectStore:
        try:
            return self._stores[location]
        except KeyError:
            raise NotFoundError(f"no object store registered for {location!r}") from None

    def find_bucket(self, bucket: str) -> ObjectStore:
        """Locate the (unique) store hosting ``bucket``."""
        for store in self._stores.values():
            if store.has_bucket(bucket):
                return store
        raise NotFoundError(f"bucket {bucket!r} not found in any region")

    def locations(self) -> list[str]:
        return sorted(self._stores)
