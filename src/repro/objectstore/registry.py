"""Registry of object stores across clouds and regions."""

from __future__ import annotations

from repro.cloud import Region
from repro.errors import NotFoundError
from repro.objectstore.store import ObjectStore
from repro.simtime import SimContext


class StoreRegistry:
    """Location (``cloud/region``) -> :class:`ObjectStore` lookup.

    A multi-cloud deployment has one object-store endpoint per region; the
    registry is how engines find the store colocated with (or remote from)
    a table's bucket.
    """

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self._stores: dict[str, ObjectStore] = {}

    def add_region(self, region: Region) -> ObjectStore:
        """Create (or return) the store endpoint for a region."""
        if region.location not in self._stores:
            self._stores[region.location] = ObjectStore(region, self.ctx)
        return self._stores[region.location]

    def store_for(self, location: str) -> ObjectStore:
        try:
            return self._stores[location]
        except KeyError:
            raise NotFoundError(f"no object store registered for {location!r}") from None

    def find_bucket(self, bucket: str) -> ObjectStore:
        """Locate the (unique) store hosting ``bucket``."""
        for store in self._stores.values():
            if store.has_bucket(bucket):
                return store
        raise NotFoundError(f"bucket {bucket!r} not found in any region")

    def locations(self) -> list[str]:
        return sorted(self._stores)
