"""The object store: buckets, blobs, listings, CAS, signed URLs."""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.cloud import Region, transfer_latency_ms
from repro.errors import (
    AlreadyExistsError,
    NotFoundError,
    PreconditionFailedError,
)
from repro.simtime import MIB, SimContext


@dataclass(frozen=True)
class ObjectMeta:
    """Metadata the store returns from HEAD/LIST — exactly the attributes
    Object tables surface as columns (§4.1): uri, size, content type,
    creation/update time, generation."""

    bucket: str
    key: str
    size: int
    content_type: str
    create_time_ms: float
    update_time_ms: float
    generation: int
    etag: str

    @property
    def uri(self) -> str:
        return f"store://{self.bucket}/{self.key}"


@dataclass
class _Blob:
    data: bytes
    meta: ObjectMeta


@dataclass
class Bucket:
    """A named container of objects, sorted by key for prefix listing."""

    name: str
    region: Region
    blobs: dict[str, _Blob] = field(default_factory=dict)
    sorted_keys: list[str] = field(default_factory=list)

    def _insert_key(self, key: str) -> None:
        idx = bisect.bisect_left(self.sorted_keys, key)
        if idx >= len(self.sorted_keys) or self.sorted_keys[idx] != key:
            self.sorted_keys.insert(idx, key)

    def _remove_key(self, key: str) -> None:
        idx = bisect.bisect_left(self.sorted_keys, key)
        if idx < len(self.sorted_keys) and self.sorted_keys[idx] == key:
            self.sorted_keys.pop(idx)


@dataclass(frozen=True)
class SignedUrl:
    """A time-limited capability to read one object (§4.1).

    The signature binds bucket, key, and expiry to the issuing store's
    secret, so a tampered URL fails validation.
    """

    bucket: str
    key: str
    expires_ms: float
    signature: str


class ObjectStore:
    """One cloud object store endpoint living in a region.

    All operations charge simulated latency to the shared
    :class:`~repro.simtime.SimContext` and record op/byte meters. Callers in
    a different location pass ``caller_location`` so transfers accrue
    cross-region/cross-cloud latency and egress.
    """

    def __init__(self, region: Region, ctx: SimContext, name: str | None = None) -> None:
        self.region = region
        self.ctx = ctx
        self.name = name or f"objectstore-{region.location}"
        self._buckets: dict[str, Bucket] = {}
        self._signing_secret = hashlib.sha256(self.name.encode()).hexdigest()
        # Per-object earliest next allowed CAS mutation time (sim ms).
        self._cas_next_allowed_ms: dict[tuple[str, str], float] = {}

    # -- fault injection (tests/failure benches) -------------------------------

    def inject_fault(self, op_prefix: str, count: int = 1) -> None:
        """Make the next ``count`` operations whose name starts with
        ``op_prefix`` (e.g. ``"put"``, ``"get"``, ``"list"``) fail with
        :class:`~repro.errors.StorageError`.

        Compatibility shim over the :class:`~repro.faults.FaultInjector` on
        this store's context: the fault is scoped to this store (via a
        ``store=`` match) and raises the legacy non-transient
        ``StorageError``, so retry policies pass it straight through.
        """
        from repro.faults import FaultSpec

        self.ctx.faults.add(FaultSpec(
            op=f"objectstore.{op_prefix}",
            error="StorageError",
            count=count,
            match=(("store", self.name),),
        ))

    def _maybe_fail(self, op: str) -> None:
        """Consult the context-wide injector at this store's hazard point."""
        self.ctx.faults.check(f"objectstore.{op}", store=self.name)

    # -- bucket management ---------------------------------------------------

    def create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            raise AlreadyExistsError(f"bucket {name!r} already exists")
        bucket = Bucket(name=name, region=self.region)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise NotFoundError(f"bucket {name!r} not found") from None

    def has_bucket(self, name: str) -> bool:
        return name in self._buckets

    # -- internals -------------------------------------------------------------

    def _count_op(self, op: str, num_bytes: int = 0, read: bool = False) -> None:
        """Bump the per-op/per-region metrics for one store operation."""
        metrics = self.ctx.metrics
        metrics.counter(
            "objectstore_ops_total", "object store operations by op and region"
        ).inc(op=op, region=self.region.location)
        if num_bytes:
            metrics.counter(
                "objectstore_bytes_total", "object store payload bytes by direction"
            ).inc(num_bytes, direction="read" if read else "write", region=self.region.location)

    def _transfer_charge(self, num_bytes: int, caller_location: str | None, read: bool) -> None:
        """Charge latency + egress for moving bytes to/from the caller."""
        here = self.region.location
        there = caller_location or here
        latency = transfer_latency_ms(self.ctx.costs, here, there, num_bytes)
        self.ctx.clock.advance(latency)
        if there != here:
            if read:
                self.ctx.metering.add_egress(here, there, num_bytes)
            else:
                self.ctx.metering.add_egress(there, here, num_bytes)
            current = self.ctx.tracer.current
            if current is not None:
                current.add_tag("egress_bytes", num_bytes)

    def _make_meta(self, bucket: str, key: str, data: bytes, content_type: str, prior: ObjectMeta | None) -> ObjectMeta:
        now = self.ctx.clock.now_ms
        generation = (prior.generation + 1) if prior else 1
        etag = hashlib.md5(data).hexdigest()
        create = prior.create_time_ms if prior else now
        return ObjectMeta(
            bucket=bucket,
            key=key,
            size=len(data),
            content_type=content_type,
            create_time_ms=create,
            update_time_ms=now,
            generation=generation,
            etag=etag,
        )

    # -- object operations -------------------------------------------------------

    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        content_type: str = "application/octet-stream",
        caller_location: str | None = None,
    ) -> ObjectMeta:
        """Unconditional PUT (create or overwrite)."""
        self._maybe_fail("put")
        b = self.bucket(bucket)
        with self.ctx.tracer.span(
            "objectstore.put", layer="objectstore", key=f"{bucket}/{key}", bytes=len(data)
        ):
            self.ctx.charge("object_store.put", self.ctx.costs.put_first_byte_ms)
            self.ctx.clock.advance((len(data) / MIB) * self.ctx.costs.put_per_mib_ms)
            self._transfer_charge(len(data), caller_location, read=False)
        self._count_op("put", len(data))
        self.ctx.metering.add_write(len(data))
        prior = b.blobs.get(key)
        meta = self._make_meta(bucket, key, data, content_type, prior.meta if prior else None)
        b.blobs[key] = _Blob(data=data, meta=meta)
        b._insert_key(key)
        return meta

    def put_if_generation(
        self,
        bucket: str,
        key: str,
        data: bytes,
        expected_generation: int,
        content_type: str = "application/octet-stream",
        caller_location: str | None = None,
    ) -> ObjectMeta:
        """Conditional PUT: succeeds only if the object's current generation
        equals ``expected_generation`` (0 = object must not exist).

        Models the atomic pointer swap open table formats rely on. Object
        stores only allow a handful of mutations per second per object
        (§3.5); exceeding the budget stalls the writer until the next slot.
        """
        self._maybe_fail("cas_put")
        b = self.bucket(bucket)
        with self.ctx.tracer.span(
            "objectstore.cas_put", layer="objectstore", key=f"{bucket}/{key}", bytes=len(data)
        ) as span:
            # Per-object mutation rate limit: wait for the next allowed slot.
            slot_key = (bucket, key)
            interval_ms = 1000.0 / self.ctx.costs.cas_mutations_per_sec
            next_allowed = self._cas_next_allowed_ms.get(slot_key, 0.0)
            if self.ctx.clock.now_ms < next_allowed:
                self.ctx.metering.count("object_store.cas_throttled")
                span.set_tag("throttled_ms", next_allowed - self.ctx.clock.now_ms)
                self.ctx.clock.advance_to(next_allowed)
            self._cas_next_allowed_ms[slot_key] = self.ctx.clock.now_ms + interval_ms

            self.ctx.charge("object_store.cas_put", self.ctx.costs.put_first_byte_ms)
            self.ctx.clock.advance((len(data) / MIB) * self.ctx.costs.put_per_mib_ms)
            self._transfer_charge(len(data), caller_location, read=False)
        self._count_op("cas_put", len(data))
        prior = b.blobs.get(key)
        current_generation = prior.meta.generation if prior else 0
        if current_generation != expected_generation:
            raise PreconditionFailedError(
                f"{bucket}/{key}: expected generation {expected_generation}, "
                f"found {current_generation}"
            )
        self.ctx.metering.add_write(len(data))
        meta = self._make_meta(bucket, key, data, content_type, prior.meta if prior else None)
        b.blobs[key] = _Blob(data=data, meta=meta)
        b._insert_key(key)
        return meta

    def get_object(
        self, bucket: str, key: str, caller_location: str | None = None
    ) -> bytes:
        """GET the full object."""
        self._maybe_fail("get")
        blob = self._lookup(bucket, key)
        with self.ctx.tracer.span(
            "objectstore.get", layer="objectstore", key=f"{bucket}/{key}", bytes=len(blob.data)
        ):
            self.ctx.charge("object_store.get", self.ctx.costs.get_first_byte_ms)
            self.ctx.clock.advance((len(blob.data) / MIB) * self.ctx.costs.get_per_mib_ms)
            self._transfer_charge(len(blob.data), caller_location, read=True)
        self._count_op("get", len(blob.data), read=True)
        self.ctx.metering.add_read(len(blob.data))
        return blob.data

    def get_range(
        self,
        bucket: str,
        key: str,
        start: int,
        length: int,
        caller_location: str | None = None,
    ) -> bytes:
        """Ranged GET (used to fetch file footers without the whole object)."""
        self._maybe_fail("get_range")
        blob = self._lookup(bucket, key)
        if start < 0:
            start = max(0, len(blob.data) + start)
        payload = blob.data[start : start + length]
        with self.ctx.tracer.span(
            "objectstore.get_range", layer="objectstore", key=f"{bucket}/{key}", bytes=len(payload)
        ):
            self.ctx.charge("object_store.get_range", self.ctx.costs.get_first_byte_ms)
            self.ctx.clock.advance((len(payload) / MIB) * self.ctx.costs.get_per_mib_ms)
            self._transfer_charge(len(payload), caller_location, read=True)
        self._count_op("get_range", len(payload), read=True)
        self.ctx.metering.add_read(len(payload))
        return payload

    def head_object(self, bucket: str, key: str) -> ObjectMeta:
        """Metadata-only request."""
        self._maybe_fail("head")
        blob = self._lookup(bucket, key)
        with self.ctx.tracer.span("objectstore.head", layer="objectstore", key=f"{bucket}/{key}"):
            self.ctx.charge("object_store.head", self.ctx.costs.head_latency_ms)
        self._count_op("head")
        return blob.meta

    def object_exists(self, bucket: str, key: str) -> bool:
        b = self.bucket(bucket)
        return key in b.blobs

    def delete_object(self, bucket: str, key: str) -> None:
        self._maybe_fail("delete")
        b = self.bucket(bucket)
        if key not in b.blobs:
            raise NotFoundError(f"object {bucket}/{key} not found")
        with self.ctx.tracer.span("objectstore.delete", layer="objectstore", key=f"{bucket}/{key}"):
            self.ctx.charge("object_store.delete", self.ctx.costs.delete_latency_ms)
        self._count_op("delete")
        del b.blobs[key]
        b._remove_key(key)

    def list_objects(
        self, bucket: str, prefix: str = "", page_size: int | None = None
    ) -> Iterator[ObjectMeta]:
        """Paginated LIST under ``prefix``; each page costs a round trip.

        This is deliberately the slow path: listing N objects costs
        ``ceil(N / page_size)`` page latencies, which is what makes direct
        bucket listing painful at millions of objects.
        """
        self._maybe_fail("list")
        b = self.bucket(bucket)
        page_size = page_size or self.ctx.costs.list_page_size
        start = bisect.bisect_left(b.sorted_keys, prefix)
        emitted_in_page = 0
        self._charge_list_page(bucket, prefix)
        for idx in range(start, len(b.sorted_keys)):
            key = b.sorted_keys[idx]
            if not key.startswith(prefix):
                break
            if emitted_in_page == page_size:
                self._charge_list_page(bucket, prefix)
                emitted_in_page = 0
            emitted_in_page += 1
            yield b.blobs[key].meta

    def _charge_list_page(self, bucket: str, prefix: str) -> None:
        """One LIST page round trip, as its own (short) span so the cost
        lands on whichever span is consuming the listing generator."""
        with self.ctx.tracer.span(
            "objectstore.list_page", layer="objectstore", key=f"{bucket}/{prefix}"
        ):
            self.ctx.charge("object_store.list_page", self.ctx.costs.list_page_latency_ms)
        self._count_op("list_page")

    def count_objects(self, bucket: str, prefix: str = "") -> int:
        """Number of objects under a prefix (no latency; test helper)."""
        b = self.bucket(bucket)
        start = bisect.bisect_left(b.sorted_keys, prefix)
        count = 0
        for idx in range(start, len(b.sorted_keys)):
            if not b.sorted_keys[idx].startswith(prefix):
                break
            count += 1
        return count

    # -- signed URLs ---------------------------------------------------------------

    def generate_signed_url(self, bucket: str, key: str, ttl_ms: float) -> SignedUrl:
        """Mint a read capability valid for ``ttl_ms`` of simulated time."""
        self._lookup(bucket, key)  # must exist
        expires = self.ctx.clock.now_ms + ttl_ms
        signature = self._sign(bucket, key, expires)
        return SignedUrl(bucket=bucket, key=key, expires_ms=expires, signature=signature)

    def read_signed_url(self, url: SignedUrl, caller_location: str | None = None) -> bytes:
        """Fetch an object through a signed URL, validating signature + expiry."""
        from repro.errors import InvalidCredentialError

        if url.signature != self._sign(url.bucket, url.key, url.expires_ms):
            raise InvalidCredentialError("signed URL signature mismatch")
        if self.ctx.clock.now_ms > url.expires_ms:
            raise InvalidCredentialError("signed URL expired")
        return self.get_object(url.bucket, url.key, caller_location=caller_location)

    def _sign(self, bucket: str, key: str, expires_ms: float) -> str:
        payload = f"{self._signing_secret}|{bucket}|{key}|{expires_ms:.3f}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def _lookup(self, bucket: str, key: str) -> _Blob:
        b = self.bucket(bucket)
        try:
            return b.blobs[key]
        except KeyError:
            raise NotFoundError(f"object {bucket}/{key} not found") from None
