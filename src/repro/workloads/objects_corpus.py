"""Synthetic unstructured corpora for Object-table and inference work.

Images are SIMG files with *learnable* class structure: each class has a
deterministic spatial pattern (distinct sinusoid frequencies/orientations)
plus per-image noise, so a centroid classifier trained on the corpus is
genuinely accurate — letting the ML experiments assert real end-to-end
inference quality, not just plumbing.

Documents are SDOC invoices with known vendors/totals so entity extraction
can be verified exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.media import encode_image, make_document
from repro.ml.models import CentroidClassifier, train_centroid_classifier
from repro.objectstore import ObjectStore

IMAGE_CLASSES = ["cat", "dog", "bird", "car", "plane"]
VENDORS = ["Acme Corp", "Globex", "Initech", "Umbrella", "Stark Industries"]

SIMG_CONTENT_TYPE = "image/simg"
SDOC_CONTENT_TYPE = "application/sdoc"


@dataclass
class ImageCorpus:
    """Uploaded image corpus with ground-truth labels keyed by object key."""

    bucket: str
    prefix: str
    keys: list[str]
    labels: dict[str, str]  # key -> class label
    image_size: int

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class DocumentCorpus:
    bucket: str
    prefix: str
    keys: list[str]
    ground_truth: dict[str, dict]  # key -> {vendor, total, ...}

    def __len__(self) -> int:
        return len(self.keys)


def class_pattern(label: str, size: int) -> np.ndarray:
    """The deterministic base pattern for a class (float in [-1, 1])."""
    index = IMAGE_CLASSES.index(label)
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    freq = 1.0 + index
    angle = index * np.pi / len(IMAGE_CLASSES)
    rotated = np.cos(angle) * xs + np.sin(angle) * ys
    return np.sin(2 * np.pi * freq * rotated / size)


def generate_image(rng: np.random.Generator, label: str, size: int = 32) -> np.ndarray:
    """One HxWx3 uint8 image of the given class."""
    pattern = class_pattern(label, size)
    pixels = np.empty((size, size, 3), dtype=np.float64)
    for channel in range(3):
        noise = rng.standard_normal((size, size)) * 25.0
        pixels[:, :, channel] = 128.0 + 80.0 * pattern + noise + channel * 5.0
    return np.clip(pixels, 0, 255).astype(np.uint8)


def build_image_corpus(
    store: ObjectStore,
    bucket: str,
    prefix: str = "images",
    count: int = 200,
    image_size: int = 32,
    seed: int = 3,
    spread_create_time_ms: float = 0.0,
) -> ImageCorpus:
    """Generate and upload ``count`` labeled images.

    ``spread_create_time_ms`` staggers object creation times across
    simulated time (so row policies / filters on ``create_time`` have
    something to select on).
    """
    rng = np.random.default_rng(seed)
    if not store.has_bucket(bucket):
        store.create_bucket(bucket)
    keys: list[str] = []
    labels: dict[str, str] = {}
    for i in range(count):
        label = IMAGE_CLASSES[int(rng.integers(0, len(IMAGE_CLASSES)))]
        pixels = generate_image(rng, label, image_size)
        key = f"{prefix.rstrip('/')}/img-{i:06d}.simg"
        store.put_object(bucket, key, encode_image(pixels), content_type=SIMG_CONTENT_TYPE)
        if spread_create_time_ms:
            store.ctx.clock.advance(spread_create_time_ms / count)
        keys.append(key)
        labels[key] = label
    return ImageCorpus(
        bucket=bucket, prefix=prefix, keys=keys, labels=labels, image_size=image_size
    )


def train_classifier_for_corpus(
    corpus_size: int = 100, image_size: int = 32, input_size: int = 16, seed: int = 99
) -> CentroidClassifier:
    """Train a centroid classifier on a fresh sample of the class
    patterns (independent of any uploaded corpus)."""
    from repro.ml.media import resize_image

    rng = np.random.default_rng(seed)
    images, labels = [], []
    for _ in range(corpus_size):
        label = IMAGE_CLASSES[int(rng.integers(0, len(IMAGE_CLASSES)))]
        pixels = generate_image(rng, label, image_size)
        tensor = resize_image(pixels.astype(np.float32) / 255.0, input_size, input_size)
        images.append(tensor)
        labels.append(label)
    return train_centroid_classifier(images, labels, input_size, input_size)


def build_document_corpus(
    store: ObjectStore,
    bucket: str,
    prefix: str = "documents",
    count: int = 50,
    seed: int = 5,
) -> DocumentCorpus:
    """Generate and upload ``count`` SDOC invoices with known entities."""
    rng = np.random.default_rng(seed)
    if not store.has_bucket(bucket):
        store.create_bucket(bucket)
    keys: list[str] = []
    truth: dict[str, dict] = {}
    for i in range(count):
        vendor = VENDORS[int(rng.integers(0, len(VENDORS)))]
        year = 2023
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 28))
        invoice_date = f"{year}-{month:02d}-{day:02d}"
        n_lines = int(rng.integers(1, 6))
        lines = [
            (f"item-{j}", float(np.round(rng.uniform(5, 500), 2)))
            for j in range(n_lines)
        ]
        total = float(np.round(sum(a for _, a in lines), 2))
        doc_id = f"INV-{i:05d}"
        key = f"{prefix.rstrip('/')}/doc-{i:05d}.sdoc"
        store.put_object(
            bucket, key,
            make_document(doc_id, vendor, invoice_date, total, lines),
            content_type=SDOC_CONTENT_TYPE,
        )
        keys.append(key)
        truth[key] = {
            "doc_id": doc_id,
            "vendor": vendor,
            "invoice_date": invoice_date,
            "total": total,
            "num_line_items": n_lines,
        }
    return DocumentCorpus(bucket=bucket, prefix=prefix, keys=keys, ground_truth=truth)
