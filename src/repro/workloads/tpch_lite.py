"""TPC-H-lite: a scaled-down schema and query subset.

Used by the Spark-parity experiment (E4: connector reads vs direct object
-store reads must match or beat) and the Omni-parity experiment (E9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batch import RecordBatch, batch_from_pydict
from repro.data.types import DataType, Schema
from repro.metastore.catalog import MetadataCacheMode, TableInfo
from repro.security.iam import Principal, Role
from repro.sql.dates import parse_date_to_days
from repro.storageapi.fileutil import write_data_file

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]

SCHEMAS: dict[str, Schema] = {
    "region": Schema.of(
        ("r_regionkey", DataType.INT64),
        ("r_name", DataType.STRING),
    ),
    "nation": Schema.of(
        ("n_nationkey", DataType.INT64),
        ("n_name", DataType.STRING),
        ("n_regionkey", DataType.INT64),
    ),
    "supplier": Schema.of(
        ("s_suppkey", DataType.INT64),
        ("s_name", DataType.STRING),
        ("s_nationkey", DataType.INT64),
        ("s_acctbal", DataType.FLOAT64),
    ),
    "customer": Schema.of(
        ("c_custkey", DataType.INT64),
        ("c_name", DataType.STRING),
        ("c_nationkey", DataType.INT64),
        ("c_mktsegment", DataType.STRING),
        ("c_acctbal", DataType.FLOAT64),
    ),
    "part": Schema.of(
        ("p_partkey", DataType.INT64),
        ("p_name", DataType.STRING),
        ("p_type", DataType.STRING),
        ("p_retailprice", DataType.FLOAT64),
    ),
    "orders": Schema.of(
        ("o_orderkey", DataType.INT64),
        ("o_custkey", DataType.INT64),
        ("o_orderstatus", DataType.STRING),
        ("o_totalprice", DataType.FLOAT64),
        ("o_orderdate", DataType.DATE),
        ("o_orderpriority", DataType.STRING),
    ),
    "lineitem": Schema.of(
        ("l_orderkey", DataType.INT64),
        ("l_partkey", DataType.INT64),
        ("l_suppkey", DataType.INT64),
        ("l_quantity", DataType.FLOAT64),
        ("l_extendedprice", DataType.FLOAT64),
        ("l_discount", DataType.FLOAT64),
        ("l_tax", DataType.FLOAT64),
        ("l_returnflag", DataType.STRING),
        ("l_linestatus", DataType.STRING),
        ("l_shipdate", DataType.DATE),
        ("l_commitdate", DataType.DATE),
        ("l_receiptdate", DataType.DATE),
        ("l_shipmode", DataType.STRING),
    ),
}

_BASE = {
    "supplier": 50,
    "customer": 500,
    "part": 400,
    "orders": 3_000,
    "lineitem": 12_000,
}


@dataclass
class TpchData:
    tables: dict[str, RecordBatch]

    def __getitem__(self, name: str) -> RecordBatch:
        return self.tables[name]


def generate(scale: float = 1.0, seed: int = 11) -> TpchData:
    rng = np.random.default_rng(seed)
    tables: dict[str, RecordBatch] = {}

    tables["region"] = batch_from_pydict(
        SCHEMAS["region"],
        {"r_regionkey": np.arange(len(REGIONS), dtype=np.int64), "r_name": REGIONS},
    )
    tables["nation"] = batch_from_pydict(
        SCHEMAS["nation"],
        {
            "n_nationkey": np.arange(len(NATIONS), dtype=np.int64),
            "n_name": [n for n, _ in NATIONS],
            "n_regionkey": np.asarray([r for _, r in NATIONS], dtype=np.int64),
        },
    )

    n_supp = max(5, int(_BASE["supplier"] * scale))
    supp_keys = np.arange(1, n_supp + 1, dtype=np.int64)
    tables["supplier"] = batch_from_pydict(
        SCHEMAS["supplier"],
        {
            "s_suppkey": supp_keys,
            "s_name": [f"Supplier#{int(k):06d}" for k in supp_keys],
            "s_nationkey": rng.integers(0, len(NATIONS), n_supp),
            "s_acctbal": np.round(rng.uniform(-500, 9000, n_supp), 2),
        },
    )

    n_cust = max(10, int(_BASE["customer"] * scale))
    cust_keys = np.arange(1, n_cust + 1, dtype=np.int64)
    tables["customer"] = batch_from_pydict(
        SCHEMAS["customer"],
        {
            "c_custkey": cust_keys,
            "c_name": [f"Customer#{int(k):07d}" for k in cust_keys],
            "c_nationkey": rng.integers(0, len(NATIONS), n_cust),
            "c_mktsegment": rng.choice(SEGMENTS, n_cust).tolist(),
            "c_acctbal": np.round(rng.uniform(-900, 9900, n_cust), 2),
        },
    )

    n_part = max(10, int(_BASE["part"] * scale))
    part_keys = np.arange(1, n_part + 1, dtype=np.int64)
    types = ["PROMO BRUSHED", "PROMO PLATED", "STANDARD POLISHED", "SMALL ANODIZED",
             "ECONOMY BURNISHED", "MEDIUM BRUSHED"]
    tables["part"] = batch_from_pydict(
        SCHEMAS["part"],
        {
            "p_partkey": part_keys,
            "p_name": [f"part {int(k)}" for k in part_keys],
            "p_type": [types[i % len(types)] for i in range(n_part)],
            "p_retailprice": np.round(rng.uniform(900, 2000, n_part), 2),
        },
    )

    n_orders = max(50, int(_BASE["orders"] * scale))
    order_keys = np.arange(1, n_orders + 1, dtype=np.int64)
    start = parse_date_to_days("1995-01-01")
    order_dates = start + np.sort(rng.integers(0, 730, n_orders)).astype(np.int64)
    tables["orders"] = batch_from_pydict(
        SCHEMAS["orders"],
        {
            "o_orderkey": order_keys,
            "o_custkey": rng.integers(1, n_cust + 1, n_orders),
            "o_orderstatus": rng.choice(["O", "F", "P"], n_orders).tolist(),
            "o_totalprice": np.round(rng.uniform(900, 350_000, n_orders), 2),
            "o_orderdate": order_dates,
            "o_orderpriority": rng.choice(ORDER_PRIORITIES, n_orders).tolist(),
        },
    )

    n_items = max(100, int(_BASE["lineitem"] * scale))
    owner = rng.integers(0, n_orders, n_items)
    ship_lag = rng.integers(1, 120, n_items)
    ship_dates = order_dates[owner] + ship_lag
    sort_order = np.argsort(ship_dates)
    tables["lineitem"] = batch_from_pydict(
        SCHEMAS["lineitem"],
        {
            "l_orderkey": order_keys[owner][sort_order],
            "l_partkey": rng.integers(1, n_part + 1, n_items)[sort_order],
            "l_suppkey": rng.integers(1, n_supp + 1, n_items)[sort_order],
            "l_quantity": np.round(rng.uniform(1, 50, n_items), 0)[sort_order],
            "l_extendedprice": np.round(rng.uniform(900, 100_000, n_items), 2)[sort_order],
            "l_discount": np.round(rng.uniform(0.0, 0.1, n_items), 2)[sort_order],
            "l_tax": np.round(rng.uniform(0.0, 0.08, n_items), 2)[sort_order],
            "l_returnflag": rng.choice(["A", "N", "R"], n_items).tolist(),
            "l_linestatus": rng.choice(["O", "F"], n_items).tolist(),
            "l_shipdate": ship_dates[sort_order],
            "l_commitdate": (ship_dates + rng.integers(-30, 30, n_items))[sort_order],
            "l_receiptdate": (ship_dates + rng.integers(1, 30, n_items))[sort_order],
            "l_shipmode": rng.choice(SHIP_MODES, n_items).tolist(),
        },
    )
    return TpchData(tables=tables)


def load_as_biglake(
    platform,
    principal: Principal,
    data: TpchData,
    dataset: str = "tpch",
    bucket: str = "tpch-lake",
    connection_name: str = "tpch.lake",
    cache_mode: MetadataCacheMode = MetadataCacheMode.AUTOMATIC,
    lineitem_files: int = 16,
) -> dict[str, TableInfo]:
    """Upload as pqs files (lineitem split in shipdate order) and register
    BigLake tables."""
    store = platform.stores.store_for(platform.config.home_region.location)
    if not store.has_bucket(bucket):
        store.create_bucket(bucket)
    if not platform.connections.has_connection(connection_name):
        conn = platform.connections.create_connection(connection_name)
        platform.connections.grant_lake_access(conn, bucket)
    platform.iam.grant(f"connections/{connection_name}", Role.CONNECTION_USER, principal)
    if not platform.catalog.has_dataset(dataset):
        platform.catalog.create_dataset(dataset)
    tables: dict[str, TableInfo] = {}
    for name, batch in data.tables.items():
        schema = SCHEMAS[name]
        prefix = f"{dataset}/{name}"
        n_files = lineitem_files if name == "lineitem" else 1
        rows_per_file = max(1, batch.num_rows // n_files)
        part = 0
        for start in range(0, batch.num_rows, rows_per_file):
            chunk = batch.slice(start, min(start + rows_per_file, batch.num_rows))
            write_data_file(store, bucket, f"{prefix}/part-{part:05d}.pqs", schema, [chunk])
            part += 1
        tables[name] = platform.tables.create_biglake_table(
            principal, dataset, name, schema, bucket, prefix, connection_name,
            cache_mode=cache_mode,
        )
    return tables


def queries(dataset: str = "tpch") -> dict[str, str]:
    """A representative TPC-H query subset in our dialect."""
    d = dataset
    return {
        # Q1: pricing summary report.
        "q01": f"""
            SELECT l_returnflag, l_linestatus,
                   SUM(l_quantity) AS sum_qty,
                   SUM(l_extendedprice) AS sum_base_price,
                   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
                   AVG(l_quantity) AS avg_qty,
                   AVG(l_discount) AS avg_disc,
                   COUNT(*) AS count_order
            FROM {d}.lineitem
            WHERE l_shipdate <= DATE '1996-09-01'
            GROUP BY l_returnflag, l_linestatus
            ORDER BY l_returnflag, l_linestatus
        """,
        # Q3: shipping priority.
        "q03": f"""
            SELECT o.o_orderkey,
                   SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
                   o.o_orderdate
            FROM {d}.customer AS c
            JOIN {d}.orders AS o ON c.c_custkey = o.o_custkey
            JOIN {d}.lineitem AS l ON l.l_orderkey = o.o_orderkey
            WHERE c.c_mktsegment = 'BUILDING'
              AND o.o_orderdate < DATE '1996-03-15'
              AND l.l_shipdate > DATE '1996-03-15'
            GROUP BY o.o_orderkey, o.o_orderdate
            ORDER BY revenue DESC
            LIMIT 10
        """,
        # Q5: local supplier volume.
        "q05": f"""
            SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
            FROM {d}.customer AS c
            JOIN {d}.orders AS o ON c.c_custkey = o.o_custkey
            JOIN {d}.lineitem AS l ON l.l_orderkey = o.o_orderkey
            JOIN {d}.supplier AS s ON l.l_suppkey = s.s_suppkey
            JOIN {d}.nation AS n ON s.s_nationkey = n.n_nationkey
            JOIN {d}.region AS r ON n.n_regionkey = r.r_regionkey
            WHERE r.r_name = 'ASIA'
              AND o.o_orderdate >= DATE '1995-01-01'
              AND o.o_orderdate < DATE '1996-01-01'
            GROUP BY n.n_name
            ORDER BY revenue DESC
        """,
        # Q6: forecasting revenue change (pure fact scan with range filter).
        "q06": f"""
            SELECT SUM(l_extendedprice * l_discount) AS revenue
            FROM {d}.lineitem
            WHERE l_shipdate >= DATE '1995-06-01'
              AND l_shipdate < DATE '1995-09-01'
              AND l_discount BETWEEN 0.03 AND 0.07
              AND l_quantity < 24
        """,
        # Q12: shipmode priority counts.
        "q12": f"""
            SELECT l.l_shipmode,
                   SUM(CASE WHEN o.o_orderpriority = '1-URGENT'
                            OR o.o_orderpriority = '2-HIGH'
                       THEN 1 ELSE 0 END) AS high_line_count,
                   SUM(CASE WHEN o.o_orderpriority != '1-URGENT'
                            AND o.o_orderpriority != '2-HIGH'
                       THEN 1 ELSE 0 END) AS low_line_count
            FROM {d}.orders AS o
            JOIN {d}.lineitem AS l ON l.l_orderkey = o.o_orderkey
            WHERE l.l_shipmode IN ('SHIP', 'RAIL')
              AND l.l_receiptdate >= DATE '1995-01-01'
              AND l.l_receiptdate < DATE '1996-01-01'
            GROUP BY l.l_shipmode
            ORDER BY l_shipmode
        """,
        # Q14: promotion effect.
        "q14": f"""
            SELECT 100.0 * SUM(CASE WHEN p.p_type LIKE 'PROMO%'
                                    THEN l.l_extendedprice * (1 - l.l_discount)
                                    ELSE 0.0 END)
                   / SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
            FROM {d}.lineitem AS l
            JOIN {d}.part AS p ON l.l_partkey = p.p_partkey
            WHERE l.l_shipdate >= DATE '1995-09-01'
              AND l.l_shipdate < DATE '1995-10-01'
        """,
    }
