"""Workload generators and query sets for the experiments.

* :mod:`repro.workloads.tpcds_lite` — a scaled-down TPC-DS star schema
  (store_sales fact + dimensions) with a power-run query set, used by the
  metadata-caching (E1), connector-statistics (E3), and Omni-parity (E9)
  experiments.
* :mod:`repro.workloads.tpch_lite` — a scaled-down TPC-H schema and query
  set for the Spark-parity experiment (E4) and Omni parity (E9).
* :mod:`repro.workloads.objects_corpus` — synthetic unstructured corpora:
  SIMG images with learnable class patterns and SDOC invoice documents,
  uploaded to object storage for the Object-table and inference
  experiments (E5, E7, E8).

All generators are deterministic under a seed.
"""

from repro.workloads import objects_corpus, tpcds_lite, tpch_lite

__all__ = ["objects_corpus", "tpcds_lite", "tpch_lite"]
