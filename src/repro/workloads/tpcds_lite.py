"""TPC-DS-lite: a scaled-down star schema and power-run query set.

The shape matters, not the scale: a ``store_sales`` fact with date, item,
store, customer, and promotion dimensions; fact files written in date
order so file-level min/max statistics can prune them (§3.3); snowflake
joins that benefit from dynamic partition pruning and join reordering
(§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batch import RecordBatch, batch_from_pydict
from repro.data.types import DataType, Schema
from repro.metastore.catalog import MetadataCacheMode, TableInfo
from repro.security.iam import Principal, Role
from repro.sql.dates import parse_date_to_days
from repro.storageapi.fileutil import write_data_file

CATEGORIES = ["Electronics", "Clothing", "Home", "Sports", "Books", "Music"]
BRANDS_PER_CATEGORY = 5
STATES = ["CA", "NY", "TX", "WA", "IL", "GA"]
DAY_NAMES = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]

SCHEMAS: dict[str, Schema] = {
    "date_dim": Schema.of(
        ("d_date_sk", DataType.INT64),
        ("d_date", DataType.DATE),
        ("d_year", DataType.INT64),
        ("d_moy", DataType.INT64),
        ("d_qoy", DataType.INT64),
        ("d_day_name", DataType.STRING),
    ),
    "item": Schema.of(
        ("i_item_sk", DataType.INT64),
        ("i_item_id", DataType.STRING),
        ("i_category", DataType.STRING),
        ("i_brand", DataType.STRING),
        ("i_class", DataType.STRING),
        ("i_current_price", DataType.FLOAT64),
        ("i_manager_id", DataType.INT64),
    ),
    "store": Schema.of(
        ("s_store_sk", DataType.INT64),
        ("s_store_id", DataType.STRING),
        ("s_store_name", DataType.STRING),
        ("s_state", DataType.STRING),
        ("s_market_id", DataType.INT64),
    ),
    "customer": Schema.of(
        ("c_customer_sk", DataType.INT64),
        ("c_customer_id", DataType.STRING),
        ("c_birth_year", DataType.INT64),
        ("c_preferred_cust_flag", DataType.STRING),
    ),
    "promotion": Schema.of(
        ("p_promo_sk", DataType.INT64),
        ("p_promo_id", DataType.STRING),
        ("p_channel_email", DataType.STRING),
        ("p_channel_event", DataType.STRING),
    ),
    "store_sales": Schema.of(
        ("ss_sold_date_sk", DataType.INT64),
        ("ss_item_sk", DataType.INT64),
        ("ss_store_sk", DataType.INT64),
        ("ss_customer_sk", DataType.INT64),
        ("ss_promo_sk", DataType.INT64),
        ("ss_quantity", DataType.INT64),
        ("ss_sales_price", DataType.FLOAT64),
        ("ss_ext_sales_price", DataType.FLOAT64),
        ("ss_net_profit", DataType.FLOAT64),
    ),
}

_BASE_ROWS = {
    "date_dim": 730,  # 2022-2023
    "item": 180,
    "store": 12,
    "customer": 800,
    "promotion": 30,
    "store_sales": 20_000,
}


@dataclass
class TpcdsData:
    """Generated tables, fact rows sorted by date for pruning-friendly
    file layout."""

    tables: dict[str, RecordBatch]

    def __getitem__(self, name: str) -> RecordBatch:
        return self.tables[name]


def generate(scale: float = 1.0, seed: int = 7) -> TpcdsData:
    """Generate the full schema at ``scale`` x the lite base size."""
    rng = np.random.default_rng(seed)
    tables: dict[str, RecordBatch] = {}

    n_dates = _BASE_ROWS["date_dim"]
    start = parse_date_to_days("2022-01-01")
    date_sks = np.arange(n_dates, dtype=np.int64)
    dates = start + date_sks
    months = ((date_sks % 365) // 31 + 1).clip(1, 12)
    tables["date_dim"] = batch_from_pydict(
        SCHEMAS["date_dim"],
        {
            "d_date_sk": date_sks,
            "d_date": dates,
            "d_year": 2022 + date_sks // 365,
            "d_moy": months,
            "d_qoy": (months - 1) // 3 + 1,
            "d_day_name": [DAY_NAMES[int(d % 7)] for d in date_sks],
        },
    )

    n_items = max(10, int(_BASE_ROWS["item"] * scale))
    item_sks = np.arange(1, n_items + 1, dtype=np.int64)
    categories = [CATEGORIES[i % len(CATEGORIES)] for i in range(n_items)]
    tables["item"] = batch_from_pydict(
        SCHEMAS["item"],
        {
            "i_item_sk": item_sks,
            "i_item_id": [f"ITEM{int(sk):06d}" for sk in item_sks],
            "i_category": categories,
            "i_brand": [
                f"{categories[i][:4]}Brand#{i % BRANDS_PER_CATEGORY + 1}"
                for i in range(n_items)
            ],
            "i_class": [f"class{i % 8}" for i in range(n_items)],
            "i_current_price": np.round(rng.uniform(0.5, 300.0, n_items), 2),
            "i_manager_id": rng.integers(1, 40, n_items),
        },
    )

    n_stores = max(2, int(_BASE_ROWS["store"] * scale**0.5))
    store_sks = np.arange(1, n_stores + 1, dtype=np.int64)
    tables["store"] = batch_from_pydict(
        SCHEMAS["store"],
        {
            "s_store_sk": store_sks,
            "s_store_id": [f"S{int(sk):04d}" for sk in store_sks],
            "s_store_name": [f"Store {int(sk)}" for sk in store_sks],
            "s_state": [STATES[i % len(STATES)] for i in range(n_stores)],
            "s_market_id": rng.integers(1, 10, n_stores),
        },
    )

    n_customers = max(20, int(_BASE_ROWS["customer"] * scale))
    cust_sks = np.arange(1, n_customers + 1, dtype=np.int64)
    tables["customer"] = batch_from_pydict(
        SCHEMAS["customer"],
        {
            "c_customer_sk": cust_sks,
            "c_customer_id": [f"C{int(sk):07d}" for sk in cust_sks],
            "c_birth_year": rng.integers(1940, 2005, n_customers),
            "c_preferred_cust_flag": rng.choice(["Y", "N"], n_customers).tolist(),
        },
    )

    n_promos = _BASE_ROWS["promotion"]
    promo_sks = np.arange(1, n_promos + 1, dtype=np.int64)
    tables["promotion"] = batch_from_pydict(
        SCHEMAS["promotion"],
        {
            "p_promo_sk": promo_sks,
            "p_promo_id": [f"P{int(sk):04d}" for sk in promo_sks],
            "p_channel_email": [("Y" if i % 3 == 0 else "N") for i in range(n_promos)],
            "p_channel_event": [("Y" if i % 4 == 0 else "N") for i in range(n_promos)],
        },
    )

    n_sales = max(100, int(_BASE_ROWS["store_sales"] * scale))
    sold_dates = np.sort(rng.integers(0, n_dates, n_sales)).astype(np.int64)
    quantity = rng.integers(1, 20, n_sales)
    price = np.round(rng.uniform(1.0, 250.0, n_sales), 2)
    tables["store_sales"] = batch_from_pydict(
        SCHEMAS["store_sales"],
        {
            "ss_sold_date_sk": sold_dates,
            "ss_item_sk": rng.integers(1, n_items + 1, n_sales),
            "ss_store_sk": rng.integers(1, n_stores + 1, n_sales),
            "ss_customer_sk": rng.integers(1, n_customers + 1, n_sales),
            "ss_promo_sk": rng.integers(1, n_promos + 1, n_sales),
            "ss_quantity": quantity,
            "ss_sales_price": price,
            "ss_ext_sales_price": np.round(price * quantity, 2),
            "ss_net_profit": np.round(price * quantity * rng.uniform(-0.2, 0.4, n_sales), 2),
        },
    )
    return TpcdsData(tables=tables)


def load_as_biglake(
    platform,
    principal: Principal,
    data: TpcdsData,
    dataset: str = "tpcds",
    bucket: str = "tpcds-lake",
    connection_name: str = "tpcds.lake",
    cache_mode: MetadataCacheMode = MetadataCacheMode.AUTOMATIC,
    fact_files: int = 24,
) -> dict[str, TableInfo]:
    """Upload the data set as pqs files and register BigLake tables.

    The fact table is split into ``fact_files`` files in date order, so
    per-file ``ss_sold_date_sk`` min/max statistics form disjoint ranges —
    the layout metadata caching prunes.
    """
    store = platform.stores.store_for(platform.config.home_region.location)
    if not store.has_bucket(bucket):
        store.create_bucket(bucket)
    if not platform.connections.has_connection(connection_name):
        conn = platform.connections.create_connection(connection_name)
        platform.connections.grant_lake_access(conn, bucket)
    platform.iam.grant(
        f"connections/{connection_name}", Role.CONNECTION_USER, principal
    )
    if not platform.catalog.has_dataset(dataset):
        platform.catalog.create_dataset(dataset)

    tables: dict[str, TableInfo] = {}
    for name, batch in data.tables.items():
        schema = SCHEMAS[name]
        prefix = f"{dataset}/{name}"
        if name == "store_sales":
            rows_per_file = max(1, batch.num_rows // fact_files)
            part = 0
            for start in range(0, batch.num_rows, rows_per_file):
                chunk = batch.slice(start, min(start + rows_per_file, batch.num_rows))
                write_data_file(
                    store, bucket, f"{prefix}/part-{part:05d}.pqs", schema, [chunk]
                )
                part += 1
        else:
            write_data_file(store, bucket, f"{prefix}/part-00000.pqs", schema, [batch])
        tables[name] = platform.tables.create_biglake_table(
            principal, dataset, name, schema, bucket, prefix, connection_name,
            cache_mode=cache_mode,
        )
    return tables


def load_as_managed(platform, data: TpcdsData, dataset: str = "tpcds_managed") -> dict[str, TableInfo]:
    """Load the data set into BigQuery managed storage."""
    if not platform.catalog.has_dataset(dataset):
        platform.catalog.create_dataset(dataset)
    tables = {}
    for name, batch in data.tables.items():
        table = platform.tables.create_managed_table(dataset, name, SCHEMAS[name])
        platform.managed.append(table.table_id, batch)
        tables[name] = table
    return tables


def queries(dataset: str = "tpcds") -> dict[str, str]:
    """The power-run query set (TPC-DS-shaped, written in our dialect)."""
    d = dataset
    return {
        # q3-like: brand revenue for one category in one month.
        "q03": f"""
            SELECT dt.d_year, i.i_brand, SUM(ss.ss_ext_sales_price) AS sum_agg
            FROM {d}.store_sales AS ss
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            WHERE i.i_category = 'Electronics' AND dt.d_moy = 11
            GROUP BY dt.d_year, i.i_brand
            ORDER BY sum_agg DESC, i_brand
            LIMIT 10
        """,
        # q7-like: average quantities by item with promotion + year filter
        # (the real q7 filters d_year too).
        "q07": f"""
            SELECT i.i_item_id, AVG(ss.ss_quantity) AS agg1,
                   AVG(ss.ss_sales_price) AS agg2
            FROM {d}.store_sales AS ss
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            JOIN {d}.promotion AS p ON ss.ss_promo_sk = p.p_promo_sk
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            WHERE p.p_channel_email = 'N' AND ss.ss_quantity > 5
              AND dt.d_year = 2023
            GROUP BY i.i_item_id
            ORDER BY i_item_id
            LIMIT 20
        """,
        # q19-like: brand revenue by manager for one month/year.
        "q19": f"""
            SELECT i.i_brand, i.i_manager_id, SUM(ss.ss_ext_sales_price) AS ext_price
            FROM {d}.store_sales AS ss
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            WHERE dt.d_year = 2023 AND dt.d_moy = 6 AND i.i_manager_id < 10
            GROUP BY i.i_brand, i.i_manager_id
            ORDER BY ext_price DESC
            LIMIT 10
        """,
        # q42-like: category revenue in a month.
        "q42": f"""
            SELECT dt.d_year, i.i_category, SUM(ss.ss_ext_sales_price) AS total
            FROM {d}.store_sales AS ss
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            WHERE dt.d_moy = 12 AND dt.d_year = 2022
            GROUP BY dt.d_year, i.i_category
            ORDER BY total DESC
        """,
        # q52-like: brand revenue ordered.
        "q52": f"""
            SELECT dt.d_year, i.i_brand, SUM(ss.ss_ext_sales_price) AS ext_price
            FROM {d}.store_sales AS ss
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            WHERE dt.d_moy = 11 AND dt.d_year = 2023
            GROUP BY dt.d_year, i.i_brand
            ORDER BY ext_price DESC, i_brand
            LIMIT 10
        """,
        # q55-like: manager brand revenue.
        "q55": f"""
            SELECT i.i_brand, SUM(ss.ss_ext_sales_price) AS ext_price
            FROM {d}.store_sales AS ss
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            JOIN {d}.item AS i ON ss.ss_item_sk = i.i_item_sk
            WHERE i.i_manager_id = 5 AND dt.d_moy = 11 AND dt.d_year = 2023
            GROUP BY i.i_brand
            ORDER BY ext_price DESC
            LIMIT 10
        """,
        # Narrow date-range scan: file pruning on fact statistics alone.
        "q_range": f"""
            SELECT COUNT(*) AS cnt, SUM(ss_ext_sales_price) AS revenue
            FROM {d}.store_sales
            WHERE ss_sold_date_sk BETWEEN 640 AND 670
        """,
        # Selective store filter with a snowflake join (DPP showcase).
        "q_dpp": f"""
            SELECT s.s_state, SUM(ss.ss_net_profit) AS profit
            FROM {d}.store_sales AS ss
            JOIN {d}.store AS s ON ss.ss_store_sk = s.s_store_sk
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            WHERE s.s_state = 'CA' AND dt.d_year = 2023
            GROUP BY s.s_state
        """,
        # q96-like: counting with store + month filters.
        "q96": f"""
            SELECT COUNT(*) AS cnt
            FROM {d}.store_sales AS ss
            JOIN {d}.store AS s ON ss.ss_store_sk = s.s_store_sk
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            WHERE s.s_market_id < 5 AND dt.d_day_name = 'Sat'
              AND dt.d_year = 2023 AND dt.d_moy = 3
        """,
        # Semi-join variant (real TPC-DS q95 uses IN-subqueries): sales in
        # stores located in one state.
        "q_semi": f"""
            SELECT COUNT(*) AS cnt, SUM(ss_net_profit) AS profit
            FROM {d}.store_sales
            WHERE ss_store_sk IN (
              SELECT s_store_sk FROM {d}.store WHERE s_state = 'CA'
            )
        """,
        # Customer-heavy join: preferred customers' spend by year.
        "q_cust": f"""
            SELECT dt.d_year, COUNT(*) AS orders, SUM(ss.ss_ext_sales_price) AS spend
            FROM {d}.store_sales AS ss
            JOIN {d}.customer AS c ON ss.ss_customer_sk = c.c_customer_sk
            JOIN {d}.date_dim AS dt ON ss.ss_sold_date_sk = dt.d_date_sk
            WHERE c.c_preferred_cust_flag = 'Y' AND c.c_birth_year < 1980
              AND dt.d_qoy = 2 AND dt.d_year = 2022
            GROUP BY dt.d_year
            ORDER BY dt.d_year
        """,
    }
