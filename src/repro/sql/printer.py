"""AST -> SQL text serialization.

Used when the engine pushes predicates down into Read API sessions: the
Read API's protocol carries row restrictions as SQL text (like the real
``row_restriction`` field), so pushed filters round-trip through the
printer and the parser.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.sql import ast_nodes as ast


def to_sql(expr: ast.Expr) -> str:
    """Render an expression AST back to parseable SQL."""
    if isinstance(expr, ast.Literal):
        return _literal(expr)
    if isinstance(expr, ast.ColumnRef):
        return ".".join(expr.parts)
    if isinstance(expr, ast.Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinaryOp):
        return f"({to_sql(expr.left)} {expr.op} {to_sql(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {to_sql(expr.operand)})"
        return f"(-{to_sql(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        negated = " NOT" if expr.negated else ""
        return f"({to_sql(expr.operand)} IS{negated} NULL)"
    if isinstance(expr, ast.InList):
        negated = "NOT " if expr.negated else ""
        items = ", ".join(to_sql(i) for i in expr.items)
        return f"({to_sql(expr.operand)} {negated}IN ({items}))"
    if isinstance(expr, ast.Between):
        negated = "NOT " if expr.negated else ""
        return (
            f"({to_sql(expr.operand)} {negated}BETWEEN "
            f"{to_sql(expr.low)} AND {to_sql(expr.high)})"
        )
    if isinstance(expr, ast.Like):
        negated = "NOT " if expr.negated else ""
        return f"({to_sql(expr.operand)} {negated}LIKE {_quote(expr.pattern)})"
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {to_sql(cond)} THEN {to_sql(value)}")
        if expr.default is not None:
            parts.append(f"ELSE {to_sql(expr.default)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.Cast):
        return f"CAST({to_sql(expr.operand)} AS {expr.target_type})"
    if isinstance(expr, ast.FunctionCall):
        if expr.is_star:
            return f"{expr.name}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(to_sql(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})"
    raise AnalysisError(f"cannot serialize expression {expr!r}")


def _literal(expr: ast.Literal) -> str:
    v = expr.value
    if expr.type_hint is not None:
        return f"{expr.type_hint} {_quote(str(v))}"
    if v is None:
        return "NULL"
    if isinstance(v, bool):
        return "TRUE" if v else "FALSE"
    if isinstance(v, str):
        return _quote(v)
    return repr(v)


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


def strip_qualifiers(expr: ast.Expr) -> ast.Expr:
    """Rewrite every column reference to its unqualified tail.

    Needed when pushing a predicate bound against a join's qualified
    schema (``o.amount``) into a single-table read session whose schema has
    plain names (``amount``).
    """
    if isinstance(expr, ast.ColumnRef):
        return ast.ColumnRef((expr.parts[-1],))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, strip_qualifiers(expr.left), strip_qualifiers(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, strip_qualifiers(expr.operand))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(strip_qualifiers(expr.operand), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            strip_qualifiers(expr.operand),
            tuple(strip_qualifiers(i) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            strip_qualifiers(expr.operand),
            strip_qualifiers(expr.low),
            strip_qualifiers(expr.high),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(strip_qualifiers(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple((strip_qualifiers(c), strip_qualifiers(v)) for c, v in expr.whens),
            strip_qualifiers(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(strip_qualifiers(expr.operand), expr.target_type)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(strip_qualifiers(a) for a in expr.args),
            expr.distinct,
            expr.is_star,
        )
    return expr
