"""GoogleSQL-flavored front end: lexer, AST, parser, and helpers.

The dialect covers what the paper's listings and workloads use: SELECT with
joins/aggregation/ordering, DML (INSERT/UPDATE/DELETE/MERGE), CTAS, and the
ML table-valued functions (``ML.PREDICT``, ``ML.PROCESS_DOCUMENT``) from
Listings 1 and 2. Name binding and vectorized evaluation live in
:mod:`repro.sql.expressions`, shared by the query engine and by the Read
API's Superluminal enforcement layer.
"""

from repro.sql.parser import parse_statement, parse_expression
from repro.sql import ast_nodes as ast
from repro.sql.expressions import (
    BoundExpr,
    Binder,
    evaluate,
    evaluate_predicate,
)

__all__ = [
    "parse_statement",
    "parse_expression",
    "ast",
    "BoundExpr",
    "Binder",
    "evaluate",
    "evaluate_predicate",
]
