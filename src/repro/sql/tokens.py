"""SQL lexer: text -> token stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
    "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
    "CROSS", "ON", "ASC", "DESC", "DISTINCT", "UNION", "ALL", "CASE",
    "WHEN", "THEN", "ELSE", "END", "CAST", "CREATE", "OR", "REPLACE",
    "TABLE", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "MERGE", "USING", "MATCHED", "TIMESTAMP", "DATE", "INTERVAL",
    "MODEL", "WITH", "COUNT", "EXCEPT", "IF", "EXISTS",
    "FOR", "SYSTEM_TIME", "OF", "OPTIONS", "REMOTE", "CONNECTION",
}

SYMBOLS = [
    "<=", ">=", "!=", "<>", "||", "(", ")", ",", ".", "*", "+", "-", "/",
    "%", "<", ">", "=", ";",
]


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text in symbols


def tokenize(sql: str) -> list[Token]:
    """Lex ``sql`` into tokens; raises :class:`SqlSyntaxError` on garbage."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":  # line comment
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "'":  # string literal with '' escaping
            j = i + 1
            chunks: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(chunks), i))
            i = j + 1
            continue
        if ch == "`":  # quoted identifier
            j = sql.find("`", i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenKind.IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        matched = False
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token(TokenKind.SYMBOL, sym, i))
                i += len(sym)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
