"""Name binding and vectorized expression evaluation.

The binder turns syntactic :mod:`~repro.sql.ast_nodes` expressions into
typed :class:`BoundExpr` trees against a concrete schema; the evaluator runs
bound trees over :class:`~repro.data.RecordBatch` columns with numpy,
honoring SQL three-valued NULL semantics. This evaluator *is* the
reproduction's Superluminal (§2.2.1): the Read API uses it to apply user
predicates, security filters, and masking before data leaves the trust
boundary, and the query engine uses it for filters and projections.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.data.batch import RecordBatch
from repro.data.column import Column
from repro.data.types import DataType, Schema
from repro.errors import AnalysisError, ExecutionError
from repro.sql import ast_nodes as ast
from repro.sql.dates import parse_date_to_days, parse_timestamp_to_micros

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


# --------------------------------------------------------------------------
# Bound expression nodes
# --------------------------------------------------------------------------


class BoundExpr:
    """Base class for bound (resolved, typed) expressions."""

    dtype: DataType


@dataclass(frozen=True)
class BoundColumn(BoundExpr):
    index: int
    name: str
    dtype: DataType


@dataclass(frozen=True)
class BoundLiteral(BoundExpr):
    value: Any
    dtype: DataType


@dataclass(frozen=True)
class BoundBinary(BoundExpr):
    op: str
    left: BoundExpr
    right: BoundExpr
    dtype: DataType


@dataclass(frozen=True)
class BoundUnary(BoundExpr):
    op: str
    operand: BoundExpr
    dtype: DataType


@dataclass(frozen=True)
class BoundIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool
    dtype: DataType = DataType.BOOL


@dataclass(frozen=True)
class BoundInList(BoundExpr):
    operand: BoundExpr
    values: tuple
    negated: bool
    dtype: DataType = DataType.BOOL


@dataclass(frozen=True)
class BoundLike(BoundExpr):
    operand: BoundExpr
    pattern: str
    negated: bool
    dtype: DataType = DataType.BOOL


@dataclass(frozen=True)
class BoundCase(BoundExpr):
    whens: tuple[tuple[BoundExpr, BoundExpr], ...]
    default: BoundExpr | None
    dtype: DataType


@dataclass(frozen=True)
class BoundCast(BoundExpr):
    operand: BoundExpr
    dtype: DataType


@dataclass(frozen=True)
class BoundCall(BoundExpr):
    name: str
    args: tuple[BoundExpr, ...]
    dtype: DataType
    impl: Callable = field(compare=False, hash=False)


# --------------------------------------------------------------------------
# Scalar function registry
# --------------------------------------------------------------------------


@dataclass
class ScalarFunction:
    """A registered scalar function: vectorized impl + result-type rule."""

    name: str
    impl: Callable  # (args: list[Column]) -> Column
    result_type: Callable  # (arg_dtypes: list[DataType]) -> DataType
    min_args: int = 1
    max_args: int | None = None


class FunctionRegistry:
    """Scalar function lookup; products (e.g. ML) register extras here."""

    def __init__(self) -> None:
        self._functions: dict[str, ScalarFunction] = {}
        _register_builtins(self)

    def register(self, fn: ScalarFunction) -> None:
        self._functions[fn.name.upper()] = fn

    def lookup(self, name: str) -> ScalarFunction:
        fn = self._functions.get(name.upper())
        if fn is None:
            raise AnalysisError(f"unknown function {name}()")
        return fn

    def has(self, name: str) -> bool:
        return name.upper() in self._functions


def _map_values(column: Column, fn: Callable, out_dtype: DataType) -> Column:
    """Apply ``fn`` per present value; nulls propagate."""
    valid = column.is_valid()
    out = np.empty(len(column), dtype=out_dtype.numpy_dtype())
    if out_dtype.numpy_dtype() != np.dtype(object):
        out = np.zeros(len(column), dtype=out_dtype.numpy_dtype())
    for i in range(len(column)):
        if valid[i]:
            out[i] = fn(column.values[i])
    return Column(out_dtype, out, None if bool(valid.all()) else valid)


def _register_builtins(reg: FunctionRegistry) -> None:
    from repro.sql import dates

    def _same(dtypes: list[DataType]) -> DataType:
        return dtypes[0]

    def _fixed(dtype: DataType) -> Callable:
        return lambda dtypes: dtype

    reg.register(ScalarFunction(
        "UPPER", lambda args: _map_values(args[0], str.upper, DataType.STRING),
        _fixed(DataType.STRING)))
    reg.register(ScalarFunction(
        "LOWER", lambda args: _map_values(args[0], str.lower, DataType.STRING),
        _fixed(DataType.STRING)))
    reg.register(ScalarFunction(
        "LENGTH", lambda args: _map_values(args[0], len, DataType.INT64),
        _fixed(DataType.INT64)))
    reg.register(ScalarFunction(
        "TRIM", lambda args: _map_values(args[0], str.strip, DataType.STRING),
        _fixed(DataType.STRING)))
    reg.register(ScalarFunction(
        "ABS", lambda args: Column(args[0].dtype, np.abs(args[0].values), args[0].validity),
        _same))

    def _round(args: list[Column]) -> Column:
        digits = 0
        if len(args) > 1:
            digits = int(args[1].values[0])
        return Column(DataType.FLOAT64, np.round(args[0].values.astype(np.float64), digits), args[0].validity)

    reg.register(ScalarFunction("ROUND", _round, _fixed(DataType.FLOAT64), max_args=2))
    reg.register(ScalarFunction(
        "FLOOR", lambda args: Column(DataType.FLOAT64, np.floor(args[0].values.astype(np.float64)), args[0].validity),
        _fixed(DataType.FLOAT64)))
    reg.register(ScalarFunction(
        "CEIL", lambda args: Column(DataType.FLOAT64, np.ceil(args[0].values.astype(np.float64)), args[0].validity),
        _fixed(DataType.FLOAT64)))

    def _concat(args: list[Column]) -> Column:
        n = len(args[0])
        valid = np.ones(n, dtype=bool)
        for a in args:
            valid &= a.is_valid()
        out = np.empty(n, dtype=object)
        for i in range(n):
            if valid[i]:
                out[i] = "".join(str(a.values[i]) for a in args)
        return Column(DataType.STRING, out, None if bool(valid.all()) else valid)

    reg.register(ScalarFunction("CONCAT", _concat, _fixed(DataType.STRING), max_args=None))

    def _substr(args: list[Column]) -> Column:
        start = int(args[1].values[0])
        length = int(args[2].values[0]) if len(args) > 2 else None
        begin = max(start - 1, 0)  # SQL SUBSTR is 1-based

        def cut(s: str) -> str:
            return s[begin : begin + length] if length is not None else s[begin:]

        return _map_values(args[0], cut, DataType.STRING)

    reg.register(ScalarFunction("SUBSTR", _substr, _fixed(DataType.STRING), min_args=2, max_args=3))

    def _coalesce(args: list[Column]) -> Column:
        n = len(args[0])
        out_dtype = args[0].dtype
        values = np.array(args[0].values, copy=True)
        valid = np.array(args[0].is_valid(), copy=True)
        for a in args[1:]:
            need = ~valid
            if not need.any():
                break
            avail = need & a.is_valid()
            values[avail] = a.values[avail]
            valid |= avail
        return Column(out_dtype, values, None if bool(valid.all()) else valid)

    reg.register(ScalarFunction("COALESCE", _coalesce, _same, min_args=2, max_args=None))
    reg.register(ScalarFunction("IFNULL", _coalesce, _same, min_args=2, max_args=2))

    def _if(args: list[Column]) -> Column:
        cond = args[0]
        truthy = cond.is_valid() & cond.values.astype(bool)
        out_dtype = args[1].dtype
        values = np.where(truthy, args[1].values, args[2].values)
        valid = np.where(truthy, args[1].is_valid(), args[2].is_valid())
        return Column(out_dtype, values, None if bool(valid.all()) else valid)

    def _if_type(dtypes: list[DataType]) -> DataType:
        return dtypes[1]

    reg.register(ScalarFunction("IF", _if, _if_type, min_args=3, max_args=3))

    def _safe_divide(args: list[Column]) -> Column:
        num = args[0].values.astype(np.float64)
        den = args[1].values.astype(np.float64)
        valid = args[0].is_valid() & args[1].is_valid() & (den != 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(valid, num / np.where(den == 0, 1.0, den), 0.0)
        return Column(DataType.FLOAT64, out, None if bool(valid.all()) else valid)

    reg.register(ScalarFunction("SAFE_DIVIDE", _safe_divide, _fixed(DataType.FLOAT64), min_args=2, max_args=2))

    def _temporal_part(extractor: Callable) -> Callable:
        def impl(args: list[Column]) -> Column:
            col = args[0]
            if col.dtype is DataType.TIMESTAMP:
                days = col.values // dates.MICROS_PER_DAY
            else:
                days = col.values
            return _map_values(Column(DataType.INT64, days, col.validity), extractor, DataType.INT64)

        return impl

    reg.register(ScalarFunction("YEAR", _temporal_part(dates.date_year), _fixed(DataType.INT64)))
    reg.register(ScalarFunction("MONTH", _temporal_part(dates.date_month), _fixed(DataType.INT64)))
    reg.register(ScalarFunction("DAY", _temporal_part(dates.date_day), _fixed(DataType.INT64)))

    def _starts_with(args: list[Column]) -> Column:
        prefix = args[1].values[0]
        return _map_values(args[0], lambda s: s.startswith(prefix), DataType.BOOL)

    reg.register(ScalarFunction("STARTS_WITH", _starts_with, _fixed(DataType.BOOL), min_args=2, max_args=2))

    def _regexp_contains(args: list[Column]) -> Column:
        pattern = re.compile(args[1].values[0])
        return _map_values(args[0], lambda s: pattern.search(s) is not None, DataType.BOOL)

    reg.register(ScalarFunction("REGEXP_CONTAINS", _regexp_contains, _fixed(DataType.BOOL), min_args=2, max_args=2))

    def _greatest(args: list[Column]) -> Column:
        values = args[0].values
        valid = args[0].is_valid()
        for a in args[1:]:
            values = np.maximum(values, a.values)
            valid = valid & a.is_valid()
        return Column(args[0].dtype, values, None if bool(valid.all()) else valid)

    def _least(args: list[Column]) -> Column:
        values = args[0].values
        valid = args[0].is_valid()
        for a in args[1:]:
            values = np.minimum(values, a.values)
            valid = valid & a.is_valid()
        return Column(args[0].dtype, values, None if bool(valid.all()) else valid)

    reg.register(ScalarFunction("GREATEST", _greatest, _same, min_args=2, max_args=None))
    reg.register(ScalarFunction("LEAST", _least, _same, min_args=2, max_args=None))

    def _timestamp(args: list[Column]) -> Column:
        col = args[0]
        if col.dtype is DataType.TIMESTAMP:
            return col
        if col.dtype is DataType.DATE:
            return Column(DataType.TIMESTAMP, col.values * dates.MICROS_PER_DAY, col.validity)
        return _map_values(col, dates.parse_timestamp_to_micros, DataType.TIMESTAMP)

    def _date(args: list[Column]) -> Column:
        col = args[0]
        if col.dtype is DataType.DATE:
            return col
        if col.dtype is DataType.TIMESTAMP:
            return Column(DataType.DATE, col.values // dates.MICROS_PER_DAY, col.validity)
        return _map_values(col, dates.parse_date_to_days, DataType.DATE)

    reg.register(ScalarFunction("TIMESTAMP", _timestamp, _fixed(DataType.TIMESTAMP)))
    reg.register(ScalarFunction("DATE", _date, _fixed(DataType.DATE)))


DEFAULT_FUNCTIONS = FunctionRegistry()


# --------------------------------------------------------------------------
# Binder
# --------------------------------------------------------------------------

_NUMERIC_RESULT = {
    ("+",): None, ("-",): None, ("*",): None,
}


class Binder:
    """Resolves names against a schema and type-checks expressions."""

    def __init__(self, schema: Schema, functions: FunctionRegistry | None = None) -> None:
        self.schema = schema
        self.functions = functions or DEFAULT_FUNCTIONS

    def bind(self, expr: ast.Expr) -> BoundExpr:
        if isinstance(expr, ast.Literal):
            return self._bind_literal(expr)
        if isinstance(expr, ast.ColumnRef):
            return self.bind_column(expr.name)
        if isinstance(expr, ast.BinaryOp):
            return self._bind_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._bind_unary(expr)
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self.bind(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            operand = self.bind(expr.operand)
            values = []
            for item in expr.items:
                bound = self.bind(item)
                if not isinstance(bound, BoundLiteral):
                    raise AnalysisError("IN list items must be literals")
                values.append(bound.value)
            return BoundInList(operand, tuple(values), expr.negated)
        if isinstance(expr, ast.Between):
            operand = self.bind(expr.operand)
            low = self.bind(expr.low)
            high = self.bind(expr.high)
            ge = BoundBinary(">=", operand, low, DataType.BOOL)
            le = BoundBinary("<=", operand, high, DataType.BOOL)
            both = BoundBinary("AND", ge, le, DataType.BOOL)
            if expr.negated:
                return BoundUnary("NOT", both, DataType.BOOL)
            return both
        if isinstance(expr, ast.Like):
            return BoundLike(self.bind(expr.operand), expr.pattern, expr.negated)
        if isinstance(expr, ast.Case):
            whens = tuple((self.bind(c), self.bind(v)) for c, v in expr.whens)
            default = self.bind(expr.default) if expr.default is not None else None
            dtype = whens[0][1].dtype
            return BoundCase(whens, default, dtype)
        if isinstance(expr, ast.Cast):
            try:
                target = DataType(expr.target_type)
            except ValueError:
                raise AnalysisError(f"unknown CAST target type {expr.target_type}") from None
            return BoundCast(self.bind(expr.operand), target)
        if isinstance(expr, ast.FunctionCall):
            return self._bind_call(expr)
        if isinstance(expr, ast.InSubquery):
            raise AnalysisError(
                "IN (SELECT ...) is only supported as a top-level WHERE "
                "conjunct (it lowers to a semi/anti join)"
            )
        raise AnalysisError(f"cannot bind expression {expr!r}")

    def bind_column(self, name: str) -> BoundColumn:
        """Resolve a possibly-qualified column name against the schema.

        Tries: exact match; the unqualified tail; then a unique
        ``*.name`` suffix match (for join outputs with qualified fields).
        """
        if self.schema.has_field(name):
            idx = self.schema.index_of(name)
            return BoundColumn(idx, self.schema.fields[idx].name, self.schema.fields[idx].dtype)
        if "." in name:
            tail = name.rsplit(".", 1)[1]
            if self.schema.has_field(tail):
                idx = self.schema.index_of(tail)
                return BoundColumn(idx, tail, self.schema.fields[idx].dtype)
        suffix = "." + name.lower()
        matches = [
            i for i, f in enumerate(self.schema.fields)
            if f.name.lower().endswith(suffix)
        ]
        if len(matches) == 1:
            f = self.schema.fields[matches[0]]
            return BoundColumn(matches[0], f.name, f.dtype)
        if len(matches) > 1:
            raise AnalysisError(f"ambiguous column reference {name!r}")
        raise AnalysisError(
            f"column {name!r} not found in [{', '.join(self.schema.names())}]"
        )

    def _bind_literal(self, expr: ast.Literal) -> BoundLiteral:
        v = expr.value
        if expr.type_hint == "TIMESTAMP":
            return BoundLiteral(parse_timestamp_to_micros(v), DataType.TIMESTAMP)
        if expr.type_hint == "DATE":
            return BoundLiteral(parse_date_to_days(v), DataType.DATE)
        if v is None:
            return BoundLiteral(None, DataType.STRING)
        if isinstance(v, bool):
            return BoundLiteral(v, DataType.BOOL)
        if isinstance(v, int):
            return BoundLiteral(v, DataType.INT64)
        if isinstance(v, float):
            return BoundLiteral(v, DataType.FLOAT64)
        if isinstance(v, str):
            return BoundLiteral(v, DataType.STRING)
        if isinstance(v, bytes):
            return BoundLiteral(v, DataType.BYTES)
        raise AnalysisError(f"unsupported literal {v!r}")

    def _coerce_pair(self, left: BoundExpr, right: BoundExpr) -> tuple[BoundExpr, BoundExpr]:
        """Insert implicit casts so both sides share a comparable type."""
        lt, rt = left.dtype, right.dtype
        if lt == rt:
            return left, right
        numeric = {DataType.INT64, DataType.FLOAT64}
        if lt in numeric and rt in numeric:
            if lt is DataType.INT64:
                return BoundCast(left, DataType.FLOAT64), right
            return left, BoundCast(right, DataType.FLOAT64)
        temporal = {DataType.TIMESTAMP, DataType.DATE}
        if lt in temporal and rt in temporal:
            # Compare as timestamps (DATE -> midnight).
            if lt is DataType.DATE:
                return BoundCast(left, DataType.TIMESTAMP), right
            return left, BoundCast(right, DataType.TIMESTAMP)
        if lt in temporal and rt is DataType.INT64:
            return left, BoundCast(right, lt)
        if rt in temporal and lt is DataType.INT64:
            return BoundCast(left, rt), right
        # Comparing a typed value with an untyped NULL literal.
        if isinstance(right, BoundLiteral) and right.value is None:
            return left, BoundLiteral(None, lt)
        if isinstance(left, BoundLiteral) and left.value is None:
            return BoundLiteral(None, rt), right
        raise AnalysisError(f"incompatible types {lt.value} and {rt.value}")

    def _bind_binary(self, expr: ast.BinaryOp) -> BoundExpr:
        left = self.bind(expr.left)
        right = self.bind(expr.right)
        op = expr.op
        if op in ("AND", "OR"):
            return BoundBinary(op, left, right, DataType.BOOL)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            left, right = self._coerce_pair(left, right)
            return BoundBinary(op, left, right, DataType.BOOL)
        if op == "||":
            return BoundBinary(op, left, right, DataType.STRING)
        if op in ("+", "-", "*", "/", "%"):
            left, right = self._coerce_pair(left, right)
            if op == "/":
                dtype = DataType.FLOAT64
            elif left.dtype is DataType.FLOAT64:
                dtype = DataType.FLOAT64
            else:
                dtype = left.dtype
            return BoundBinary(op, left, right, dtype)
        raise AnalysisError(f"unknown binary operator {op}")

    def _bind_unary(self, expr: ast.UnaryOp) -> BoundExpr:
        operand = self.bind(expr.operand)
        if expr.op == "NOT":
            return BoundUnary("NOT", operand, DataType.BOOL)
        if expr.op == "-":
            return BoundUnary("-", operand, operand.dtype)
        raise AnalysisError(f"unknown unary operator {expr.op}")

    def _bind_call(self, expr: ast.FunctionCall) -> BoundExpr:
        if expr.name in AGGREGATE_FUNCTIONS:
            raise AnalysisError(
                f"aggregate {expr.name}() not allowed here (only in SELECT/HAVING "
                "of a grouped query)"
            )
        fn = self.functions.lookup(expr.name)
        if len(expr.args) < fn.min_args or (
            fn.max_args is not None and len(expr.args) > fn.max_args
        ):
            raise AnalysisError(f"{fn.name}() arity mismatch: got {len(expr.args)} args")
        args = tuple(self.bind(a) for a in expr.args)
        dtype = fn.result_type([a.dtype for a in args])
        return BoundCall(expr.name.upper(), args, dtype, fn.impl)


# --------------------------------------------------------------------------
# Evaluator
# --------------------------------------------------------------------------


def evaluate(expr: BoundExpr, batch: RecordBatch) -> Column:
    """Evaluate a bound expression over a batch, returning one column."""
    n = batch.num_rows
    if isinstance(expr, BoundColumn):
        return batch.column_at(expr.index)
    if isinstance(expr, BoundLiteral):
        return Column.repeat(expr.dtype, expr.value, n)
    if isinstance(expr, BoundBinary):
        return _eval_binary(expr, batch)
    if isinstance(expr, BoundUnary):
        operand = evaluate(expr.operand, batch)
        if expr.op == "NOT":
            values = ~operand.values.astype(bool)
            return Column(DataType.BOOL, values, operand.validity)
        if expr.op == "-":
            return Column(operand.dtype, -operand.values, operand.validity)
        raise ExecutionError(f"unknown unary op {expr.op}")
    if isinstance(expr, BoundIsNull):
        operand = evaluate(expr.operand, batch)
        null_mask = ~operand.is_valid()
        result = ~null_mask if expr.negated else null_mask
        return Column(DataType.BOOL, result)
    if isinstance(expr, BoundInList):
        operand = evaluate(expr.operand, batch)
        hits = np.zeros(n, dtype=bool)
        for v in expr.values:
            hits |= operand.values == v
        hits &= operand.is_valid()
        if expr.negated:
            hits = ~hits & operand.is_valid()
        return Column(DataType.BOOL, hits, operand.validity)
    if isinstance(expr, BoundLike):
        operand = evaluate(expr.operand, batch)
        regex = _like_to_regex(expr.pattern)
        valid = operand.is_valid()
        out = np.zeros(n, dtype=bool)
        for i in range(n):
            if valid[i]:
                out[i] = regex.match(operand.values[i]) is not None
        if expr.negated:
            out = ~out & valid
        return Column(DataType.BOOL, out, operand.validity)
    if isinstance(expr, BoundCase):
        return _eval_case(expr, batch)
    if isinstance(expr, BoundCast):
        operand = evaluate(expr.operand, batch)
        return _eval_cast(operand, expr.dtype)
    if isinstance(expr, BoundCall):
        args = [evaluate(a, batch) for a in expr.args]
        return expr.impl(args)
    raise ExecutionError(f"cannot evaluate {expr!r}")


def evaluate_predicate(expr: BoundExpr, batch: RecordBatch) -> np.ndarray:
    """Evaluate a boolean expression to a selection mask (NULL -> False)."""
    col = evaluate(expr, batch)
    return col.values.astype(bool) & col.is_valid()


def _eval_binary(expr: BoundBinary, batch: RecordBatch) -> Column:
    op = expr.op
    if op in ("AND", "OR"):
        left = evaluate(expr.left, batch)
        right = evaluate(expr.right, batch)
        lv = left.values.astype(bool)
        rv = right.values.astype(bool)
        lvalid = left.is_valid()
        rvalid = right.is_valid()
        if op == "AND":
            values = lv & rv & lvalid & rvalid
            # Kleene: FALSE AND NULL = FALSE; NULL AND TRUE = NULL.
            known_false = (lvalid & ~lv) | (rvalid & ~rv)
            valid = (lvalid & rvalid) | known_false
        else:
            values = (lv & lvalid) | (rv & rvalid)
            known_true = (lvalid & lv) | (rvalid & rv)
            valid = (lvalid & rvalid) | known_true
        return Column(DataType.BOOL, values, None if bool(valid.all()) else valid)

    left = evaluate(expr.left, batch)
    right = evaluate(expr.right, batch)
    lvalid = left.is_valid()
    rvalid = right.is_valid()
    valid = lvalid & rvalid
    validity = None if bool(valid.all()) else valid

    if op == "||":
        out = np.empty(len(left), dtype=object)
        for i in range(len(left)):
            if valid[i]:
                out[i] = str(left.values[i]) + str(right.values[i])
        return Column(DataType.STRING, out, validity)

    if op in ("=", "!=", "<", "<=", ">", ">="):
        lv, rv = left.values, right.values
        if lv.dtype == np.dtype(object) and op not in ("=", "!="):
            # Ordered comparison of object (string/bytes) arrays must skip
            # null placeholders, which do not support '<'.
            values = np.zeros(len(lv), dtype=bool)
            cmp = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                   ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}[op]
            for i in np.flatnonzero(valid):
                values[i] = cmp(lv[i], rv[i])
            return Column(DataType.BOOL, values, validity)
        if op == "=":
            values = lv == rv
        elif op == "!=":
            values = lv != rv
        elif op == "<":
            values = lv < rv
        elif op == "<=":
            values = lv <= rv
        elif op == ">":
            values = lv > rv
        else:
            values = lv >= rv
        return Column(DataType.BOOL, np.asarray(values, dtype=bool), validity)

    lv, rv = left.values, right.values
    if op == "+":
        values = lv + rv
    elif op == "-":
        values = lv - rv
    elif op == "*":
        values = lv * rv
    elif op == "/":
        denom = rv.astype(np.float64)
        zero = denom == 0
        valid = valid & ~zero
        validity = None if bool(valid.all()) else valid
        with np.errstate(divide="ignore", invalid="ignore"):
            values = lv.astype(np.float64) / np.where(zero, 1.0, denom)
    elif op == "%":
        denom = np.where(rv == 0, 1, rv)
        valid = valid & (rv != 0)
        validity = None if bool(valid.all()) else valid
        values = lv % denom
    else:
        raise ExecutionError(f"unknown binary op {op}")
    return Column(expr.dtype, np.asarray(values, dtype=expr.dtype.numpy_dtype()), validity)


def _eval_case(expr: BoundCase, batch: RecordBatch) -> Column:
    n = batch.num_rows
    out_dtype = expr.dtype
    values = np.zeros(n, dtype=out_dtype.numpy_dtype())
    if out_dtype.numpy_dtype() == np.dtype(object):
        values = np.empty(n, dtype=object)
    valid = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    for cond_expr, value_expr in expr.whens:
        mask = evaluate_predicate(cond_expr, batch) & ~decided
        if mask.any():
            branch = evaluate(value_expr, batch)
            values[mask] = branch.values[mask]
            valid[mask] = branch.is_valid()[mask]
            decided |= mask
    remaining = ~decided
    if expr.default is not None and remaining.any():
        branch = evaluate(expr.default, batch)
        values[remaining] = branch.values[remaining]
        valid[remaining] = branch.is_valid()[remaining]
    return Column(out_dtype, values, None if bool(valid.all()) else valid)


def _eval_cast(operand: Column, target: DataType) -> Column:
    if operand.dtype == target:
        return operand
    src = operand.dtype
    validity = operand.validity
    if src is DataType.DATE and target is DataType.TIMESTAMP:
        from repro.sql.dates import MICROS_PER_DAY

        return Column(target, operand.values * MICROS_PER_DAY, validity)
    if src is DataType.TIMESTAMP and target is DataType.DATE:
        from repro.sql.dates import MICROS_PER_DAY

        return Column(target, operand.values // MICROS_PER_DAY, validity)
    if src.is_numeric and target.is_numeric:
        return Column(target, operand.values.astype(target.numpy_dtype()), validity)
    if src is DataType.INT64 and target.is_temporal:
        return Column(target, operand.values, validity)
    if target is DataType.STRING:
        out = np.empty(len(operand), dtype=object)
        valid = operand.is_valid()
        for i in range(len(operand)):
            if valid[i]:
                v = operand.values[i]
                out[i] = str(v.item() if isinstance(v, np.generic) else v)
        return Column(target, out, validity)
    if src is DataType.STRING and target is DataType.INT64:
        return _map_values(operand, int, DataType.INT64)
    if src is DataType.STRING and target is DataType.FLOAT64:
        return _map_values(operand, float, DataType.FLOAT64)
    if src is DataType.BOOL and target is DataType.INT64:
        return Column(target, operand.values.astype(np.int64), validity)
    if src.is_numeric and target is DataType.BOOL:
        return Column(target, operand.values.astype(bool), validity)
    raise ExecutionError(f"unsupported CAST from {src.value} to {target.value}")


def _like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def collect_column_refs(expr: ast.Expr) -> set[str]:
    """All column names referenced by a syntactic expression (for pruning
    and projection pushdown analysis)."""
    refs: set[str] = set()

    def walk(e: ast.Expr) -> None:
        if isinstance(e, ast.ColumnRef):
            refs.add(e.name)
        elif isinstance(e, ast.BinaryOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, ast.UnaryOp):
            walk(e.operand)
        elif isinstance(e, ast.IsNull):
            walk(e.operand)
        elif isinstance(e, ast.InList):
            walk(e.operand)
            for item in e.items:
                walk(item)
        elif isinstance(e, ast.Between):
            walk(e.operand)
            walk(e.low)
            walk(e.high)
        elif isinstance(e, ast.Like):
            walk(e.operand)
        elif isinstance(e, ast.Case):
            for c, v in e.whens:
                walk(c)
                walk(v)
            if e.default is not None:
                walk(e.default)
        elif isinstance(e, ast.Cast):
            walk(e.operand)
        elif isinstance(e, ast.FunctionCall):
            for a in e.args:
                walk(a)

    walk(expr)
    return refs
