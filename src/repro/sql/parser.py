"""Recursive-descent parser: token stream -> AST."""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.tokens import Token, TokenKind, tokenize

# Keywords that may double as function names when followed by '('.
_FUNCTION_KEYWORDS = {"COUNT", "IF", "DATE", "TIMESTAMP", "REPLACE", "LEFT", "RIGHT"}

# Non-structural keywords additionally allowed wherever an identifier is
# expected (so names like ``dataset.remote`` keep working).
_IDENT_OK_KEYWORDS = _FUNCTION_KEYWORDS | {
    "REMOTE", "CONNECTION", "OPTIONS", "SYSTEM_TIME", "OF", "MODEL",
}

# Keywords that terminate an implicit alias position.
_NO_ALIAS_KEYWORDS = {
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON", "JOIN", "INNER",
    "LEFT", "RIGHT", "FULL", "CROSS", "UNION", "USING", "WHEN", "SET",
    "AND", "OR", "THEN", "ELSE", "END",
}


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def accept_keyword(self, *words: str) -> Token | None:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Token | None:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None

    def expect_keyword(self, *words: str) -> Token:
        tok = self.accept_keyword(*words)
        if tok is None:
            raise SqlSyntaxError(
                f"expected {'/'.join(words)} but found {self.peek().text!r} "
                f"at position {self.peek().pos}"
            )
        return tok

    def expect_symbol(self, symbol: str) -> Token:
        tok = self.accept_symbol(symbol)
        if tok is None:
            raise SqlSyntaxError(
                f"expected {symbol!r} but found {self.peek().text!r} "
                f"at position {self.peek().pos}"
            )
        return tok

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return tok.text
        # Allow non-reserved keywords as identifiers in name position.
        if tok.kind is TokenKind.KEYWORD and tok.text in _IDENT_OK_KEYWORDS:
            self.advance()
            return tok.text.lower()
        raise SqlSyntaxError(
            f"expected identifier but found {tok.text!r} at position {tok.pos}"
        )

    def parse_dotted_name(self) -> tuple[str, ...]:
        parts = [self.expect_ident()]
        while self.accept_symbol("."):
            parts.append(self.expect_ident())
        return tuple(parts)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        tok = self.peek()
        if tok.is_keyword("SELECT"):
            stmt: ast.Statement = self.parse_select()
        elif tok.is_keyword("CREATE"):
            stmt = self.parse_create()
        elif tok.is_keyword("INSERT"):
            stmt = self.parse_insert()
        elif tok.is_keyword("UPDATE"):
            stmt = self.parse_update()
        elif tok.is_keyword("DELETE"):
            stmt = self.parse_delete()
        elif tok.is_keyword("MERGE"):
            stmt = self.parse_merge()
        else:
            raise SqlSyntaxError(f"unexpected statement start {tok.text!r}")
        self.accept_symbol(";")
        if self.peek().kind is not TokenKind.EOF:
            raise SqlSyntaxError(
                f"trailing input at position {self.peek().pos}: {self.peek().text!r}"
            )
        return stmt

    def parse_create(self) -> ast.CreateTableAsSelect | ast.CreateModel:
        self.expect_keyword("CREATE")
        replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            replace = True
        if self.accept_keyword("MODEL"):
            return self._parse_create_model(replace)
        self.expect_keyword("TABLE")
        table = self.parse_dotted_name()
        self.expect_keyword("AS")
        query = self.parse_select()
        return ast.CreateTableAsSelect(table=table, query=query, replace=replace)

    def _parse_create_model(self, replace: bool) -> ast.CreateModel:
        """Listing 2's DDL: CREATE MODEL name [REMOTE WITH CONNECTION conn]
        OPTIONS (key = literal, ...)."""
        name = self.parse_dotted_name()
        remote_connection = None
        if self.accept_keyword("REMOTE"):
            self.expect_keyword("WITH")
            self.expect_keyword("CONNECTION")
            remote_connection = self.parse_dotted_name()
        options: dict = {}
        if self.accept_keyword("OPTIONS"):
            self.expect_symbol("(")
            while True:
                key = self.expect_ident()
                self.expect_symbol("=")
                value = self.parse_expr()
                if not isinstance(value, ast.Literal):
                    raise SqlSyntaxError("OPTIONS values must be literals")
                options[key.lower()] = value.value
                if not self.accept_symbol(","):
                    break
            self.expect_symbol(")")
        return ast.CreateModel(
            name=name, replace=replace,
            remote_connection=remote_connection, options=options,
        )

    def parse_insert(self) -> ast.InsertValues | ast.InsertSelect:
        self.expect_keyword("INSERT")
        self.accept_keyword("INTO")
        table = self.parse_dotted_name()
        columns: list[str] = []
        if self.accept_symbol("("):
            columns.append(self.expect_ident())
            while self.accept_symbol(","):
                columns.append(self.expect_ident())
            self.expect_symbol(")")
        if self.accept_keyword("VALUES"):
            rows: list[list[ast.Expr]] = []
            while True:
                self.expect_symbol("(")
                row = [self.parse_expr()]
                while self.accept_symbol(","):
                    row.append(self.parse_expr())
                self.expect_symbol(")")
                rows.append(row)
                if not self.accept_symbol(","):
                    break
            return ast.InsertValues(table=table, columns=columns, rows=rows)
        query = self.parse_select()
        return ast.InsertSelect(table=table, columns=columns, query=query)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.parse_dotted_name()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_ident()
        self.expect_symbol("=")
        return column, self.parse_expr()

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.parse_dotted_name()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table=table, where=where)

    def parse_merge(self) -> ast.Merge:
        self.expect_keyword("MERGE")
        self.accept_keyword("INTO")
        target = self.parse_dotted_name()
        target_alias = self._maybe_alias()
        self.expect_keyword("USING")
        source = self.parse_from_primary()
        self.expect_keyword("ON")
        on = self.parse_expr()
        whens: list[ast.MergeWhenClause] = []
        while self.accept_keyword("WHEN"):
            whens.append(self._parse_merge_when())
        if not whens:
            raise SqlSyntaxError("MERGE requires at least one WHEN clause")
        return ast.Merge(
            target=target, target_alias=target_alias, source=source, on=on, whens=whens
        )

    def _parse_merge_when(self) -> ast.MergeWhenClause:
        matched = True
        if self.accept_keyword("NOT"):
            self.expect_keyword("MATCHED")
            matched = False
        else:
            self.expect_keyword("MATCHED")
        condition = self.parse_expr() if self.accept_keyword("AND") else None
        self.expect_keyword("THEN")
        if self.accept_keyword("UPDATE"):
            self.expect_keyword("SET")
            assignments = [self._parse_assignment()]
            while self.accept_symbol(","):
                assignments.append(self._parse_assignment())
            return ast.MergeWhenClause(
                matched=matched, condition=condition, action="UPDATE",
                assignments=assignments,
            )
        if self.accept_keyword("DELETE"):
            return ast.MergeWhenClause(
                matched=matched, condition=condition, action="DELETE"
            )
        self.expect_keyword("INSERT")
        insert_columns: list[str] = []
        if self.accept_symbol("("):
            insert_columns.append(self.expect_ident())
            while self.accept_symbol(","):
                insert_columns.append(self.expect_ident())
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        self.expect_symbol("(")
        insert_values = [self.parse_expr()]
        while self.accept_symbol(","):
            insert_values.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.MergeWhenClause(
            matched=matched, condition=condition, action="INSERT",
            insert_columns=insert_columns, insert_values=insert_values,
        )

    # -- SELECT ----------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self._parse_select_item()]
        while self.accept_symbol(","):
            items.append(self._parse_select_item())
        from_item = None
        if self.accept_keyword("FROM"):
            from_item = self.parse_from()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[ast.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_symbol(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self.accept_keyword("LIMIT"):
            tok = self.advance()
            if tok.kind is not TokenKind.NUMBER:
                raise SqlSyntaxError(f"LIMIT expects a number, got {tok.text!r}")
            limit = int(tok.text)
        select = ast.Select(
            items=items, from_item=from_item, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit, distinct=distinct,
        )
        if self.accept_keyword("UNION"):
            self.expect_keyword("ALL")
            select.union_all = self.parse_select()
        return select

    def _parse_select_item(self) -> ast.SelectItem:
        if self.accept_symbol("*"):
            return ast.SelectItem(expr=ast.Star())
        # alias.* form
        if (
            self.peek().kind is TokenKind.IDENT
            and self.peek(1).is_symbol(".")
            and self.peek(2).is_symbol("*")
        ):
            qualifier = self.advance().text
            self.advance()  # '.'
            self.advance()  # '*'
            return ast.SelectItem(expr=ast.Star(qualifier=qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().text
        return ast.SelectItem(expr=expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, ascending=ascending)

    # -- FROM / joins ------------------------------------------------------------

    def parse_from(self) -> ast.FromItem:
        left = self.parse_from_primary()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self.parse_from_primary()
                left = ast.Join(kind="CROSS", left=left, right=right)
                continue
            kind = None
            if self.peek().is_keyword("JOIN"):
                kind = "INNER"
                self.advance()
            elif self.peek().is_keyword("INNER") and self.peek(1).is_keyword("JOIN"):
                kind = "INNER"
                self.advance()
                self.advance()
            elif self.peek().is_keyword("LEFT") and (
                self.peek(1).is_keyword("JOIN")
                or (self.peek(1).is_keyword("OUTER") and self.peek(2).is_keyword("JOIN"))
            ):
                kind = "LEFT"
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            if kind is None:
                break
            right = self.parse_from_primary()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            left = ast.Join(kind=kind, left=left, right=right, condition=condition)
        return left

    def parse_from_primary(self) -> ast.FromItem:
        if self.accept_symbol("("):
            query = self.parse_select()
            self.expect_symbol(")")
            return ast.SubqueryRef(query=query, alias=self._maybe_alias())
        path = self.parse_dotted_name()
        name_upper = ".".join(path).upper()
        if self.peek().is_symbol("(") and name_upper.startswith("ML."):
            return self._parse_tvf(name_upper)
        system_time = None
        if self.accept_keyword("FOR"):
            self.expect_keyword("SYSTEM_TIME")
            self.expect_keyword("AS")
            self.expect_keyword("OF")
            system_time = self.parse_expr()
        return ast.TableRef(
            path=path, alias=self._maybe_alias(), system_time=system_time
        )

    def _parse_tvf(self, name: str) -> ast.TvfRef:
        self.expect_symbol("(")
        self.expect_keyword("MODEL")
        model = self.parse_dotted_name()
        input_query = None
        input_table = None
        if self.accept_symbol(","):
            if self.accept_keyword("TABLE"):
                input_table = self.parse_dotted_name()
            else:
                self.expect_symbol("(")
                input_query = self.parse_select()
                self.expect_symbol(")")
        self.expect_symbol(")")
        return ast.TvfRef(
            name=name, model=model, input_query=input_query,
            input_table=input_table, alias=self._maybe_alias(),
        )

    def _maybe_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident()
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return tok.text
        return None

    # -- expressions (precedence climbing) -----------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        tok = self.peek()
        if tok.is_symbol("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().text
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self._parse_additive())
        if tok.is_keyword("IS"):
            self.advance()
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated=negated)
        negated = False
        if tok.is_keyword("NOT"):
            nxt = self.peek(1)
            if nxt.is_keyword("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
                tok = self.peek()
        if tok.is_keyword("IN"):
            self.advance()
            self.expect_symbol("(")
            if self.peek().is_keyword("SELECT"):
                query = self.parse_select()
                self.expect_symbol(")")
                return ast.InSubquery(left, query, negated=negated)
            items = [self.parse_expr()]
            while self.accept_symbol(","):
                items.append(self.parse_expr())
            self.expect_symbol(")")
            return ast.InList(left, tuple(items), negated=negated)
        if tok.is_keyword("BETWEEN"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if tok.is_keyword("LIKE"):
            self.advance()
            pattern = self.advance()
            if pattern.kind is not TokenKind.STRING:
                raise SqlSyntaxError("LIKE expects a string pattern literal")
            return ast.Like(left, pattern.text, negated=negated)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.is_symbol("+", "-", "||"):
                op = self.advance().text
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.is_symbol("*", "/", "%"):
                op = self.advance().text
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            operand = self._parse_unary()
            # Constant-fold negated numeric literals so '-1' round-trips
            # as a literal (and pruning sees a plain bound).
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ) and operand.type_hint is None and not isinstance(operand.value, bool):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_symbol("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            text = tok.text
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if tok.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(tok.text)
        if tok.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if tok.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if tok.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if tok.is_keyword("TIMESTAMP", "DATE") and self.peek(1).kind is TokenKind.STRING:
            kind = self.advance().text
            literal = self.advance().text
            return ast.Literal(literal, type_hint=kind)
        if tok.is_keyword("CASE"):
            return self._parse_case()
        if tok.is_keyword("CAST"):
            self.advance()
            self.expect_symbol("(")
            operand = self.parse_expr()
            self.expect_keyword("AS")
            target = self.advance().text.upper()
            self.expect_symbol(")")
            return ast.Cast(operand, target)
        if tok.is_symbol("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if tok.kind is TokenKind.IDENT or (
            tok.kind is TokenKind.KEYWORD and tok.text in _FUNCTION_KEYWORDS
        ):
            return self._parse_name_or_call()
        raise SqlSyntaxError(
            f"unexpected token {tok.text!r} at position {tok.pos} in expression"
        )

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            value = self.parse_expr()
            whens.append((cond, value))
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN")
        return ast.Case(tuple(whens), default)

    def _parse_name_or_call(self) -> ast.Expr:
        parts = [self.advance().text]
        while self.peek().is_symbol(".") and (
            self.peek(1).kind is TokenKind.IDENT
            or (self.peek(1).kind is TokenKind.KEYWORD and self.peek(1).text in _FUNCTION_KEYWORDS)
        ):
            self.advance()
            parts.append(self.advance().text)
        if self.peek().is_symbol("("):
            self.advance()
            name = ".".join(parts).upper()
            if self.accept_symbol("*"):
                self.expect_symbol(")")
                return ast.FunctionCall(name, (), is_star=True)
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: list[ast.Expr] = []
            if not self.peek().is_symbol(")"):
                args.append(self.parse_expr())
                while self.accept_symbol(","):
                    args.append(self.parse_expr())
            self.expect_symbol(")")
            return ast.FunctionCall(name, tuple(args), distinct=distinct)
        return ast.ColumnRef(tuple(parts))


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used for row-policy predicates)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if parser.peek().kind is not TokenKind.EOF:
        raise SqlSyntaxError(
            f"trailing input in expression at position {parser.peek().pos}"
        )
    return expr
