"""Abstract syntax tree for the SQL dialect.

Expression nodes are pure syntax — name resolution and typing happen in
:mod:`repro.sql.expressions`. Statement nodes cover queries, DML, and CTAS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for expression AST nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # python value: int, float, str, bytes, bool, None
    type_hint: str | None = None  # "TIMESTAMP" / "DATE" for typed literals

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference: ``name`` or ``alias.name``."""

    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return ".".join(self.parts)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '/', '%', '=', '!=', '<', '<=', '>', '>=', 'AND', 'OR', '||'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'NOT', '-'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True, eq=False)
class InSubquery(Expr):
    """``operand [NOT] IN (SELECT ...)`` — lowered to a semi/anti join.

    Not structurally comparable (the subquery is mutable), so it is
    extracted from predicates before any rewriting that relies on
    equality.
    """

    operand: Expr
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None


@dataclass(frozen=True)
class Cast(Expr):
    operand: Expr
    target_type: str  # DataType value name


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar or aggregate function; name may be dotted (``ML.DECODE_IMAGE``)."""

    name: str  # upper-cased, dots preserved
    args: tuple[Expr, ...]
    distinct: bool = False  # COUNT(DISTINCT x)
    is_star: bool = False  # COUNT(*)

    def __str__(self) -> str:
        inner = "*" if self.is_star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass
class TableRef:
    """FROM item: a named table (dotted path) with optional alias and
    optional time travel (``FOR SYSTEM_TIME AS OF <timestamp>``)."""

    path: tuple[str, ...]
    alias: str | None = None
    system_time: Expr | None = None  # a TIMESTAMP-typed expression

    @property
    def name(self) -> str:
        return ".".join(self.path)


@dataclass
class SubqueryRef:
    query: "Select"
    alias: str | None = None


@dataclass
class TvfRef:
    """Table-valued function in FROM: ``ML.PREDICT(MODEL m, (subquery))`` or
    ``ML.PROCESS_DOCUMENT(MODEL m, TABLE t)``."""

    name: str  # e.g. "ML.PREDICT"
    model: tuple[str, ...]
    input_query: "Select | None" = None
    input_table: tuple[str, ...] | None = None
    options: dict[str, Any] = field(default_factory=dict)
    alias: str | None = None


@dataclass
class Join:
    kind: str  # 'INNER', 'LEFT', 'CROSS'
    left: "FromItem"
    right: "FromItem"
    condition: Expr | None = None


FromItem = TableRef | SubqueryRef | TvfRef | Join


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    """A SELECT query block (optionally UNION ALL-chained)."""

    items: list[SelectItem]
    from_item: FromItem | None = None
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    union_all: "Select | None" = None  # chained UNION ALL arm


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class CreateTableAsSelect:
    table: tuple[str, ...]
    query: Select
    replace: bool = False


@dataclass
class InsertValues:
    table: tuple[str, ...]
    columns: list[str]
    rows: list[list[Expr]]


@dataclass
class InsertSelect:
    table: tuple[str, ...]
    columns: list[str]
    query: Select


@dataclass
class Update:
    table: tuple[str, ...]
    assignments: list[tuple[str, Expr]]
    where: Expr | None = None


@dataclass
class Delete:
    table: tuple[str, ...]
    where: Expr | None = None


@dataclass
class MergeWhenClause:
    """One WHEN arm of a MERGE statement."""

    matched: bool
    condition: Expr | None
    action: str  # 'UPDATE', 'DELETE', 'INSERT'
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    insert_columns: list[str] = field(default_factory=list)
    insert_values: list[Expr] = field(default_factory=list)


@dataclass
class Merge:
    target: tuple[str, ...]
    target_alias: str | None
    source: FromItem
    on: Expr
    whens: list[MergeWhenClause] = field(default_factory=list)


@dataclass
class CreateModel:
    """``CREATE [OR REPLACE] MODEL name [REMOTE WITH CONNECTION conn]
    OPTIONS (k = 'v', ...)`` — the Listing 2 DDL."""

    name: tuple[str, ...]
    replace: bool = False
    remote_connection: tuple[str, ...] | None = None
    options: dict[str, Any] = field(default_factory=dict)


Statement = (
    Select
    | CreateTableAsSelect
    | InsertValues
    | InsertSelect
    | Update
    | Delete
    | Merge
    | CreateModel
)
