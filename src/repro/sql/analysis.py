"""Predicate analysis: extracting pruning constraints from SQL predicates.

Given a (syntactic) predicate, derive the per-column range/IN constraints
implied by its top-level conjunction. Disjunctions and non-literal
comparisons contribute nothing (pruning must stay sound). Used by the
engine's optimizer, the Read API's file pruner, and the Iceberg scanner.
"""

from __future__ import annotations

from typing import Any

from repro.metastore.constraints import ColumnConstraint, ConstraintSet
from repro.sql import ast_nodes as ast
from repro.sql.dates import parse_date_to_days, parse_timestamp_to_micros

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}


def _literal_value(expr: ast.Expr) -> tuple[bool, Any]:
    """(is_literal, value) — resolving typed literals and TIMESTAMP()/DATE()
    calls over string literals to their numeric representation."""
    if isinstance(expr, ast.Literal):
        if expr.type_hint == "TIMESTAMP":
            return True, parse_timestamp_to_micros(expr.value)
        if expr.type_hint == "DATE":
            return True, parse_date_to_days(expr.value)
        return True, expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        ok, value = _literal_value(expr.operand)
        if ok and isinstance(value, (int, float)):
            return True, -value
        return False, None
    if isinstance(expr, ast.FunctionCall) and len(expr.args) == 1:
        ok, value = _literal_value(expr.args[0])
        if ok and isinstance(value, str):
            if expr.name == "TIMESTAMP":
                return True, parse_timestamp_to_micros(value)
            if expr.name == "DATE":
                return True, parse_date_to_days(value)
    return False, None


def _column_name(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.ColumnRef):
        # Use the unqualified tail: file stats are keyed by plain names.
        return expr.parts[-1]
    return None


def extract_constraints(expr: ast.Expr | None) -> ConstraintSet:
    """Constraints implied by ``expr`` (sound under-approximation)."""
    constraints = ConstraintSet()
    if expr is None:
        return constraints
    _walk_conjunct(expr, constraints)
    return constraints


def _walk_conjunct(expr: ast.Expr, out: ConstraintSet) -> None:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        _walk_conjunct(expr.left, out)
        _walk_conjunct(expr.right, out)
        return
    if isinstance(expr, ast.BinaryOp) and expr.op in _COMPARISONS:
        _comparison(expr, out)
        return
    if isinstance(expr, ast.InList) and not expr.negated:
        column = _column_name(expr.operand)
        if column is None:
            return
        values = []
        for item in expr.items:
            ok, value = _literal_value(item)
            if not ok:
                return
            values.append(value)
        out.add(column, ColumnConstraint(in_set=frozenset(values)))
        return
    if isinstance(expr, ast.Between) and not expr.negated:
        column = _column_name(expr.operand)
        lo_ok, lo = _literal_value(expr.low)
        hi_ok, hi = _literal_value(expr.high)
        if column is not None and lo_ok and hi_ok:
            out.add(column, ColumnConstraint(lo=lo, hi=hi))
        return
    # OR / NOT / LIKE / IS NULL and anything else: no sound constraint.


def _comparison(expr: ast.BinaryOp, out: ConstraintSet) -> None:
    op = expr.op
    column = _column_name(expr.left)
    ok, value = _literal_value(expr.right)
    if column is None or not ok:
        # Try the mirrored form: literal OP column.
        column = _column_name(expr.right)
        ok, value = _literal_value(expr.left)
        if column is None or not ok:
            return
        mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        op = mirror.get(op, op)
    if value is None:
        return
    if op == "=":
        out.add(column, ColumnConstraint(lo=value, hi=value, in_set=frozenset({value})))
    elif op == "<":
        out.add(column, ColumnConstraint(hi=value))  # inclusive bound is sound
    elif op == "<=":
        out.add(column, ColumnConstraint(hi=value))
    elif op == ">":
        out.add(column, ColumnConstraint(lo=value))
    elif op == ">=":
        out.add(column, ColumnConstraint(lo=value))
    # '!=' prunes nothing at file granularity.
