"""Date/timestamp literal parsing and arithmetic helpers.

Internally, TIMESTAMP is int64 microseconds since the Unix epoch and DATE is
int64 days since the epoch (both UTC), matching the storage representation
in :mod:`repro.data.types`.
"""

from __future__ import annotations

import datetime as _dt

from repro.errors import AnalysisError

MICROS_PER_SECOND = 1_000_000
MICROS_PER_DAY = 86_400 * MICROS_PER_SECOND
_EPOCH = _dt.date(1970, 1, 1)


def parse_date_to_days(text: str) -> int:
    """``'YYYY-MM-DD'`` (also tolerating ``'YY-M-D'``) -> days since epoch."""
    parts = text.strip().split("-")
    if len(parts) != 3:
        raise AnalysisError(f"invalid DATE literal {text!r}")
    try:
        year, month, day = (int(p) for p in parts)
        if year < 100:  # two-digit years, as in the paper's Listing 1
            year += 2000
        return (_dt.date(year, month, day) - _EPOCH).days
    except ValueError as exc:
        raise AnalysisError(f"invalid DATE literal {text!r}: {exc}") from None


def parse_timestamp_to_micros(text: str) -> int:
    """``'YYYY-MM-DD[ HH:MM[:SS[.ffffff]]]'`` -> microseconds since epoch."""
    text = text.strip()
    date_part, _, time_part = text.partition(" ")
    days = parse_date_to_days(date_part)
    micros = days * MICROS_PER_DAY
    if time_part:
        pieces = time_part.split(":")
        try:
            hours = int(pieces[0])
            minutes = int(pieces[1]) if len(pieces) > 1 else 0
            seconds = float(pieces[2]) if len(pieces) > 2 else 0.0
        except (ValueError, IndexError) as exc:
            raise AnalysisError(f"invalid TIMESTAMP literal {text!r}: {exc}") from None
        micros += int(((hours * 60 + minutes) * 60 + seconds) * MICROS_PER_SECOND)
    return micros


def days_to_date_string(days: int) -> str:
    return (_EPOCH + _dt.timedelta(days=int(days))).isoformat()


def micros_to_timestamp_string(micros: int) -> str:
    dt = _dt.datetime(1970, 1, 1) + _dt.timedelta(microseconds=int(micros))
    return dt.strftime("%Y-%m-%d %H:%M:%S.%f")


def date_year(days: int) -> int:
    return (_EPOCH + _dt.timedelta(days=int(days))).year


def date_month(days: int) -> int:
    return (_EPOCH + _dt.timedelta(days=int(days))).month


def date_day(days: int) -> int:
    return (_EPOCH + _dt.timedelta(days=int(days))).day
