"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``        — run the quickstart scenario inline (no files needed).
* ``trace <sql>`` — run a query over the demo lake and print its
  cross-layer span tree (``explain_analyze``) plus the metrics dump.
* ``jobs``        — run a demo workload, then query the job history
  *through its own SQL surface* (``INFORMATION_SCHEMA.JOBS``).
  ``--timeline JOB_ID`` prints the per-span timeline for one job;
  ``--chrome-trace OUT.json`` exports it for ``chrome://tracing``.
* ``experiments`` — run the full E1–E12 + future-work benchmark suite.
* ``info``        — print the module inventory and experiment index.
"""

from __future__ import annotations

import argparse
import subprocess
import sys


def _build_demo_platform():
    """(platform, admin) with the quickstart ``demo.orders`` lake loaded."""
    from repro import (
        DataType, LakehousePlatform, MetadataCacheMode, Role, Schema,
        batch_from_pydict,
    )
    from repro.storageapi.fileutil import write_data_file

    platform = LakehousePlatform()
    admin = platform.admin_user()
    store = platform.stores.store_for("gcp/us-central1")
    store.create_bucket("demo-lake")
    schema = Schema.of(
        ("id", DataType.INT64), ("region", DataType.STRING), ("amount", DataType.FLOAT64)
    )
    for part in range(3):
        write_data_file(
            store, "demo-lake", f"orders/part-{part}.pqs", schema,
            [batch_from_pydict(schema, {
                "id": list(range(part * 100, part * 100 + 100)),
                "region": [("us", "eu", "apac")[i % 3] for i in range(100)],
                "amount": [float(i) for i in range(100)],
            })],
        )
    conn = platform.connections.create_connection("us.demo")
    platform.connections.grant_lake_access(conn, "demo-lake")
    platform.iam.grant("connections/us.demo", Role.CONNECTION_USER, admin)
    platform.catalog.create_dataset("demo")
    platform.tables.create_biglake_table(
        admin, "demo", "orders", schema, "demo-lake", "orders", "us.demo",
        cache_mode=MetadataCacheMode.AUTOMATIC,
    )
    return platform, admin


def _trace(sql: str | None) -> int:
    from repro.errors import ReproError

    platform, admin = _build_demo_platform()
    if not sql:
        sql = (
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
            "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC"
        )
    print(f"-- {sql}\n")
    try:
        print(platform.home_engine.explain_analyze(sql, admin))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("\n-- metrics\n")
    print(platform.metrics_text(), end="")
    return 0


def _demo() -> int:
    platform, admin = _build_demo_platform()
    result = platform.home_engine.execute(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC",
        admin,
    )
    print("region  orders  total")
    for region, n, total in result.rows():
        print(f"{region:<7} {n:>6}  {total:>8,.1f}")
    print(
        f"\nscanned {result.stats.files_read}/{result.stats.files_total} files "
        f"({result.stats.files_pruned} pruned by the metadata cache); "
        f"simulated latency {result.stats.elapsed_ms:.1f} ms"
    )
    return 0


def _jobs(timeline: str | None, chrome_trace_path: str | None) -> int:
    """Run a small workload, then inspect it via INFORMATION_SCHEMA."""
    from repro.errors import ReproError
    from repro.obs.export import chrome_trace_json

    platform, admin = _build_demo_platform()
    engine = platform.home_engine
    workload = [
        "SELECT region, COUNT(*) AS n FROM demo.orders GROUP BY region",
        "SELECT SUM(amount) AS total FROM demo.orders WHERE id < 150",
        "SELECT * FROM demo.no_such_table",  # deliberate failure, stays in history
    ]
    for sql in workload:
        try:
            engine.execute(sql, admin)
        except ReproError:
            pass

    # Dogfood: the report below is itself a query over the system tables.
    result = engine.execute(
        "SELECT job_id, state, total_ms, bytes_scanned, sql "
        "FROM INFORMATION_SCHEMA.JOBS ORDER BY job_id",
        admin,
    )
    print("job_id      state      total_ms  bytes_scanned  sql")
    for job_id, state, total_ms, bytes_scanned, sql in result.rows():
        text = sql if len(sql) <= 48 else sql[:45] + "..."
        print(f"{job_id}  {state:<9} {total_ms:>9.2f}  {bytes_scanned:>13,}  {text}")

    if timeline:
        print(f"\n-- timeline for {timeline}\n")
        try:
            rows = engine.execute(
                "SELECT span_id, parent_span_id, name, layer, start_ms, "
                "duration_ms, self_ms FROM INFORMATION_SCHEMA.JOBS_TIMELINE "
                f"WHERE job_id = '{timeline}' ORDER BY span_id",
                admin,
            ).rows()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not rows:
            print(f"error: no timeline rows for {timeline!r}", file=sys.stderr)
            return 1
        print("span  parent  layer       start_ms  dur_ms  self_ms  name")
        for span_id, parent_id, name, layer, start_ms, dur_ms, self_ms in rows:
            print(
                f"{span_id:>4}  {parent_id:>6}  {layer:<10} {start_ms:>9.2f} "
                f"{dur_ms:>7.2f} {self_ms:>8.2f}  {name}"
            )

    if chrome_trace_path:
        try:
            record = platform.job(timeline) if timeline else platform.history.last
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if record is None or record.trace is None:
            print("error: no trace retained to export", file=sys.stderr)
            return 1
        with open(chrome_trace_path, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(record.trace, process_name=record.job_id))
        print(f"\nwrote Chrome trace for {record.job_id} to {chrome_trace_path}")
    return 0


def _experiments(extra: list[str]) -> int:
    command = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-p", "no:warnings", "-s", "-q", *extra,
    ]
    return subprocess.call(command)


def _info() -> int:
    import repro

    print(f"repro {repro.__version__} — BigLake reproduction (SIGMOD 2024)")
    print(__doc__)
    print("Subsystems: data, formats, objectstore, cloud, security, metastore,")
    print("  tableformats, sql, engine, storageapi, core, objects, ml, omni,")
    print("  external, workloads, bench")
    print("Experiments: see DESIGN.md (index) and EXPERIMENTS.md (results).")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command", choices=["demo", "trace", "jobs", "experiments", "info"],
        nargs="?", default="demo",
    )
    parser.add_argument(
        "extra", nargs="*",
        help="SQL for 'trace'; extra pytest args for 'experiments'",
    )
    parser.add_argument(
        "--timeline", metavar="JOB_ID",
        help="for 'jobs': print the per-span timeline of one job",
    )
    parser.add_argument(
        "--chrome-trace", metavar="OUT.json", dest="chrome_trace",
        help="for 'jobs': write the job's trace in Chrome trace-event format",
    )
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "trace":
        return _trace(" ".join(args.extra) if args.extra else None)
    if args.command == "jobs":
        return _jobs(args.timeline, args.chrome_trace)
    if args.command == "experiments":
        return _experiments(args.extra)
    return _info()


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        raise SystemExit(0)
