"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``        — run the quickstart scenario inline (no files needed).
* ``experiments`` — run the full E1–E12 + future-work benchmark suite.
* ``info``        — print the module inventory and experiment index.
"""

from __future__ import annotations

import argparse
import subprocess
import sys


def _demo() -> int:
    from repro import (
        DataType, LakehousePlatform, MetadataCacheMode, Role, Schema,
        batch_from_pydict,
    )
    from repro.storageapi.fileutil import write_data_file

    platform = LakehousePlatform()
    admin = platform.admin_user()
    store = platform.stores.store_for("gcp/us-central1")
    store.create_bucket("demo-lake")
    schema = Schema.of(
        ("id", DataType.INT64), ("region", DataType.STRING), ("amount", DataType.FLOAT64)
    )
    for part in range(3):
        write_data_file(
            store, "demo-lake", f"orders/part-{part}.pqs", schema,
            [batch_from_pydict(schema, {
                "id": list(range(part * 100, part * 100 + 100)),
                "region": [("us", "eu", "apac")[i % 3] for i in range(100)],
                "amount": [float(i) for i in range(100)],
            })],
        )
    conn = platform.connections.create_connection("us.demo")
    platform.connections.grant_lake_access(conn, "demo-lake")
    platform.iam.grant("connections/us.demo", Role.CONNECTION_USER, admin)
    platform.catalog.create_dataset("demo")
    platform.tables.create_biglake_table(
        admin, "demo", "orders", schema, "demo-lake", "orders", "us.demo",
        cache_mode=MetadataCacheMode.AUTOMATIC,
    )
    result = platform.home_engine.query(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC",
        admin,
    )
    print("region  orders  total")
    for region, n, total in result.rows():
        print(f"{region:<7} {n:>6}  {total:>8,.1f}")
    print(
        f"\nscanned {result.stats.files_read}/{result.stats.files_total} files "
        f"({result.stats.files_pruned} pruned by the metadata cache); "
        f"simulated latency {result.stats.elapsed_ms:.1f} ms"
    )
    return 0


def _experiments(extra: list[str]) -> int:
    command = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-p", "no:warnings", "-s", "-q", *extra,
    ]
    return subprocess.call(command)


def _info() -> int:
    import repro

    print(f"repro {repro.__version__} — BigLake reproduction (SIGMOD 2024)")
    print(__doc__)
    print("Subsystems: data, formats, objectstore, cloud, security, metastore,")
    print("  tableformats, sql, engine, storageapi, core, objects, ml, omni,")
    print("  external, workloads, bench")
    print("Experiments: see DESIGN.md (index) and EXPERIMENTS.md (results).")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command", choices=["demo", "experiments", "info"], nargs="?", default="demo"
    )
    parser.add_argument("extra", nargs="*", help="extra pytest args for 'experiments'")
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "experiments":
        return _experiments(args.extra)
    return _info()


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        raise SystemExit(0)
