"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``        — run the quickstart scenario inline (no files needed).
* ``trace <sql>`` — run a query over the demo lake and print its
  cross-layer span tree (``explain_analyze``) plus the metrics dump.
* ``jobs``        — run a demo workload, then query the job history
  *through its own SQL surface* (``INFORMATION_SCHEMA.JOBS``).
  ``--timeline JOB_ID`` prints the per-span timeline for one job;
  ``--chrome-trace OUT.json`` exports it for ``chrome://tracing``.
* ``chaos [sql]`` — run a workload under seeded fault injection and report
  per-job outcomes (state, retries, degradation) from
  ``INFORMATION_SCHEMA.JOBS``. ``--seed N`` makes the run exactly
  replayable; ``--plan "op:rate=0.1"`` declares faults (repeatable) or
  ``--rate R`` installs the uniform transient mix; ``--suite`` runs the
  TPC-H-lite suite instead of one statement; ``--no-retries`` disables
  recovery; ``--json OUT`` writes a machine-readable report.
* ``cache-stats`` — run the demo query cold then warm and print the
  per-tier data-cache counters via ``INFORMATION_SCHEMA.CACHE_STATS``.
  Exits non-zero if the warm run's rows differ from the cold run's or if
  the warm run served no bytes from the cache; the output is
  deterministic, so two invocations must be byte-identical.
* ``querycache`` — plan + query-result cache walkthrough: the demo query
  cold then warm with ``use_query_cache=True`` (the warm run must return
  byte-identical rows, report ``cache_hit``, scan zero bytes, and issue
  strictly fewer object-store GETs), then a DML leg against a managed
  table proving snapshot-keyed coherence — the INSERT makes the next run
  a miss with fresh rows while the old entries stay resident (coherence
  by keying, never flushing). Exits non-zero if any invariant fails; the
  output is deterministic, so two invocations must be byte-identical
  (the query-cache coherence gate in ``scripts/check.sh``).
* ``serve`` — replay a seeded mixed TPC-H/TPC-DS-lite multi-principal
  workload through the async jobs API: jobs arrive with seeded gaps,
  queue under admission control, and share one slot pool fairly across
  principals. Reports per-principal p50/p99 queue wait and the workload
  makespan, tied out against ``INFORMATION_SCHEMA.JOBS`` /
  ``JOBS_TIMELINE`` (exit non-zero on any mismatch). ``--smoke`` runs a
  small fast variant for CI; ``--chaos`` (or explicit ``--plan`` specs)
  runs the same workload under seeded fault injection; ``--json OUT``
  writes the deterministic report — two invocations with the same seed
  must be byte-identical (the serve determinism gate in
  ``scripts/check.sh``).
* ``monitor`` — run the ``serve`` workload under fleet telemetry: the
  sim-time TSDB scrapes the metrics registry, every shared-pool batch is
  sampled into ``INFORMATION_SCHEMA.RESERVATION_TIMELINE``, and the SLO
  alert engine evaluates deterministically on the sim clock (results in
  ``INFORMATION_SCHEMA.ALERTS``). Prints utilization/queue-depth
  timelines, the alert log, and per-principal variance attribution;
  exits non-zero if the reservation timeline fails to tie out against
  ``JOBS``/``JOBS_TIMELINE`` aggregates, or if a ``--chaos`` run fires
  no burn-rate alert. Deterministic: same seed ⇒ byte-identical
  ``--json`` report. ``--chrome-trace OUT.json`` exports the whole run
  (per-principal lanes) for Perfetto.
* ``schedule [sql]`` — run a query over a deliberately skewed demo lake
  (one fat file among small ones) under a seeded ``task.slow`` straggler
  plan, once with speculative execution and once without, and print the
  scheduler's per-task timeline. Self-checking: exits non-zero if the two
  runs' rows differ or speculation made the query slower. ``--seed`` makes
  the run exactly replayable and ``--json OUT`` writes the timeline
  report; the output is deterministic, so two invocations with the same
  seed must be byte-identical (the CI scheduler determinism gate).
* ``txn`` — multi-table ACID transaction walkthrough: concurrent seeded
  writers co-mutate ``txn.orders``/``txn.lineitems`` (every commit inserts
  a lineitem and bumps the matching order total atomically) while the
  torn-state oracle checks the cross-table invariant in every obtainable
  view — mid-flight, final, and as-of each commit marker. ``--chaos``
  injects writer crashes at every publish step plus storage/metadata
  transients; ``--recover`` runs a crash-heavy profile that must exercise
  the recovery sweep; ``--smoke`` is the small CI variant. Exits non-zero
  on any invariant violation, dangling intent, or lost transaction.
  Deterministic: same seed ⇒ byte-identical ``--json`` report (the txn
  determinism gate in ``scripts/check.sh``).
* ``readsession`` — serializable session handoff walkthrough: one
  multi-stream read session over a skewed lake, serialized to a byte
  handle and drained by one attached consumer per stream — healthy, with
  an injected consumer lag, and with the lag plus the dynamic stream
  rebalancer. Exits non-zero if any leg's row CRC differs or rebalancing
  recovers none of the lag inflation. ``--chaos`` adds transient faults
  on the read path; ``--smoke`` is the small CI variant. Deterministic:
  same seed ⇒ byte-identical ``--json`` report (the readsession
  determinism gate in ``scripts/check.sh``).
* ``experiments`` — run the full E1–E12 + future-work benchmark suite.
* ``info``        — print the module inventory and experiment index.
"""

from __future__ import annotations

import argparse
import subprocess
import sys


def _build_demo_platform():
    """(platform, admin) with the quickstart ``demo.orders`` lake loaded."""
    from repro import (
        DataType, LakehousePlatform, MetadataCacheMode, Role, Schema,
        batch_from_pydict,
    )
    from repro.storageapi.fileutil import write_data_file

    platform = LakehousePlatform()
    admin = platform.admin_user()
    store = platform.stores.store_for("gcp/us-central1")
    store.create_bucket("demo-lake")
    schema = Schema.of(
        ("id", DataType.INT64), ("region", DataType.STRING), ("amount", DataType.FLOAT64)
    )
    for part in range(3):
        write_data_file(
            store, "demo-lake", f"orders/part-{part}.pqs", schema,
            [batch_from_pydict(schema, {
                "id": list(range(part * 100, part * 100 + 100)),
                "region": [("us", "eu", "apac")[i % 3] for i in range(100)],
                "amount": [float(i) for i in range(100)],
            })],
        )
    conn = platform.connections.create_connection("us.demo")
    platform.connections.grant_lake_access(conn, "demo-lake")
    platform.iam.grant("connections/us.demo", Role.CONNECTION_USER, admin)
    platform.catalog.create_dataset("demo")
    platform.tables.create_biglake_table(
        admin, "demo", "orders", schema, "demo-lake", "orders", "us.demo",
        cache_mode=MetadataCacheMode.AUTOMATIC,
    )
    return platform, admin


def _trace(sql: str | None) -> int:
    from repro.errors import ReproError

    platform, admin = _build_demo_platform()
    if not sql:
        sql = (
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
            "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC"
        )
    print(f"-- {sql}\n")
    try:
        print(platform.home_engine.explain_analyze(sql, admin))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("\n-- metrics\n")
    print(platform.metrics_text(), end="")
    return 0


def _demo() -> int:
    platform, admin = _build_demo_platform()
    result = platform.home_engine.execute(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC",
        admin,
    )
    print("region  orders  total")
    for region, n, total in result.rows():
        print(f"{region:<7} {n:>6}  {total:>8,.1f}")
    print(
        f"\nscanned {result.stats.files_read}/{result.stats.files_total} files "
        f"({result.stats.files_pruned} pruned by the metadata cache); "
        f"simulated latency {result.stats.elapsed_ms:.1f} ms"
    )
    return 0


def _jobs(timeline: str | None, chrome_trace_path: str | None) -> int:
    """Run a small workload, then inspect it via INFORMATION_SCHEMA."""
    from repro.errors import ReproError
    from repro.obs.export import chrome_trace_json

    platform, admin = _build_demo_platform()
    engine = platform.home_engine
    workload = [
        "SELECT region, COUNT(*) AS n FROM demo.orders GROUP BY region",
        "SELECT SUM(amount) AS total FROM demo.orders WHERE id < 150",
        "SELECT * FROM demo.no_such_table",  # deliberate failure, stays in history
    ]
    for sql in workload:
        try:
            engine.execute(sql, admin)
        except ReproError:
            pass

    # Dogfood: the report below is itself a query over the system tables.
    result = engine.execute(
        "SELECT job_id, state, total_ms, bytes_scanned, sql "
        "FROM INFORMATION_SCHEMA.JOBS ORDER BY job_id",
        admin,
    )
    print("job_id      state      total_ms  bytes_scanned  sql")
    for job_id, state, total_ms, bytes_scanned, sql in result.rows():
        text = sql if len(sql) <= 48 else sql[:45] + "..."
        print(f"{job_id}  {state:<9} {total_ms:>9.2f}  {bytes_scanned:>13,}  {text}")

    if timeline:
        print(f"\n-- timeline for {timeline}\n")
        try:
            rows = engine.execute(
                "SELECT span_id, parent_span_id, name, layer, start_ms, "
                "duration_ms, self_ms FROM INFORMATION_SCHEMA.JOBS_TIMELINE "
                f"WHERE job_id = '{timeline}' ORDER BY span_id",
                admin,
            ).rows()
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not rows:
            print(f"error: no timeline rows for {timeline!r}", file=sys.stderr)
            return 1
        print("span  parent  layer       start_ms  dur_ms  self_ms  name")
        for span_id, parent_id, name, layer, start_ms, dur_ms, self_ms in rows:
            print(
                f"{span_id:>4}  {parent_id:>6}  {layer:<10} {start_ms:>9.2f} "
                f"{dur_ms:>7.2f} {self_ms:>8.2f}  {name}"
            )

    if chrome_trace_path:
        try:
            record = platform.job(timeline) if timeline else platform.history.last
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if record is None or record.trace is None:
            print("error: no trace retained to export", file=sys.stderr)
            return 1
        with open(chrome_trace_path, "w", encoding="utf-8") as fh:
            fh.write(chrome_trace_json(record.trace, process_name=record.job_id))
        print(f"\nwrote Chrome trace for {record.job_id} to {chrome_trace_path}")
    return 0


def _chaos(
    sql: str | None,
    seed: int,
    plans: list[str],
    rate: float | None,
    no_retries: bool,
    suite: bool,
    repeat: int,
    json_path: str | None,
) -> int:
    """Run a workload under seeded fault injection; report job outcomes."""
    import json

    from repro.errors import ReproError
    from repro.faults import FaultPlan

    if suite:
        from repro.bench.harness import build_tpch_platform

        platform, admin, engine, queries = build_tpch_platform(scale=0.1)
        workload = list(queries.items())
    else:
        platform, admin = _build_demo_platform()
        engine = platform.home_engine
        sql = sql or (
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
            "FROM demo.orders WHERE id < 150 GROUP BY region ORDER BY total DESC"
        )
        workload = [(f"q{i + 1:02d}", sql) for i in range(repeat)]

    ctx = platform.ctx
    try:
        if plans:
            plan = FaultPlan.parse(plans, seed=seed)
        else:
            plan = FaultPlan.uniform(rate if rate is not None else 0.05, seed=seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    ctx.faults.install(plan)
    if no_retries:
        ctx.retry.enabled = False

    succeeded = failed = 0
    for name, text in workload:
        try:
            engine.execute(text, admin)
            succeeded += 1
        except ReproError as exc:
            failed += 1
            print(f"{name}: FAILED ({type(exc).__name__})")
    faults_fired = len(ctx.faults.events)
    retries = ctx.metering.op_counts.get("repro.retry", 0)
    degraded = ctx.metering.op_counts.get("repro.degraded", 0)

    # Chaos off for the report query itself: the dogfood read of
    # INFORMATION_SCHEMA.JOBS must not be able to fail.
    ctx.faults.clear()
    result = engine.execute(
        "SELECT job_id, state, retry_count, degraded, error, total_ms "
        "FROM INFORMATION_SCHEMA.JOBS ORDER BY job_id",
        admin,
    )
    jobs = [
        {
            "job_id": job_id,
            "state": state,
            "retry_count": retry_count,
            "degraded": bool(is_degraded),
            "error": error,
            "total_ms": round(total_ms, 3),
        }
        # Jobs are recorded at submit time, so the report query sees
        # itself mid-flight as RUNNING — drop it to cover the workload
        # exactly (every workload job is terminal by now).
        for job_id, state, retry_count, is_degraded, error, total_ms in result.rows()
        if state != "RUNNING"
    ]
    print("\njob_id      state      retries  degraded  total_ms  error")
    for row in jobs:
        text = row["error"] if len(row["error"]) <= 40 else row["error"][:37] + "..."
        print(
            f"{row['job_id']}  {row['state']:<9} {row['retry_count']:>8} "
            f"{str(row['degraded']):<8} {row['total_ms']:>9.2f}  {text}"
        )
    print(
        f"\nseed={seed} queries={len(workload)} succeeded={succeeded} "
        f"failed={failed} faults_injected={faults_fired} retries={retries} "
        f"degraded={degraded} retries_enabled={not no_retries}"
    )
    if json_path:
        report = {
            "seed": seed,
            "plan": plans or [f"uniform:rate={rate if rate is not None else 0.05}"],
            "retries_enabled": not no_retries,
            "jobs": jobs,
            "totals": {
                "queries": len(workload),
                "succeeded": succeeded,
                "failed": failed,
                "faults_injected": faults_fired,
                "retries": retries,
                "degraded": degraded,
                "sim_elapsed_ms": round(ctx.clock.now_ms, 3),
            },
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"chaos report written to {json_path}")
    return 0


def _cache_stats() -> int:
    """Cold run, warm run, then the CACHE_STATS table — a self-checking
    walkthrough of the data cache (byte-identical results, warm hits > 0).
    Deterministic output: ``scripts/check.sh`` diffs two invocations."""
    platform, admin = _build_demo_platform()
    engine = platform.home_engine
    sql = (
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.orders WHERE id < 250 GROUP BY region ORDER BY region"
    )
    print(f"-- {sql}\n")
    cold = engine.execute(sql, admin)
    warm = engine.execute(sql, admin)
    if warm.rows() != cold.rows():
        print("error: warm run returned different rows than cold run", file=sys.stderr)
        return 1
    if warm.stats.cache_hit_bytes <= 0:
        print("error: warm run served no bytes from the data cache", file=sys.stderr)
        return 1
    for label, result in (("cold", cold), ("warm", warm)):
        stats = result.stats
        print(
            f"{label}: elapsed {stats.elapsed_ms:.2f} ms, "
            f"scanned {stats.bytes_scanned:,} B, "
            f"cache {stats.cache_hit_bytes:,} B "
            f"(hit ratio {stats.cache_hit_ratio:.3f})"
        )

    print("\ntier        entries  resident_b  capacity_b   hits  misses  hit_ratio")
    rows = engine.execute(
        "SELECT tier, entries, resident_bytes, capacity_bytes, hits, misses, "
        "hit_ratio FROM INFORMATION_SCHEMA.CACHE_STATS ORDER BY tier",
        admin,
    ).rows()
    for tier, entries, resident, capacity, hits, misses, ratio in rows:
        print(
            f"{tier:<11} {entries:>7} {resident:>11,} {capacity:>11,} "
            f"{hits:>6} {misses:>7} {ratio:>10.3f}"
        )
    return 0


def _querycache() -> int:
    """Plan + result cache walkthrough: cold/warm identity, zero-scan warm
    hits, and snapshot-keyed DML coherence. Deterministic output:
    ``scripts/check.sh`` diffs two invocations."""
    import zlib

    from repro import DataType, Schema

    platform, admin = _build_demo_platform()
    engine = platform.home_engine
    metering = platform.ctx.metering

    def gets(delta) -> int:
        return delta.op_counts.get("object_store.get", 0) + delta.op_counts.get(
            "object_store.get_range", 0
        )

    def crc(result) -> int:
        return zlib.crc32(repr(result.rows()).encode("utf-8"))

    sql = (
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.orders GROUP BY region ORDER BY region"
    )
    print(f"-- {sql}\n")
    before = metering.snapshot()
    cold = engine.execute(sql, admin, use_query_cache=True)
    cold_gets = gets(metering.delta_since(before))
    before = metering.snapshot()
    warm = engine.execute(sql, admin, use_query_cache=True)
    warm_gets = gets(metering.delta_since(before))
    for label, result, n_gets in (("cold", cold, cold_gets), ("warm", warm, warm_gets)):
        print(
            f"{label}: cache_hit={result.stats.cache_hit} "
            f"crc={crc(result):08x} scanned={result.stats.bytes_scanned:,} B "
            f"gets={n_gets} elapsed={result.stats.elapsed_ms:.2f} ms"
        )
    failures = 0
    if warm.rows() != cold.rows():
        print("error: warm run returned different rows than cold run", file=sys.stderr)
        failures += 1
    if not warm.stats.cache_hit or cold.stats.cache_hit:
        print("error: expected cold miss then warm hit", file=sys.stderr)
        failures += 1
    if warm.stats.bytes_scanned != 0:
        print("error: warm hit still scanned bytes", file=sys.stderr)
        failures += 1
    if not warm_gets < cold_gets:
        print(
            f"error: warm run did not issue strictly fewer GETs "
            f"({warm_gets} vs {cold_gets})",
            file=sys.stderr,
        )
        failures += 1

    # DML coherence leg: a managed (writable) table. The INSERT bumps the
    # table version, so the cached entry stops being addressed — the next
    # run is a miss with fresh rows, and nothing is flushed.
    platform.catalog.create_dataset("sales")
    platform.tables.create_managed_table(
        "sales", "totals",
        Schema.of(("id", DataType.INT64), ("amount", DataType.FLOAT64)),
    )
    engine.execute("INSERT INTO sales.totals VALUES (1, 10.0)", admin)
    dml_sql = "SELECT COUNT(*) AS n, SUM(amount) AS total FROM sales.totals"
    print(f"\n-- {dml_sql}\n")
    first = engine.execute(dml_sql, admin, use_query_cache=True)
    engine.execute("INSERT INTO sales.totals VALUES (2, 5.0)", admin)
    entries_before = platform.query_cache.snapshot()["result"]["entries"]
    second = engine.execute(dml_sql, admin, use_query_cache=True)
    print(
        f"before INSERT: cache_hit={first.stats.cache_hit} rows={first.rows()}"
    )
    print(
        f"after INSERT:  cache_hit={second.stats.cache_hit} rows={second.rows()} "
        f"(entries resident before re-run: {entries_before})"
    )
    if second.stats.cache_hit or second.rows() == first.rows():
        print(
            "error: DML did not invalidate the cached result (stale served)",
            file=sys.stderr,
        )
        failures += 1
    if entries_before < 1:
        print(
            "error: DML flushed the result tier (coherence must be by "
            "keying, not flushing)",
            file=sys.stderr,
        )
        failures += 1

    print("\ntier    entries  hits  misses  evictions  hit_ratio")
    rows = engine.execute(
        "SELECT tier, entries, hits, misses, evictions, hit_ratio "
        "FROM INFORMATION_SCHEMA.CACHE_STATS WHERE tier = 'plan' "
        "OR tier = 'result' ORDER BY tier",
        admin,
    ).rows()
    for tier, entries, hits, misses, evictions, ratio in rows:
        print(
            f"{tier:<7} {entries:>7} {hits:>5} {misses:>7} {evictions:>10} "
            f"{ratio:>10.3f}"
        )
    if failures:
        return 1
    print("\nquery-cache coherence: OK")
    return 0


# The default `serve --chaos` profile: transient object-store faults hot
# enough to leave FAILED jobs in history, plus stragglers for speculation.
SERVE_CHAOS_PLAN = [
    "objectstore.get:rate=0.25:max=40",
    "task.slow:rate=0.15:factor=4",
]


def _serve(
    seed: int,
    smoke: bool,
    chaos: bool,
    plans: list[str],
    json_path: str | None,
) -> int:
    """Concurrent multi-query serving walkthrough: shared slot pool +
    async jobs API over a seeded multi-principal TPC-H/TPC-DS-lite mix.
    Self-checking (SQL ground truth must tie out) and deterministic."""
    import json

    from repro.serving.workload import run_serve

    specs = plans or (SERVE_CHAOS_PLAN if chaos else [])
    kwargs = (
        dict(jobs=6, scale=0.05, analysts=2, mean_gap_ms=30.0)
        if smoke
        else dict(jobs=20, scale=0.1, analysts=4, mean_gap_ms=40.0)
    )
    try:
        report = run_serve(seed=seed, chaos=specs or None, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    mode = "smoke" if smoke else "full"
    print(
        f"-- serve: {kwargs['jobs']} jobs, {kwargs['analysts']} principals, "
        f"4 concurrent, seed={seed} ({mode}"
        + (f", chaos={','.join(specs)})" if specs else ")")
        + "\n"
    )
    print("job_id      principal   state      arrive_ms  wait_ms  end_ms    query")
    for row in report["jobs"]:
        print(
            f"{row['job_id']}  {row['principal'].removeprefix('user:'):<11} "
            f"{row['state']:<9} {row['creation_ms']:>10.2f} {row['queue_wait_ms']:>8.2f} "
            f"{row['end_ms']:>9.2f}  {row['query']}"
        )
    print("\nprincipal    jobs  p50_wait_ms  p99_wait_ms")
    for principal, stats in report["per_principal"].items():
        print(
            f"{principal.removeprefix('user:'):<11} {stats['jobs']:>5} "
            f"{stats['p50_queue_wait_ms']:>12.2f} {stats['p99_queue_wait_ms']:>12.2f}"
        )
    states = " ".join(f"{k}={v}" for k, v in sorted(report["states"].items()))
    print(
        f"\nmakespan {report['makespan_ms']:.2f} ms  {states}  "
        f"timeline_task_rows={report['timeline_task_rows']}"
    )
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"serve report written to {json_path}")
    if not report["tie_out_ok"]:
        for line in report["tie_out_errors"]:
            print(f"error: tie-out failed: {line}", file=sys.stderr)
        return 1
    print("INFORMATION_SCHEMA.JOBS tie-out: OK")
    return 0


# The default `monitor --chaos` profile: the serve plan plus data-cache
# faults, so the cache-bypass burn-rate rule has bad events to burn.
MONITOR_CHAOS_PLAN = SERVE_CHAOS_PLAN + ["cache.get:rate=0.35:max=30"]

#: ASCII intensity ramp for the CLI timeline renders (0.0 → 1.0+).
_RAMP = " .:-=+*#%@"


def _ramp_line(points: list[list[float]], peak: float) -> str:
    """Render ``[[t, v], ...]`` as one intensity character per sample."""
    if peak <= 0:
        return ""
    out = []
    for _, value in points:
        level = min(len(_RAMP) - 1, int(value / peak * (len(_RAMP) - 1) + 0.5))
        out.append(_RAMP[level])
    return "".join(out)


def _monitor(
    seed: int,
    smoke: bool,
    chaos: bool,
    plans: list[str],
    json_path: str | None,
    chrome_trace_path: str | None,
) -> int:
    """Fleet-telemetry walkthrough: the serve workload under scraping +
    reservation timelines + SLO alerting. Self-checking (reservation
    timeline must tie out against JOBS/JOBS_TIMELINE; a chaos run must
    fire a burn-rate alert) and deterministic."""
    import json

    from repro.obs.export import serve_chrome_trace_json
    from repro.serving.workload import run_monitor

    specs = plans or (MONITOR_CHAOS_PLAN if chaos else [])
    kwargs = (
        dict(jobs=6, scale=0.05, analysts=2, mean_gap_ms=30.0)
        if smoke
        else dict(jobs=20, scale=0.1, analysts=4, mean_gap_ms=40.0)
    )
    keep: dict = {}
    try:
        report = run_monitor(seed=seed, chaos=specs or None, keep=keep, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    mon = report["monitor"]

    mode = "smoke" if smoke else "full"
    print(
        f"-- monitor: {kwargs['jobs']} jobs, {kwargs['analysts']} principals, "
        f"seed={seed} ({mode}"
        + (f", chaos={','.join(specs)})" if specs else ")")
        + "\n"
    )
    print(
        f"telemetry: {mon['batches_observed']} batches observed, "
        f"{mon['scrapes']} scrapes, {mon['reservation_rows']} reservation rows, "
        f"{mon['tsdb_series']} series / {mon['tsdb_samples']} samples, "
        f"{mon['metrics_history_rows']} METRICS_HISTORY rows"
    )

    util = mon["utilization"]
    if util:
        span = f"{util[0][0]:.0f}..{util[-1][0]:.0f} ms"
        util_peak = max(v for _, v in util)
        print(f"\nslot utilization  [{span}]  peak={util_peak:.3f}")
        print(f"  {_ramp_line(util, util_peak)}")
    depth_peak = max(
        (v for pts in mon["queue_depth"].values() for _, v in pts), default=0.0
    )
    if depth_peak > 0:
        print(f"queue depth per principal  peak={depth_peak:.2f}")
        for principal, points in mon["queue_depth"].items():
            label = principal.removeprefix("user:")
            print(f"  {label:<8} {_ramp_line(points, depth_peak)}")

    print("\nat_ms      rule                 sev      state     value    detail")
    if not mon["alerts"]:
        print("  (no alert transitions)")
    for event in mon["alerts"]:
        print(
            f"{event['at_ms']:>9.1f}  {event['rule']:<20} {event['severity']:<8} "
            f"{event['state']:<9} {event['value']:>7.3f}  {event['detail']}"
        )

    print("\nprincipal    queue_ms  backoff_ms  cold_read_ms  degraded_ms  execute_ms")
    for principal, var in mon["variance_ms"].items():
        print(
            f"{principal.removeprefix('user:'):<11} {var['queue_ms']:>9.2f} "
            f"{var['backoff_ms']:>11.2f} {var['cold_read_ms']:>13.2f} "
            f"{var['degraded_ms']:>12.2f} {var['execute_ms']:>11.2f}"
        )

    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nmonitor report written to {json_path}")
    if chrome_trace_path:
        with open(chrome_trace_path, "w", encoding="utf-8") as fh:
            fh.write(serve_chrome_trace_json(keep["platform"].jobs()))
        print(f"serve Chrome trace written to {chrome_trace_path}")

    failures = 0
    if not report["tie_out_ok"]:
        for line in report["tie_out_errors"]:
            print(f"error: tie-out failed: {line}", file=sys.stderr)
        failures += 1
    if mon["batches_observed"] <= 0 or mon["scrapes"] <= 0:
        print("error: monitor observed no batches or scrapes", file=sys.stderr)
        failures += 1
    if specs and not mon["burn_alerts_fired"]:
        print(
            "error: chaos run fired no burn-rate alert (expected the error "
            "budget to burn deterministically)",
            file=sys.stderr,
        )
        failures += 1
    if failures:
        return 1
    burned = (
        f"  burn_alerts={','.join(mon['burn_alerts_fired'])}"
        if mon["burn_alerts_fired"]
        else ""
    )
    print(f"\nRESERVATION_TIMELINE tie-out: OK{burned}")
    return 0


def _build_skewed_platform(sizes: list[int] | None = None):
    """(platform, admin) with ``demo.events``: one fat file among small ones.

    The deliberate size skew (part-0 holds ~half the rows) gives the
    scheduler a naturally imbalanced stage even before any ``task.slow``
    straggler plan is installed. ``sizes`` overrides the per-file row
    counts (used by the ``readsession`` walkthrough).
    """
    from repro import (
        DataType, LakehousePlatform, MetadataCacheMode, Role, Schema,
        batch_from_pydict,
    )
    from repro.storageapi.fileutil import write_data_file

    platform = LakehousePlatform()
    admin = platform.admin_user()
    store = platform.stores.store_for("gcp/us-central1")
    store.create_bucket("skew-lake")
    schema = Schema.of(
        ("id", DataType.INT64), ("region", DataType.STRING), ("amount", DataType.FLOAT64)
    )
    sizes = sizes or [700, 80, 80, 80, 80, 80, 80, 80]
    start = 0
    for part, rows in enumerate(sizes):
        write_data_file(
            store, "skew-lake", f"events/part-{part}.pqs", schema,
            [batch_from_pydict(schema, {
                "id": list(range(start, start + rows)),
                "region": [("us", "eu", "apac")[i % 3] for i in range(rows)],
                "amount": [float(i % 97) for i in range(rows)],
            })],
        )
        start += rows
    conn = platform.connections.create_connection("us.skew")
    platform.connections.grant_lake_access(conn, "skew-lake")
    platform.iam.grant("connections/us.skew", Role.CONNECTION_USER, admin)
    platform.catalog.create_dataset("demo")
    platform.tables.create_biglake_table(
        admin, "demo", "events", schema, "skew-lake", "events", "us.skew",
        cache_mode=MetadataCacheMode.AUTOMATIC,
    )
    return platform, admin


def _schedule(sql: str | None, seed: int, plans: list[str], json_path: str | None) -> int:
    """Skew/straggler walkthrough: the same seeded query with and without
    speculative execution. Self-checking (identical rows, speculation never
    slower) and deterministic: ``scripts/check.sh`` diffs two invocations."""
    import json

    from repro.engine.scheduler import SpeculationConfig
    from repro.errors import ReproError
    from repro.faults import FaultPlan

    sql = sql or (
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
        "FROM demo.events GROUP BY region ORDER BY region"
    )
    specs = plans or ["task.slow:rate=0.3:factor=8"]

    def run(speculation: bool):
        platform, admin = _build_skewed_platform()
        engine = platform.home_engine
        if not speculation:
            engine.speculation = SpeculationConfig(enabled=False)
        platform.ctx.faults.install(FaultPlan.parse(specs, seed=seed))
        return engine.execute(sql, admin)

    print(f"-- {sql}\n-- plan={','.join(specs)} seed={seed}\n")
    try:
        on = run(speculation=True)
        off = run(speculation=False)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if on.rows() != off.rows():
        print(
            "error: speculation changed the query's rows (must be result-"
            "invariant)",
            file=sys.stderr,
        )
        return 1
    if on.stats.elapsed_ms > off.stats.elapsed_ms + 1e-6:
        print(
            "error: speculation made the query slower "
            f"({on.stats.elapsed_ms:.3f} ms > {off.stats.elapsed_ms:.3f} ms)",
            file=sys.stderr,
        )
        return 1

    print("stage   task  slot  start_ms   end_ms  slow  flags")
    for t in on.stats.task_timeline:
        flags = "".join(
            ch
            for ch, cond in (
                ("S", t.speculative), ("W", t.winner), ("X", t.cancelled)
            )
            if cond
        )
        print(
            f"{t.stage:<7} {t.task:>4} {t.slot:>5} {t.start_ms:>9.3f} "
            f"{t.end_ms:>8.3f} {t.slow_factor:>5g}  {flags or '-'}"
        )
    print(
        f"\nspeculation on:  elapsed {on.stats.elapsed_ms:.3f} ms, "
        f"task_skew {on.stats.task_skew:.3f}, "
        f"launched {on.stats.speculative_count}, wins {on.stats.speculative_wins}"
    )
    print(
        f"speculation off: elapsed {off.stats.elapsed_ms:.3f} ms, "
        f"task_skew {off.stats.task_skew:.3f}"
    )
    recovered = off.stats.elapsed_ms - on.stats.elapsed_ms
    print(f"speculation recovered {recovered:.3f} ms of makespan")

    if json_path:
        report = {
            "seed": seed,
            "plan": specs,
            "sql": sql,
            "rows_identical": True,
            "speculation_on": {
                "elapsed_ms": round(on.stats.elapsed_ms, 6),
                "task_skew": round(on.stats.task_skew, 6),
                "speculative_launched": on.stats.speculative_count,
                "speculative_wins": on.stats.speculative_wins,
                "timeline": [t.to_dict() for t in on.stats.task_timeline],
            },
            "speculation_off": {
                "elapsed_ms": round(off.stats.elapsed_ms, 6),
                "task_skew": round(off.stats.task_skew, 6),
                "timeline": [t.to_dict() for t in off.stats.task_timeline],
            },
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"schedule report written to {json_path}")
    return 0


# The default `txn --chaos` profile is built by repro.txn.workload.chaos_plan:
# writer crashes at every publish step plus storage/metadata transients.
TXN_CHAOS_RATE = 0.08

# The `txn --recover` profile: crash-heavy, so the run leans on the
# recovery sweep (both roll directions) instead of the happy path.
TXN_RECOVER_RATE = 0.25


def _txn(
    seed: int,
    smoke: bool,
    recover: bool,
    chaos: bool,
    plans: list[str],
    rate: float | None,
    json_path: str | None,
) -> int:
    """Multi-table ACID transaction walkthrough: concurrent order/lineitem
    writers under seeded faults, checked by the torn-state oracle at every
    view a reader can obtain. Self-checking (zero violations, zero dangling
    intents, every transaction eventually commits) and deterministic: same
    seed ⇒ byte-identical ``--json`` report."""
    import json

    from repro.txn.workload import run_txn_workload

    if rate is None:
        rate = TXN_RECOVER_RATE if recover else (TXN_CHAOS_RATE if chaos else 0.0)
    kwargs = (
        dict(writers=2, txns_per_writer=2, orders=3)
        if smoke
        else dict(writers=4, txns_per_writer=3, orders=4)
    )
    try:
        report = run_txn_workload(seed=seed, rate=rate, plans=plans or None, **kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    mode = "smoke" if smoke else ("recover" if recover else "full")
    print(
        f"-- txn: {kwargs['writers']} writers x {kwargs['txns_per_writer']} txns, "
        f"{kwargs['orders']} orders, seed={seed} rate={rate:g} ({mode})\n"
    )
    print("txn_id      writer        order  amount  commit_ms")
    for entry in report["commit_timeline"]:
        print(
            f"{entry['txn_id']}  {entry['writer'].removeprefix('user:'):<12} "
            f"{entry['order_id']:>5} {entry['amount']:>7.2f} {entry['commit_ms']:>10.2f}"
        )
    rec = report["recovery"]
    print(
        f"\ncommits={report['commits']} conflicts={report['conflicts']} "
        f"crashes={report['crashes']} aborts={report['aborts']} "
        f"transients={report['transient_failures']}"
    )
    print(
        f"recovery: sweeps={rec['sweeps']} rolled_forward={rec['rolled_forward']} "
        f"rolled_back={rec['rolled_back']} dangling_intents={report['dangling_intents']}"
    )
    print(
        f"oracle: {report['midflight_checks']} mid-flight + 1 final + "
        f"{report['snapshot_checks']} as-of checks, "
        f"{len(report['violations'])} violations"
    )
    print("order totals: " + " ".join(
        f"{oid}={total:g}" for oid, total in sorted(
            report["final_totals"].items(), key=lambda kv: int(kv[0])
        )
    ))
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"txn report written to {json_path}")

    failures = 0
    for violation in report["violations"]:
        print(f"error: invariant violated: {violation}", file=sys.stderr)
        failures += 1
    if report["dangling_intents"]:
        print(
            f"error: {report['dangling_intents']} dangling intent(s) survived "
            "the final recovery sweep",
            file=sys.stderr,
        )
        failures += 1
    expected = kwargs["writers"] * kwargs["txns_per_writer"]
    if report["commits"] != expected or report["gave_up"]:
        print(
            f"error: {report['commits']}/{expected} transactions committed "
            f"({report['gave_up']} gave up)",
            file=sys.stderr,
        )
        failures += 1
    if recover and rec["rolled_forward"] + rec["rolled_back"] == 0:
        print(
            "error: --recover run exercised no recovery (no crash landed "
            "mid-publish; raise the rate or change the seed)",
            file=sys.stderr,
        )
        failures += 1
    if failures:
        return 1
    print("torn-state oracle: OK")
    return 0


# The default `readsession --chaos` profile: transient faults on the
# governed read path, all recoverable, so the drain still ties out.
READSESSION_CHAOS_PLAN = [
    "objectstore.get:rate=0.2:max=20",
    "read_api.read_rows:rate=0.1:max=8",
]


def _readsession(
    seed: int,
    smoke: bool,
    chaos: bool,
    plans: list[str],
    json_path: str | None,
) -> int:
    """Serializable session handoff + rebalancing walkthrough: create one
    multi-stream session over a skewed lake, serialize it, and drain it
    with one attached consumer per stream — healthy, with an injected
    consumer lag, and with the lag plus the rebalancer. Self-checking
    (row CRCs identical across all three legs, rebalancing must recover
    some of the lag inflation) and deterministic: same seed ⇒
    byte-identical ``--json`` report."""
    import json

    from repro.faults import FaultPlan
    from repro.storageapi.streams import drain_session

    sizes = [300] + [60] * 7 if smoke else [600] + [90] * 11
    n_streams = 4
    lag_factor = 4.0
    specs = plans or (READSESSION_CHAOS_PLAN if chaos else [])

    def leg(lag_stream: int | None = None, rebalance: bool = False):
        platform, admin = _build_skewed_platform(sizes)
        info = platform.catalog.get_table("demo", "events")
        session = platform.read_api.create_read_session(
            admin, info, max_streams=n_streams
        )
        blob = session.serialize()
        # Chaos targets the consumers: the session is established, then
        # the drain's governed reads run under the fault plan (transient,
        # so every leg still ties out after retries).
        try:
            if specs:
                platform.ctx.faults.install(FaultPlan.parse(specs, seed=seed))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(1) from None
        lag = {lag_stream: lag_factor} if lag_stream is not None else None
        report = drain_session(platform.read_api, blob, lag=lag, rebalance=rebalance)
        return blob, session, report

    blob, session, healthy = leg()
    # Lag the consumer with the most files: it has pending work an idle
    # neighbor can actually steal (deterministic: ties to the lowest id).
    lag_stream = max(
        range(len(session.streams)),
        key=lambda i: (len(session.streams[i].files), -i),
    )
    _, _, off = leg(lag_stream, rebalance=False)
    _, _, on = leg(lag_stream, rebalance=True)

    mode = "smoke" if smoke else "full"
    print(
        f"-- readsession: {len(sizes)} files over {n_streams} streams, "
        f"seed={seed} ({mode}"
        + (f", chaos={','.join(specs)})" if specs else ")")
        + "\n"
    )
    print(f"serialized handle ({len(blob)} bytes): {blob[:64].decode()}...")
    print(f"lagged consumer: worker-{lag_stream} (x{lag_factor:g} slower)\n")
    for label, report in (
        ("healthy", healthy), ("lag, rebalancer off", off), ("lag, rebalancer on", on)
    ):
        print(f"{label}: makespan {report.makespan_ms:.3f} ms, "
              f"rows={report.rows} crc={report.crc:08x} "
              f"rebalances={report.rebalances}")
        print("  consumer   stream  speed  files   rows    bytes  finished_ms")
        for c in report.consumers:
            print(
                f"  {c.consumer:<9} {c.stream_id:>6} {c.speed:>6g} {c.files:>6} "
                f"{c.rows:>6} {c.bytes:>8,} {c.finished_ms:>12.3f}"
            )
    if on.moves:
        print("\nrebalance moves (pending files only):")
        for m in on.moves:
            print(
                f"  {m.file_path} ({m.size_bytes:,} B): "
                f"stream {m.from_stream} -> {m.to_stream}"
            )

    inflation = off.makespan_ms - healthy.makespan_ms
    recovered = (off.makespan_ms - on.makespan_ms) / inflation if inflation > 0 else 0.0
    crc_identical = healthy.crc == off.crc == on.crc
    rows_identical = healthy.rows == off.rows == on.rows
    print(
        f"\nlag inflated the makespan by {inflation:.3f} ms; rebalancing "
        f"recovered {recovered:.1%} of it"
    )

    if json_path:
        payload = {
            "seed": seed,
            "plan": specs,
            "files": len(sizes),
            "streams": n_streams,
            "lag_stream": lag_stream,
            "lag_factor": lag_factor,
            "crc_identical": crc_identical,
            "rows_identical": rows_identical,
            "recovered_fraction": round(recovered, 6),
            "legs": {
                "healthy": healthy.to_dict(),
                "rebalancer_off": off.to_dict(),
                "rebalancer_on": on.to_dict(),
            },
        }
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"readsession report written to {json_path}")

    failures = 0
    if not crc_identical or not rows_identical:
        print(
            "error: rebalancing or lag changed the returned rows (must be "
            "result-invariant)",
            file=sys.stderr,
        )
        failures += 1
    if inflation <= 0:
        print("error: injected lag did not inflate the makespan", file=sys.stderr)
        failures += 1
    if recovered <= 0:
        print("error: rebalancing recovered none of the lag inflation", file=sys.stderr)
        failures += 1
    if failures:
        return 1
    print("handoff round-trip + rebalance invariance: OK")
    return 0


def _experiments(extra: list[str]) -> int:
    command = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-p", "no:warnings", "-s", "-q", *extra,
    ]
    return subprocess.call(command)


def _info() -> int:
    import repro

    print(f"repro {repro.__version__} — BigLake reproduction (SIGMOD 2024)")
    print(__doc__)
    print("Subsystems: data, formats, objectstore, cloud, security, metastore,")
    print("  tableformats, sql, engine, storageapi, core, objects, ml, omni,")
    print("  external, workloads, bench")
    print("Experiments: see DESIGN.md (index) and EXPERIMENTS.md (results).")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command",
        choices=[
            "demo", "trace", "jobs", "chaos", "cache-stats", "querycache",
            "schedule", "serve", "monitor", "txn", "readsession",
            "experiments", "info",
        ],
        nargs="?", default="demo",
    )
    parser.add_argument(
        "extra", nargs="*",
        help="SQL for 'trace'/'chaos'; extra pytest args for 'experiments'",
    )
    parser.add_argument(
        "--timeline", metavar="JOB_ID",
        help="for 'jobs': print the per-span timeline of one job",
    )
    parser.add_argument(
        "--chrome-trace", metavar="OUT.json", dest="chrome_trace",
        help="for 'jobs': write the job's trace in Chrome trace-event "
        "format; for 'monitor': export the whole serve run with "
        "per-principal lanes",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="for 'chaos'/'schedule'/'serve': RNG seed (same seed => "
        "same faults and arrivals)",
    )
    parser.add_argument(
        "--plan", action="append", default=[], metavar="SPEC",
        help="for 'chaos'/'schedule'/'serve': fault spec 'op:key=val:...' e.g. "
        "'objectstore.get:rate=0.1' or 'task.slow:rate=0.3:factor=8' "
        "(repeatable)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="for 'chaos': uniform transient-fault rate when no --plan "
        "is given (default 0.05)",
    )
    parser.add_argument(
        "--no-retries", action="store_true", dest="no_retries",
        help="for 'chaos': disable the retry policy (chaos without recovery)",
    )
    parser.add_argument(
        "--suite", action="store_true",
        help="for 'chaos': run the TPC-H-lite suite instead of one statement",
    )
    parser.add_argument(
        "--repeat", type=int, default=8,
        help="for 'chaos': times to run the statement (non-suite mode)",
    )
    parser.add_argument(
        "--json", metavar="OUT.json", dest="json_path",
        help="for 'chaos'/'schedule'/'serve': write the machine-readable "
        "report",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="for 'serve'/'monitor'/'txn'/'readsession': small fast "
        "variant for CI",
    )
    parser.add_argument(
        "--chaos", action="store_true", dest="serve_chaos",
        help="for 'serve'/'monitor'/'txn'/'readsession': replay the "
        "workload under the default seeded fault plan (or give explicit "
        "--plan specs)",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="for 'txn': crash-heavy profile that must exercise the "
        "recovery sweep (exit non-zero if it never runs)",
    )
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _demo()
    if args.command == "trace":
        return _trace(" ".join(args.extra) if args.extra else None)
    if args.command == "jobs":
        return _jobs(args.timeline, args.chrome_trace)
    if args.command == "chaos":
        return _chaos(
            " ".join(args.extra) if args.extra else None,
            args.seed, args.plan, args.rate, args.no_retries,
            args.suite, args.repeat, args.json_path,
        )
    if args.command == "cache-stats":
        return _cache_stats()
    if args.command == "querycache":
        return _querycache()
    if args.command == "serve":
        return _serve(
            args.seed, args.smoke, args.serve_chaos, args.plan, args.json_path
        )
    if args.command == "monitor":
        return _monitor(
            args.seed, args.smoke, args.serve_chaos, args.plan,
            args.json_path, args.chrome_trace,
        )
    if args.command == "txn":
        return _txn(
            args.seed, args.smoke, args.recover, args.serve_chaos,
            args.plan, args.rate, args.json_path,
        )
    if args.command == "readsession":
        return _readsession(
            args.seed, args.smoke, args.serve_chaos, args.plan, args.json_path
        )
    if args.command == "schedule":
        return _schedule(
            " ".join(args.extra) if args.extra else None,
            args.seed, args.plan, args.json_path,
        )
    if args.command == "experiments":
        return _experiments(args.extra)
    return _info()


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        raise SystemExit(0)
