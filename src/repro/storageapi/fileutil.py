"""Helpers shared by writers: building pqs files + their metadata entries."""

from __future__ import annotations

from typing import Any

from repro.data.batch import RecordBatch
from repro.data.types import Schema
from repro.formats import pqs
from repro.metastore.bigmeta import ColumnStats, FileEntry
from repro.objectstore import ObjectStore


def entry_from_footer(
    file_path: str,
    size_bytes: int,
    footer: pqs.FileFooter,
    partition_values: dict[str, Any] | None = None,
    generation: int = 0,
) -> FileEntry:
    """Build the Big Metadata entry for a pqs file from its footer —
    exactly the statistics §3.3 says the cache collects."""
    stats = []
    for field in footer.schema:
        lo, hi, nulls = footer.column_stats(field.name)
        stats.append((field.name, ColumnStats(min_value=lo, max_value=hi, null_count=nulls)))
    return FileEntry(
        file_path=file_path,
        size_bytes=size_bytes,
        row_count=footer.num_rows,
        partition_values=tuple(sorted((partition_values or {}).items())),
        column_stats=tuple(stats),
        generation=generation,
    )


def write_data_file(
    store: ObjectStore,
    bucket: str,
    key: str,
    schema: Schema,
    batches: list[RecordBatch],
    partition_values: dict[str, Any] | None = None,
    row_group_rows: int = 65536,
    caller_location: str | None = None,
) -> FileEntry:
    """Serialize batches to a pqs object and return its metadata entry."""
    data = pqs.write_table(schema, batches, row_group_rows=row_group_rows)
    meta = store.put_object(
        bucket, key, data, content_type="application/x-pqs",
        caller_location=caller_location,
    )
    footer = pqs.read_footer(data)
    return entry_from_footer(
        f"{bucket}/{key}", len(data), footer, partition_values,
        generation=meta.generation,
    )


def read_remote_footer(
    store: ObjectStore, bucket: str, key: str, caller_location: str | None = None
) -> tuple[pqs.FileFooter, int]:
    """Fetch a pqs footer with ranged GETs (tail length probe + footer).

    This is the per-file "peek at headers or footers" overhead of the
    uncached path (§3.3): two object reads per file before any data moves.
    """
    tail = store.get_range(bucket, key, -8, 8, caller_location=caller_location)
    footer_len = int.from_bytes(tail[:4], "little")
    size = store.head_object(bucket, key).size
    start = size - 8 - footer_len
    footer_bytes = store.get_range(
        bucket, key, start, footer_len, caller_location=caller_location
    )
    # Reassemble a minimal tail so read_footer can parse it.
    data = b"PQS1" + footer_bytes + tail
    footer = pqs.read_footer(data)
    return footer, size
