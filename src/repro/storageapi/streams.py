"""Serializable session handoff + dynamic stream rebalancing (§3.4).

The real Storage Read API usage pattern (see the ``bq_storage`` paging
exemplar in SNIPPETS.md) is: ``create_read_session(requested_streams=N)``
→ serialize the session → hand the bytes to N independent workers → each
worker attaches and drains one stream concurrently. This module supplies
the three pieces our simulation needs for that story:

- the **handle codec**: :func:`serialize_session` /
  :func:`parse_handle`. The blob is a plain JSON document of ids — never
  live object references — so it survives "process" boundaries; the
  server side (:meth:`ReadApi.attach`) re-resolves stream ids against its
  session registry and enforces expiry at attach time.
- the :class:`StreamRebalancer`: when one consumer lags, its stream's
  *not-yet-started* files are handed to consumers that have gone idle.
  Moving only pending files (everything past the stream's consumption
  cursor) guarantees rebalancing can never change returned rows — the
  same invariant PR 5's speculative backups pin.
- :func:`drain_session`: a deterministic multi-consumer harness — one
  simulated worker per stream, each joining via the serialized handle —
  used by the ``readsession`` CLI, bench E17-RS, and tests. Consumer
  speed skew comes from an explicit ``lag`` map and/or the seeded
  ``consumer.lag`` slowdown hazard; the hazard is probed once per
  consumer in stream order *before* any timing diverges, so the fault
  log is identical with the rebalancer on or off (the PR 5 trick that
  keeps straggler draws speculation-invariant).
"""

from __future__ import annotations

import heapq
import json
import zlib
from dataclasses import dataclass, field

from repro.errors import StorageApiError
from repro.simtime import MIB

_HANDLE_VERSION = 1


def serialize_session(session) -> bytes:
    """Encode a session as a stable, process-independent byte handle."""
    handle = {
        "v": _HANDLE_VERSION,
        "session_id": session.session_id,
        "table": session.table.table_id,
        "principal": f"{session.principal.kind.value}:{session.principal.name}",
        "columns": list(session.columns),
        "row_restriction": session.row_restriction,
        "created_ms": session.created_ms,
        "expires_ms": session.expires_ms,
        "streams": [
            {"stream_id": s.stream_id, "units": s.unit_count}
            for s in session.streams
        ],
    }
    return json.dumps(handle, sort_keys=True).encode("utf-8")


@dataclass(frozen=True)
class SessionHandle:
    """The decoded wire handle: ids only, resolved server-side at attach."""

    session_id: str
    table_id: str
    principal: str
    created_ms: float
    expires_ms: float
    stream_ids: tuple[int, ...]


def parse_handle(blob: bytes | str) -> SessionHandle:
    """Decode a serialized session handle; raises StorageApiError on junk."""
    if isinstance(blob, str):
        blob = blob.encode("utf-8")
    try:
        raw = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise StorageApiError("not a serialized read-session handle") from None
    if not isinstance(raw, dict) or raw.get("v") != _HANDLE_VERSION:
        raise StorageApiError("unsupported read-session handle version")
    try:
        return SessionHandle(
            session_id=raw["session_id"],
            table_id=raw["table"],
            principal=raw["principal"],
            created_ms=float(raw["created_ms"]),
            expires_ms=float(raw["expires_ms"]),
            stream_ids=tuple(int(s["stream_id"]) for s in raw["streams"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageApiError(f"malformed read-session handle: {exc!r}") from None


# --------------------------------------------------------------------------
# Dynamic stream rebalancing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RebalanceMove:
    file_path: str
    size_bytes: int
    from_stream: int
    to_stream: int


class StreamRebalancer:
    """Moves pending files from the most-loaded stream to an idle one.

    ``rebalance(to_stream)`` is called when the consumer of ``to_stream``
    runs out of work. The donor is the stream with the most pending bytes;
    the trailing half (rounded up) of its pending files moves. Files at or
    below a stream's consumption cursor are started and never move, so the
    union of files read — and therefore the returned rows — is invariant
    under any rebalancing schedule.
    """

    def __init__(self, session, ctx=None, min_pending: int = 1) -> None:
        self.session = session
        self.ctx = ctx
        self.min_pending = max(1, min_pending)
        self.moves: list[RebalanceMove] = []
        self.rebalances = 0

    def rebalance(self, to_stream: int) -> list[RebalanceMove]:
        target = self.session.streams[to_stream]
        donors = [
            s for s in self.session.streams
            if s.stream_id != target.stream_id and len(s.pending_files) >= self.min_pending
        ]
        if not donors:
            return []
        # Most pending bytes first; ties to the lowest stream id so the
        # schedule is deterministic.
        donor = max(donors, key=lambda s: (s.pending_bytes, -s.stream_id))
        pending = donor.pending_files
        moved = pending[len(pending) // 2:]
        if not moved:
            return []
        del donor.files[len(donor.files) - len(moved):]
        target.files.extend(moved)
        batch = [
            RebalanceMove(e.file_path, e.size_bytes, donor.stream_id, target.stream_id)
            for e in moved
        ]
        self.moves.extend(batch)
        self.rebalances += 1
        if self.ctx is not None:
            self.ctx.metrics.counter(
                "repro_readsession_rebalances_total",
                "dynamic rebalances moving pending files between read streams",
            ).inc()
        return batch


# --------------------------------------------------------------------------
# Deterministic multi-consumer drain harness
# --------------------------------------------------------------------------


@dataclass
class ConsumerStats:
    """What one simulated worker (stream consumer) did during a drain."""

    consumer: str
    stream_id: int
    speed: float
    files: int = 0
    rows: int = 0
    bytes: int = 0
    finished_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "consumer": self.consumer,
            "stream_id": self.stream_id,
            "speed": round(self.speed, 6),
            "files": self.files,
            "rows": self.rows,
            "bytes": self.bytes,
            "finished_ms": round(self.finished_ms, 6),
        }


@dataclass
class DrainReport:
    """Outcome of a multi-consumer drain of one session."""

    makespan_ms: float
    rows: int
    bytes: int
    crc: int
    consumers: list[ConsumerStats] = field(default_factory=list)
    moves: list[RebalanceMove] = field(default_factory=list)
    rebalances: int = 0

    def to_dict(self) -> dict:
        return {
            "makespan_ms": round(self.makespan_ms, 6),
            "rows": self.rows,
            "bytes": self.bytes,
            "crc": self.crc,
            "rebalances": self.rebalances,
            "moves": [
                {
                    "file": m.file_path,
                    "bytes": m.size_bytes,
                    "from_stream": m.from_stream,
                    "to_stream": m.to_stream,
                }
                for m in self.moves
            ],
            "consumers": [c.to_dict() for c in self.consumers],
        }


def rows_crc(batches) -> int:
    """Order-insensitive CRC32 over row contents. Consumers race, so the
    interleaving (and stream assignment, under rebalancing) is schedule-
    dependent; the row *set* must not be."""
    rows: list[str] = []
    for batch in batches:
        columns = [batch.column(name).to_pylist() for name in batch.schema.names()]
        for values in zip(*columns):
            rows.append(repr(values))
    digest = 0
    for row in sorted(rows):
        digest = zlib.crc32(row.encode("utf-8"), digest)
    return digest


def drain_session(
    read_api,
    blob: bytes,
    *,
    rebalance: bool = False,
    lag: dict[int, float] | None = None,
) -> DrainReport:
    """Drain a serialized session with one simulated consumer per stream.

    Every consumer independently attaches via ``blob`` (ids over the wire,
    no shared objects), then the harness runs a discrete-event loop on a
    model clock: each consumer reads one file per turn at a cost of
    first-byte latency + per-MiB transfer/decode, scaled by its speed
    factor. ``lag`` maps stream index → slowdown factor (2.0 = half
    speed), multiplied with the seeded ``consumer.lag`` hazard, which is
    probed once per consumer in stream order before the loop starts so
    fault draws are identical whether or not the rebalancer runs. With
    ``rebalance=True`` an idle consumer steals pending files from the
    most-loaded stream instead of finishing.

    The model clock orders events; the reads are real — rows flow through
    the full governed read path (retried on transient faults), and the
    report carries an order-insensitive CRC for invariance checks.
    """
    ctx = read_api.ctx
    session = read_api.attach(blob)
    costs = ctx.costs
    n = len(session.streams)
    speeds = []
    for i in range(n):
        factor = ctx.faults.slowdown("consumer.lag", stream=i)
        factor *= (lag or {}).get(i, 1.0)
        speeds.append(factor)

    consumers = [
        ConsumerStats(consumer=f"worker-{i}", stream_id=session.streams[i].stream_id,
                      speed=speeds[i])
        for i in range(n)
    ]
    rebalancer = StreamRebalancer(session, ctx=ctx) if rebalance else None
    batches = []

    def read_one(index: int) -> float:
        """Read the next file on stream ``index``; returns its model cost."""
        stream = session.streams[index]
        entry = stream.files[stream.offset]

        def attempt():
            progress = stream.progress_snapshot()
            stats = session.stats.snapshot()
            try:
                return list(read_api.read_rows(session, index, max_units=1))
            except BaseException:
                stream.restore_progress(progress)
                session.stats.restore(stats)
                raise
        # Each worker attaches once but retries each file read like any
        # other task (transient hazards on the governed read path).
        got = ctx.with_retry("readsession.read", attempt)
        batches.extend(got)
        stats = consumers[index]
        stats.files += 1
        stats.rows += sum(b.num_rows for b in got)
        stats.bytes += entry.size_bytes
        cost = (
            costs.get_first_byte_ms
            + (entry.size_bytes / MIB) * (costs.get_per_mib_ms + costs.scan_per_mib_ms)
        )
        return cost * speeds[index]

    # Discrete-event loop: (model time, stream index) — ties break on the
    # lower stream index so the schedule is deterministic.
    ready = [(0.0, i) for i in range(n)]
    heapq.heapify(ready)
    makespan = 0.0
    while ready:
        now, index = heapq.heappop(ready)
        stream = session.streams[index]
        if stream.offset < len(stream.files):
            heapq.heappush(ready, (now + read_one(index), index))
            continue
        if rebalancer is not None and rebalancer.rebalance(index):
            heapq.heappush(ready, (now, index))  # stolen work: go again
            continue
        consumers[index].finished_ms = now
        makespan = max(makespan, now)

    report = DrainReport(
        makespan_ms=makespan,
        rows=sum(c.rows for c in consumers),
        bytes=sum(c.bytes for c in consumers),
        crc=rows_crc(batches),
        consumers=consumers,
        moves=list(rebalancer.moves) if rebalancer else [],
        rebalances=rebalancer.rebalances if rebalancer else 0,
    )
    return report
