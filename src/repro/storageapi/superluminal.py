"""Superluminal: vectorized scan-side evaluation inside the trust boundary.

The real Superluminal is a C++ library for vectorized evaluation of
GoogleSQL expressions used by the Read API to apply projections, user
filters, security filters, and data masking, transcoding results to Arrow
(§2.2.1). This reproduction does the same over numpy-backed batches, reusing
the bound-expression evaluator from :mod:`repro.sql.expressions`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.data.batch import RecordBatch
from repro.data.column import Column
from repro.data.types import DataType, Field, Schema
from repro.errors import AccessDeniedError
from repro.obs.trace import NOOP_TRACER, Tracer
from repro.security.policies import EffectiveAccess, MaskingKind
from repro.sql import ast_nodes as ast
from repro.sql.expressions import (
    Binder,
    BoundExpr,
    FunctionRegistry,
    evaluate,
    evaluate_predicate,
)
from repro.sql.parser import parse_expression


@dataclass
class ScanFilterStats:
    """Counters for one Superluminal pass."""

    rows_in: int = 0
    rows_out: int = 0
    values_masked: int = 0


class Superluminal:
    """Compiled enforcement pipeline for one (table schema, principal) pair.

    Compilation resolves the principal's effective access into bound
    expressions once; :meth:`process` then applies, per batch:

    1. the security row filter (union of applicable row policies),
    2. the caller's row restriction,
    3. data masking on masked columns,
    4. the column projection.

    Requesting a denied column fails at compile time — before any data
    moves — so a malicious engine cannot even construct the scan.
    """

    def __init__(
        self,
        table_schema: Schema,
        access: EffectiveAccess,
        columns: list[str] | None = None,
        row_restriction: str | None = None,
        functions: FunctionRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.table_schema = table_schema
        self.access = access
        self.stats = ScanFilterStats()
        self.tracer = tracer if tracer is not None else NOOP_TRACER

        if columns is None:
            projected = [
                f.name for f in table_schema if f.name not in access.denied_columns
            ]
        else:
            denied = [c for c in columns if c in access.denied_columns]
            if denied:
                raise AccessDeniedError(
                    f"column-level access denied on: {', '.join(sorted(denied))}"
                )
            projected = list(columns)
        self.columns = projected
        self.output_schema = table_schema.select(projected)

        binder = Binder(table_schema, functions)
        self._security_filter = self._compile_security_filter(binder)
        self._user_filter: BoundExpr | None = None
        if row_restriction:
            self._user_filter = binder.bind(parse_expression(row_restriction))
        self._masks = {
            name.lower(): kind
            for name, kind in access.masked_columns.items()
            if any(f.name.lower() == name.lower() for f in table_schema)
        }

    def _compile_security_filter(self, binder: Binder) -> BoundExpr | None:
        """OR together the row policies that apply to the principal."""
        if not self.access.row_policies_exist:
            return None
        if not self.access.row_filters:
            return _DENY_ALL
        combined: ast.Expr | None = None
        for filter_sql in self.access.row_filters:
            clause = parse_expression(filter_sql)
            combined = clause if combined is None else ast.BinaryOp("OR", combined, clause)
        return binder.bind(combined)

    def process(self, batch: RecordBatch) -> RecordBatch:
        """Apply the full enforcement pipeline to one batch."""
        with self.tracer.span(
            "superluminal.process", layer="storageapi", rows_in=batch.num_rows
        ) as span:
            self.stats.rows_in += batch.num_rows
            masked_before = self.stats.values_masked
            if self._security_filter is _DENY_ALL:
                span.set_tag("rows_out", 0)
                return RecordBatch.empty(self.output_schema)
            if self._security_filter is not None:
                mask = evaluate_predicate(self._security_filter, batch)
                batch = batch.filter(mask)
            if self._user_filter is not None and batch.num_rows:
                mask = evaluate_predicate(self._user_filter, batch)
                batch = batch.filter(mask)
            out = batch.select(self.columns)
            if self._masks and out.num_rows:
                out = self._apply_masks(out)
            self.stats.rows_out += out.num_rows
            span.set_tag("rows_out", out.num_rows)
            if self.stats.values_masked > masked_before:
                span.set_tag("masked", self.stats.values_masked - masked_before)
            return out

    def _apply_masks(self, batch: RecordBatch) -> RecordBatch:
        for name, kind in self._masks.items():
            if not batch.schema.has_field(name):
                continue
            field = batch.schema.field(name)
            column = batch.column(name)
            masked = mask_column(column, kind)
            self.stats.values_masked += batch.num_rows
            batch = batch.with_column(
                Field(field.name, masked.dtype, nullable=True), masked
            )
        return batch

    def evaluate_projection(self, expr_sql: str, batch: RecordBatch) -> Column:
        """Evaluate one extra scalar expression (used by pushed-down
        partial aggregates and tests)."""
        bound = Binder(batch.schema).bind(parse_expression(expr_sql))
        return evaluate(bound, batch)


class _DenyAll:
    """Sentinel: row policies exist but none admits this principal."""


_DENY_ALL = _DenyAll()


def mask_column(column: Column, kind: MaskingKind) -> Column:
    """Vectorized data masking with the semantics of
    :func:`repro.security.policies.apply_mask_value`."""
    n = len(column)
    valid = column.is_valid()
    if kind is MaskingKind.NULLIFY:
        return Column.nulls(column.dtype, n)
    if kind is MaskingKind.DEFAULT_VALUE:
        defaults = {
            DataType.STRING: "",
            DataType.BYTES: b"",
            DataType.BOOL: False,
            DataType.INT64: 0,
            DataType.FLOAT64: 0.0,
            DataType.TIMESTAMP: 0,
            DataType.DATE: 0,
        }
        return Column(
            column.dtype,
            Column.repeat(column.dtype, defaults[column.dtype], n).values,
            None if bool(valid.all()) else valid,
        )
    if kind is MaskingKind.HASH:
        out = np.empty(n, dtype=object)
        for i in range(n):
            if valid[i]:
                v = column.values[i]
                payload = v if isinstance(v, bytes) else str(v).encode("utf-8")
                out[i] = hashlib.sha256(payload).hexdigest()
        return Column(DataType.STRING, out, None if bool(valid.all()) else valid)
    if kind is MaskingKind.LAST_FOUR:
        out = np.empty(n, dtype=object)
        for i in range(n):
            if valid[i]:
                text = str(column.values[i])
                if len(text) <= 4:
                    out[i] = "X" * len(text)
                else:
                    out[i] = "X" * (len(text) - 4) + text[-4:]
        return Column(DataType.STRING, out, None if bool(valid.all()) else valid)
    raise ValueError(f"unknown masking kind {kind}")
