"""The Storage Read API (§2.2.1): sessions, parallel streams, governance.

``CreateReadSession`` resolves the table's file set (through the Big
Metadata cache when enabled, otherwise by listing the bucket and reading
file footers — the slow path §3.3 describes), applies constraint-based
partition/file pruning, compiles the caller's effective security policies,
and partitions work into streams. ``ReadRows`` then streams Arrow-like
batches with projections, user predicates, security filters, and masking
applied inside the trust boundary by Superluminal.

Object tables (§4.1) are served from the metadata cache *directly*: each
cached object becomes a row, so listing a billion objects is a metadata
lookup, not an object-store LIST.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator

from repro.data.batch import RecordBatch, batch_from_pydict
from repro.data.types import DataType, Schema
from repro.errors import (
    AccessDeniedError,
    CatalogError,
    SessionExpiredError,
    StorageApiError,
    TransientError,
)
from repro.faults import record_degradation
from repro.formats.readers import RowReader, VectorizedReader
from repro.metastore.bigmeta import BigMetadataService, ColumnStats, FileEntry
from repro.metastore.catalog import MetadataCacheMode, TableInfo, TableKind
from repro.metastore.constraints import ConstraintSet
from repro.objectstore.registry import StoreRegistry
from repro.security.audit import AuditLog
from repro.security.connections import ConnectionManager
from repro.security.iam import IamService, Permission, Principal
from repro.simtime import MIB, SimContext
from repro.sql.analysis import extract_constraints
from repro.sql.dates import parse_date_to_days
from repro.sql.expressions import FunctionRegistry
from repro.sql.parser import parse_expression
from repro.storageapi.fileutil import entry_from_footer, read_remote_footer
from repro.storageapi.managed import ManagedStorage
from repro.storageapi.superluminal import Superluminal
from repro.tableformats.hive_layout import parse_partition_from_key

_session_ids = itertools.count(1)

# Columns every Object table exposes (§4.1): object-store attributes, plus
# ``data`` — the object's content, fetched lazily and only for rows that
# survive the governance filters ("access to a row implies access to the
# content of the corresponding object").
OBJECT_TABLE_SCHEMA = Schema.of(
    ("uri", DataType.STRING),
    ("bucket", DataType.STRING),
    ("key", DataType.STRING),
    ("size", DataType.INT64),
    ("content_type", DataType.STRING),
    ("create_time", DataType.TIMESTAMP),
    ("update_time", DataType.TIMESTAMP),
    ("generation", DataType.INT64),
    ("data", DataType.BYTES),
)

_SESSION_TTL_MS = 6 * 3600 * 1000.0

# Server-side session registry bound (oldest sessions fall off first) and
# the default resolution-cache capacity (entries, LRU).
_SESSION_REGISTRY_LIMIT = 1024
_RESOLUTION_CACHE_ENTRIES = 64


@dataclass
class SessionStats:
    """Counters accumulated across a session's streams."""

    files_total: int = 0
    files_after_pruning: int = 0
    bytes_scanned: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    row_groups_pruned: int = 0
    # Source bytes served from the slot-local data cache (chunk hits).
    cache_hit_bytes: int = 0
    cpu_ms: float = 0.0  # server-side decode/filter cost (CPU efficiency)
    # ReadRows payload accounting (§3.4 future work): logical Arrow-like
    # bytes vs the dictionary/RLE wire bytes actually shipped.
    wire_bytes_plain: int = 0
    wire_bytes_encoded: int = 0
    served_from_session_cache: bool = False

    @property
    def files_pruned(self) -> int:
        return self.files_total - self.files_after_pruning

    def snapshot(self) -> "SessionStats":
        """Copy of the current counters, for retry-safe rollback."""
        return replace(self)

    def restore(self, snap: "SessionStats") -> None:
        """Rewind to a :meth:`snapshot`. Stream reads accumulate into these
        counters mid-stream, so a task-level retry that re-runs the whole
        stream must first discard the failed attempt's partial progress or
        every retried byte/row would be double-counted (the global
        ``readapi_*_total`` metrics are deliberately *not* rewound — they
        measure IO actually performed, retried work included)."""
        for f in fields(self):
            setattr(self, f.name, getattr(snap, f.name))


@dataclass
class ReadStream:
    """One unit of parallel consumption: a subset of the session's files."""

    stream_id: int
    files: list[FileEntry] = field(default_factory=list)
    # For managed tables, streams carry batches instead of files.
    batches: list[RecordBatch] = field(default_factory=list)
    # Consumption cursor: index of the next not-yet-started unit (file, or
    # batch for managed tables). Units below the cursor are started or
    # consumed and must never be moved by the rebalancer.
    offset: int = 0
    rows_returned: int = 0

    @property
    def unit_count(self) -> int:
        return len(self.batches) if self.batches else len(self.files)

    @property
    def exhausted(self) -> bool:
        return self.offset >= self.unit_count

    @property
    def pending_files(self) -> list[FileEntry]:
        """Files not yet started — the only ones a rebalancer may move."""
        return self.files[self.offset:]

    @property
    def pending_bytes(self) -> int:
        return sum(e.size_bytes for e in self.pending_files)

    def progress(self) -> dict[str, int]:
        """Consumer-reportable progress for this stream."""
        return {
            "stream_id": self.stream_id,
            "consumed_units": self.offset,
            "total_units": self.unit_count,
            "rows_returned": self.rows_returned,
        }

    def progress_snapshot(self) -> tuple[int, int]:
        """Cursor state for retry-safe rollback (pairs with
        :meth:`SessionStats.snapshot` in task-level retries)."""
        return (self.offset, self.rows_returned)

    def restore_progress(self, snap: tuple[int, int]) -> None:
        self.offset, self.rows_returned = snap


@dataclass
class ReadSession:
    """A consistent point-in-time read of one table."""

    session_id: str
    table: TableInfo
    principal: Principal
    output_schema: Schema
    columns: list[str]
    row_restriction: str | None
    constraints: ConstraintSet
    streams: list[ReadStream]
    engine_location: str | None
    created_ms: float
    expires_ms: float
    stats: SessionStats = field(default_factory=SessionStats)
    table_stats: dict[str, Any] | None = None
    use_row_oriented_reader: bool = False
    # (func, column-or-None, output-name) partial aggregates computed
    # server-side by Superluminal (§3.4 future work: aggregate pushdown).
    aggregates: list[tuple[str, str | None, str]] = field(default_factory=list)
    # None: no wire accounting; "arrow": plain payloads; "encoded":
    # dictionary/RLE-compressed payloads (§3.4 future work).
    wire_format: str | None = None
    # Ranged reads: fetch only the surviving row-group x needed-column
    # chunks (with range coalescing) instead of whole objects.
    ranged_reads: bool = False

    def serialize(self) -> bytes:
        """Wire handle for "over the wire" handoff: a stable byte blob with
        no live object references. Another consumer re-joins the session
        with :meth:`ReadApi.attach`, which re-resolves the stream ids
        against the deployment's session registry."""
        from repro.storageapi.streams import serialize_session

        return serialize_session(self)

    def progress(self) -> list[dict[str, int]]:
        """Per-stream consumption progress (one dict per stream)."""
        return [stream.progress() for stream in self.streams]


class ReadApi:
    """The Read API service endpoint for one deployment."""

    def __init__(
        self,
        catalog,
        bigmeta: BigMetadataService,
        connections: ConnectionManager,
        iam: IamService,
        audit: AuditLog,
        stores: StoreRegistry,
        managed: ManagedStorage,
        ctx: SimContext,
        functions: FunctionRegistry | None = None,
        data_cache=None,
    ) -> None:
        self.catalog = catalog
        self.bigmeta = bigmeta
        self.connections = connections
        self.iam = iam
        self.audit = audit
        self.stores = stores
        self.managed = managed
        self.ctx = ctx
        self.functions = functions
        # Slot-local multi-tier data cache (repro.cache.DataCache); None
        # or a disabled cache keeps the historical always-cold behavior.
        self.data_cache = data_cache
        # table_id -> simulated time of last metadata-cache refresh.
        self._cache_refreshed_ms: dict[str, float] = {}
        # Read-session reuse (§3.4 future work): cache of resolved file
        # sets keyed by (table, version, restriction, snapshot) so a
        # re-created session skips the expensive enumerate/prune step.
        # Bounded LRU: steady DML bumps table.version, so distinct keys
        # grow without bound while only recent versions can ever hit.
        self._resolution_cache: OrderedDict[tuple, tuple[list[FileEntry], int]] = OrderedDict()
        self.resolution_cache_entries = _RESOLUTION_CACHE_ENTRIES
        self.session_cache_hits = 0
        # Live sessions by id, for serialized-handle re-attach. Expired
        # sessions are pruned on registration/attach; the oldest fall off
        # past the registry bound.
        self._sessions: OrderedDict[str, ReadSession] = OrderedDict()

    # ------------------------------------------------------------------
    # CreateReadSession
    # ------------------------------------------------------------------

    def create_read_session(
        self, principal: Principal, table: TableInfo, **kwargs
    ) -> ReadSession:
        """Open a consistent read session over ``table`` (traced wrapper;
        see :meth:`_create_read_session` for the parameters)."""
        with self.ctx.tracer.span(
            "read_api.create_session", layer="storageapi", table=table.table_id
        ) as span:
            session = self._create_read_session(principal, table, **kwargs)
            span.set_tag("files_total", session.stats.files_total)
            span.set_tag("files_pruned", session.stats.files_pruned)
            if session.stats.served_from_session_cache:
                span.set_tag("session_cache_hit", True)
            return session

    def _create_read_session(
        self,
        principal: Principal,
        table: TableInfo,
        columns: list[str] | None = None,
        row_restriction: str | None = None,
        snapshot_ms: float | None = None,
        max_streams: int = 8,
        with_table_stats: bool = False,
        engine_location: str | None = None,
        use_row_oriented_reader: bool = False,
        aggregates: list[tuple[str, str | None, str]] | None = None,
        wire_format: str | None = None,
        reuse: bool = False,
        ranged_reads: bool = False,
    ) -> ReadSession:
        """Open a consistent read session over ``table``.

        ``aggregates`` pushes partial MIN/MAX/SUM/COUNT computation into the
        server; ``wire_format`` selects ReadRows payload accounting;
        ``reuse=True`` serves the file resolution from the session cache
        when the table has not changed (§3.4 future work, all three).

        Raises :class:`AccessDeniedError` if the principal lacks table
        access or requests a column denied by a column ACL.
        """
        decision = self.iam.is_allowed(
            principal, Permission.TABLES_GET_DATA, table.resource_name
        )
        self.audit.record(
            principal, "read_session.create", table.resource_name,
            decision.allowed, decision.reason,
        )
        if not decision.allowed:
            raise AccessDeniedError(
                f"{principal} cannot read {table.table_id}: {decision.reason}"
            )

        table_schema = self._effective_schema(table)
        access = table.policies.resolve(principal)
        # Compile enforcement now so denied columns fail before any IO.
        Superluminal(
            table_schema, access, columns=columns,
            row_restriction=row_restriction, functions=self.functions,
        )
        self.ctx.metrics.counter(
            "readapi_sessions_total", "read sessions created by table kind"
        ).inc(kind=table.kind.name.lower())

        constraints = ConstraintSet()
        if row_restriction:
            constraints = extract_constraints(parse_expression(row_restriction))

        stats = SessionStats()
        streams: list[ReadStream]
        cache_key = None
        if reuse and table.kind not in (TableKind.MANAGED,):
            cache_key = (
                table.table_id, table.version, row_restriction, snapshot_ms, max_streams
            )
        if cache_key is not None and cache_key in self._resolution_cache:
            self._resolution_cache.move_to_end(cache_key)
            entries, total = self._resolution_cache[cache_key]
            # Accumulate (+=): a SessionStats may see several resolutions
            # (multi-prefix or re-resolved sessions); assignment would
            # overwrite earlier counts and let files_pruned go negative.
            stats.files_total += total
            stats.files_after_pruning += len(entries)
            stats.served_from_session_cache = True
            self.session_cache_hits += 1
            self.ctx.metrics.counter(
                "readapi_session_cache_hits_total", "read sessions served from the resolution cache"
            ).inc()
            streams = self._balance_streams(entries, max_streams)
        elif table.kind is TableKind.MANAGED:
            streams = self._managed_streams(table, max_streams)
        elif table.kind is TableKind.OBJECT:
            streams = self._object_table_streams(table, constraints, snapshot_ms, max_streams, stats)
        else:
            streams = self._file_streams(table, constraints, snapshot_ms, max_streams, stats)
        if cache_key is not None and not stats.served_from_session_cache:
            resolved = [f for s in streams for f in s.files]
            self._resolution_cache[cache_key] = (resolved, stats.files_total)
            evicted = 0
            while len(self._resolution_cache) > max(1, self.resolution_cache_entries):
                self._resolution_cache.popitem(last=False)
                evicted += 1
            if evicted:
                self.ctx.metrics.counter(
                    "repro_session_cache_evictions_total",
                    "resolution-cache entries evicted (LRU, oldest first)",
                ).inc(evicted)

        projected = columns if columns is not None else [
            f.name for f in table_schema if f.name not in access.denied_columns
        ]
        table_stats = None
        if with_table_stats and self.bigmeta.has_table(table.table_id):
            table_stats = self.bigmeta.table_stats(table.table_id)

        now = self.ctx.clock.now_ms
        session = ReadSession(
            session_id=f"sess-{next(_session_ids):08d}",
            table=table,
            principal=principal,
            output_schema=table_schema.select(projected),
            columns=projected,
            row_restriction=row_restriction,
            constraints=constraints,
            streams=streams,
            engine_location=engine_location,
            created_ms=now,
            expires_ms=now + _SESSION_TTL_MS,
            stats=stats,
            table_stats=table_stats,
            use_row_oriented_reader=use_row_oriented_reader,
            aggregates=list(aggregates or []),
            wire_format=wire_format,
            ranged_reads=ranged_reads,
        )
        self._register_session(session)
        return session

    # ------------------------------------------------------------------
    # Session registry + serialized-handle attach (§3.4 handoff)
    # ------------------------------------------------------------------

    def _register_session(self, session: ReadSession) -> None:
        now = self.ctx.clock.now_ms
        for sid in [s for s, sess in self._sessions.items() if now > sess.expires_ms]:
            del self._sessions[sid]
        self._sessions[session.session_id] = session
        while len(self._sessions) > _SESSION_REGISTRY_LIMIT:
            self._sessions.popitem(last=False)

    def attach(self, blob: bytes | str) -> ReadSession:
        """Re-join a live session from its serialized handle.

        The blob (see :meth:`ReadSession.serialize`) carries ids only — no
        live object references survive the wire — so streams are
        re-resolved by id against this deployment's session registry.
        Expiry is enforced here, at attach time: a consumer holding a
        stale handle fails fast instead of deep inside its first read.

        Raises :class:`SessionExpiredError` for an expired handle and
        :class:`StorageApiError` for garbage blobs, sessions unknown to
        this deployment, or handles whose streams no longer resolve.
        """
        from repro.storageapi.streams import parse_handle

        handle = parse_handle(blob)
        now = self.ctx.clock.now_ms
        if now > handle.expires_ms:
            raise SessionExpiredError(
                f"session {handle.session_id} expired before attach"
            )
        session = self._sessions.get(handle.session_id)
        if session is None:
            raise StorageApiError(
                f"unknown session {handle.session_id}: not in this deployment's registry"
            )
        if now > session.expires_ms:
            raise SessionExpiredError(f"session {session.session_id} expired")
        live = {stream.stream_id for stream in session.streams}
        missing = [sid for sid in handle.stream_ids if sid not in live]
        if missing:
            raise StorageApiError(
                f"session {session.session_id} has no stream(s) {missing}"
            )
        self.ctx.metrics.counter(
            "repro_readsession_attaches_total",
            "serialized read-session handles re-attached",
        ).inc()
        self.audit.record(
            session.principal, "read_session.attach",
            session.table.resource_name, True, "registry",
        )
        return session

    def _effective_schema(self, table: TableInfo) -> Schema:
        if table.kind is TableKind.OBJECT:
            return OBJECT_TABLE_SCHEMA
        return table.schema

    # -- stream construction ----------------------------------------------

    def _managed_streams(self, table: TableInfo, max_streams: int) -> list[ReadStream]:
        batches = self.managed.read(table.table_id)
        streams = [ReadStream(stream_id=i) for i in range(max(1, min(max_streams, len(batches) or 1)))]
        for i, batch in enumerate(batches):
            streams[i % len(streams)].batches.append(batch)
        return streams

    def _file_streams(
        self,
        table: TableInfo,
        constraints: ConstraintSet,
        snapshot_ms: float | None,
        max_streams: int,
        stats: SessionStats,
    ) -> list[ReadStream]:
        entries, total = self._resolve_files(table, constraints, snapshot_ms)
        stats.files_total += total
        stats.files_after_pruning += len(entries)
        return self._balance_streams(entries, max_streams)

    @staticmethod
    def _balance_streams(entries: list[FileEntry], max_streams: int) -> list[ReadStream]:
        """Spread files over streams by size (largest-first greedy)."""
        count = max(1, min(max_streams, len(entries) or 1))
        streams = [ReadStream(stream_id=i) for i in range(count)]
        loads = [0] * count
        for entry in sorted(entries, key=lambda e: -e.size_bytes):
            target = loads.index(min(loads))
            streams[target].files.append(entry)
            loads[target] += entry.size_bytes
        return streams

    def estimate_task_costs(self, session: ReadSession) -> list[float] | None:
        """Per-task (per-file) scan cost estimates for the slot scheduler.

        One task per file after pruning, in stream order: GET latency +
        per-MiB transfer + per-MiB decode, with resident cache bytes
        (probed non-mutatingly via
        :meth:`~repro.cache.DataCache.warm_chunk_bytes`) discounted to the
        cheap hit cost. Purely advisory — the scheduler rescales the
        estimates to the *measured* stage scan time, so only their relative
        shape matters. Returns None for managed/object tables, whose tasks
        are not file-shaped (the scheduler falls back to a uniform split).
        """
        if session.table.kind in (TableKind.MANAGED, TableKind.OBJECT):
            return None
        costs = self.ctx.costs
        cache = self.data_cache
        out: list[float] = []
        for stream in session.streams:
            for entry in stream.files:
                size = max(0, entry.size_bytes)
                cold = (
                    costs.get_first_byte_ms
                    + (size / MIB) * (costs.get_per_mib_ms + costs.scan_per_mib_ms)
                )
                warm_bytes = 0
                generation = getattr(entry, "generation", 0)
                if cache is not None and cache.enabled and generation > 0 and size > 0:
                    bucket, _, key = entry.file_path.partition("/")
                    warm_bytes = min(size, cache.warm_chunk_bytes(bucket, key, generation))
                warm_fraction = warm_bytes / size if size else 0.0
                warm = (
                    costs.cache_lookup_ms
                    + (warm_bytes / MIB) * costs.cache_hit_per_mib_ms
                )
                out.append(cold * (1.0 - warm_fraction) + warm * warm_fraction)
        return out

    def _object_table_streams(
        self,
        table: TableInfo,
        constraints: ConstraintSet,
        snapshot_ms: float | None,
        max_streams: int,
        stats: SessionStats,
    ) -> list[ReadStream]:
        """Object tables read the metadata cache itself as data (§4.1)."""
        try:
            self._ensure_cache_fresh(table)
            entries = self.bigmeta.prune(table.table_id, constraints, as_of_ms=snapshot_ms)
            stats.files_total += self._live_file_count(table.table_id, snapshot_ms)
        except TransientError:
            # Degraded mode: serve object rows straight from a live LIST,
            # bypassing the unavailable metadata cache.
            record_degradation(self.ctx, "object_table", table.table_id)
            store = self.stores.store_for(table.storage.location)
            self._require_delegated_access(table, store, listing=True)
            listed = [
                _object_entry(table.storage.bucket, meta)
                for meta in store.list_objects(
                    table.storage.bucket, prefix=_dir_prefix(table.storage.prefix)
                )
            ]
            entries = [
                e for e in listed
                if BigMetadataService._entry_matches(e, constraints)
            ]
            stats.files_total += len(listed)
        stats.files_after_pruning += len(entries)
        count = max(1, min(max_streams, (len(entries) + 4095) // 4096 or 1))
        streams = [ReadStream(stream_id=i) for i in range(count)]
        for i, entry in enumerate(entries):
            streams[i % count].files.append(entry)
        return streams

    # -- file resolution ------------------------------------------------------

    def _resolve_files(
        self,
        table: TableInfo,
        constraints: ConstraintSet,
        snapshot_ms: float | None,
    ) -> tuple[list[FileEntry], int]:
        """(pruned entries, total live files) for a file-backed table."""
        if table.kind is TableKind.BLMT:
            # Big Metadata is the source of truth for managed BigLake tables:
            # there is no listing fallback (the bucket may hold uncommitted
            # files), so transient lookup faults are retried instead.
            pruned = self.ctx.with_retry(
                "bigmeta.prune",
                lambda: self.bigmeta.prune(table.table_id, constraints, as_of_ms=snapshot_ms),
            )
            total = self._live_file_count(table.table_id, snapshot_ms)
            return pruned, total
        if table.kind in (TableKind.BIGLAKE, TableKind.EXTERNAL):
            cache_on = (
                table.kind is TableKind.BIGLAKE
                and table.cache_config.mode is not MetadataCacheMode.DISABLED
            )
            if cache_on:
                try:
                    self._ensure_cache_fresh(table)
                    pruned = self.bigmeta.prune(
                        table.table_id, constraints, as_of_ms=snapshot_ms
                    )
                    total = self._live_file_count(table.table_id, snapshot_ms)
                    return pruned, total
                except TransientError:
                    # Graceful degradation (§3.3): when the metadata cache
                    # is unavailable, fall back to the live LIST + footer
                    # path — slower, but within the staleness bound since
                    # the bucket itself is the source of truth.
                    record_degradation(self.ctx, "metadata_cache", table.table_id)
            return self._resolve_by_listing(table, constraints)
        raise CatalogError(f"cannot stream table kind {table.kind}")

    def _live_file_count(self, table_id: str, snapshot_ms: float | None) -> int:
        """File count without a second metered metadata round trip (the
        prune call already paid it; the count rides in the same response)."""
        return len(self.bigmeta.table(table_id).live_entries(snapshot_ms))

    def _resolve_by_listing(
        self, table: TableInfo, constraints: ConstraintSet
    ) -> tuple[list[FileEntry], int]:
        """The uncached path: LIST the bucket, read every footer (§3.3)."""
        store = self.stores.store_for(table.storage.location)
        self._require_delegated_access(table, store, listing=True)
        entries: list[FileEntry] = []
        total = 0
        caller = None  # the read API front end runs next to the store
        for meta in store.list_objects(table.storage.bucket, prefix=_dir_prefix(table.storage.prefix)):
            if not meta.key.endswith(".pqs"):
                continue
            total += 1
            partition = self._partition_values(table, meta.key)
            # Partition pruning from the key path alone avoids the footer
            # read; anything else needs the footer statistics.
            if not self._partition_admits(partition, constraints):
                continue
            footer, size = self.ctx.with_retry(
                "objectstore.get_range",
                lambda key=meta.key: read_remote_footer(
                    store, table.storage.bucket, key, caller_location=caller
                ),
            )
            entry = entry_from_footer(
                f"{table.storage.bucket}/{meta.key}", size, footer, partition,
                generation=meta.generation,
            )
            if BigMetadataService._entry_matches(entry, constraints):
                entries.append(entry)
        return entries, total

    @staticmethod
    def _partition_admits(partition: dict[str, Any], constraints: ConstraintSet) -> bool:
        for column, constraint in constraints:
            if column in {k.lower() for k in partition}:
                value = {k.lower(): v for k, v in partition.items()}[column]
                if not constraint.admits_value(value):
                    return False
        return True

    def _partition_values(self, table: TableInfo, key: str) -> dict[str, Any]:
        if not table.partition_columns:
            return {}
        raw = parse_partition_from_key(table.storage.prefix, key)
        values: dict[str, Any] = {}
        for name in table.partition_columns:
            if name not in raw:
                continue
            dtype = table.schema.field(name).dtype if table.schema.has_field(name) else DataType.STRING
            values[name] = _coerce_partition_value(raw[name], dtype)
        return values

    def _require_delegated_access(
        self, table: TableInfo, store, listing: bool = False
    ) -> None:
        """Verify the *connection's service account* (never the user) holds
        storage access — the delegated access model of §3.1."""
        if table.connection_name is None:
            return
        conn = self.connections.get_connection(table.connection_name)
        permission = (
            Permission.STORAGE_OBJECTS_LIST if listing else Permission.STORAGE_OBJECTS_GET
        )
        self.iam.require(conn.service_account, permission, f"buckets/{table.storage.bucket}")

    # ------------------------------------------------------------------
    # Metadata cache maintenance (§3.3)
    # ------------------------------------------------------------------

    def _ensure_cache_fresh(self, table: TableInfo) -> None:
        if table.kind is TableKind.BLMT:
            return  # always authoritative
        hits = self.ctx.metrics.counter(
            "bigmeta_cache_hits_total", "metadata-cache reads served without a refresh"
        )
        misses = self.ctx.metrics.counter(
            "bigmeta_cache_misses_total", "metadata-cache reads that triggered a refresh"
        )
        last = self._cache_refreshed_ms.get(table.table_id)
        stale = last is None or (
            self.ctx.clock.now_ms - last > table.cache_config.max_staleness_ms
        )
        if stale and table.cache_config.mode is MetadataCacheMode.AUTOMATIC:
            misses.inc()
            self.refresh_metadata_cache(table)
        elif last is None:
            # Manual mode with no refresh ever: populate once so queries work.
            misses.inc()
            self.refresh_metadata_cache(table)
        else:
            hits.inc()
            current = self.ctx.tracer.current
            if current is not None:
                current.set_tag("cache_hit", True)

    def refresh_metadata_cache(self, table: TableInfo) -> dict[str, int]:
        """Re-scan the bucket and reconcile the Big Metadata cache.

        Runs under the connection's credentials (a background maintenance
        operation the user's credentials could never perform, §3.1).
        Returns counters: {"added": n, "removed": m, "unchanged": k}.
        """
        with self.ctx.tracer.span(
            "read_api.refresh_metadata_cache", layer="storageapi", table=table.table_id
        ):
            return self._refresh_metadata_cache(table)

    def _refresh_metadata_cache(self, table: TableInfo) -> dict[str, int]:
        store = self.stores.store_for(table.storage.location)
        self._require_delegated_access(table, store, listing=True)
        self.bigmeta.register_table(table.table_id)
        current = {
            e.file_path: e for e in self.bigmeta.table(table.table_id).live_entries().values()
        }
        observed: dict[str, FileEntry] = {}
        bucket = table.storage.bucket
        if table.kind is TableKind.OBJECT:
            for meta in store.list_objects(bucket, prefix=_dir_prefix(table.storage.prefix)):
                observed[f"{bucket}/{meta.key}"] = _object_entry(bucket, meta)
        else:
            for meta in store.list_objects(bucket, prefix=_dir_prefix(table.storage.prefix)):
                if not meta.key.endswith(".pqs"):
                    continue
                path = f"{bucket}/{meta.key}"
                known = current.get(path)
                # Generation is a stronger change signal than size: an
                # in-place overwrite of identical length still bumps it.
                # Entries registered without a generation (0) keep the
                # legacy size-only comparison.
                if (
                    known is not None
                    and known.size_bytes == meta.size
                    and known.generation in (0, meta.generation)
                ):
                    observed[path] = known  # unchanged: skip the footer read
                    continue
                footer, size = read_remote_footer(store, bucket, meta.key)
                observed[path] = entry_from_footer(
                    path, size, footer, self._partition_values(table, meta.key),
                    generation=meta.generation,
                )
        added = [e for p, e in observed.items() if p not in current]
        changed = [
            e for p, e in observed.items() if p in current and current[p] != e
        ]
        removed = [p for p in current if p not in observed]
        if added or removed or changed:
            self.bigmeta.commit(
                table.table_id,
                added=added + changed,
                deleted=removed + [e.file_path for e in changed],
            )
        self._cache_refreshed_ms[table.table_id] = self.ctx.clock.now_ms
        return {
            "added": len(added),
            "removed": len(removed),
            "unchanged": len(observed) - len(added) - len(changed),
        }

    def mark_cache_refreshed(self, table_id: str) -> None:
        """Writers that update Big Metadata inline (BLMT, Write API) keep
        the cache authoritative without a bucket re-scan."""
        self._cache_refreshed_ms[table_id] = self.ctx.clock.now_ms

    # ------------------------------------------------------------------
    # ReadRows
    # ------------------------------------------------------------------

    def read_rows(
        self, session: ReadSession, stream_index: int, max_units: int | None = None
    ) -> Iterator[RecordBatch]:
        """Stream governed batches from one stream of a session.

        Validation — the fault hazard, session expiry, and the stream
        index — runs *here*, eagerly at call time, not on first ``next()``
        of the returned iterator: an expired session or a bad stream index
        must fail at the call site, not far away wherever the generator is
        first drained.

        Reads advance the stream's consumption cursor, so a second call
        resumes where the previous one stopped. ``max_units`` bounds how
        many units (files; batches for managed tables) this call consumes,
        letting a consumer interleave progress reports or rebalancing
        between files; ``None`` drains the stream.
        """
        self.ctx.faults.check(
            "read_api.read_rows", table=session.table.table_id, stream=stream_index
        )
        if self.ctx.clock.now_ms > session.expires_ms:
            raise SessionExpiredError(f"session {session.session_id} expired")
        if not 0 <= stream_index < len(session.streams):
            raise StorageApiError(f"no stream {stream_index} in session")
        table_schema = self._effective_schema(session.table)
        access = session.table.policies.resolve(session.principal)
        enforcement = Superluminal(
            table_schema, access, columns=session.columns,
            row_restriction=session.row_restriction, functions=self.functions,
            tracer=self.ctx.tracer,
        )
        return self._read_rows_impl(session, stream_index, enforcement, max_units)

    def _read_rows_impl(
        self, session: ReadSession, stream_index: int, enforcement, max_units: int | None
    ) -> Iterator[RecordBatch]:
        stream = session.streams[stream_index]
        if session.table.kind is TableKind.MANAGED:
            batches = self._read_managed_stream(session, stream, enforcement, max_units)
        elif session.table.kind is TableKind.OBJECT:
            batches = self._read_object_stream(session, stream, enforcement, max_units)
        else:
            batches = self._read_file_stream(session, stream, enforcement, max_units)
        if session.aggregates:
            batches = self._aggregate_stream(session, batches)
        else:
            batches = self._wire_accounted(session, batches)
        counter = self.ctx.metrics.counter(
            "repro_readsession_stream_rows_total",
            "rows returned per read-session stream",
        )
        for batch in batches:
            stream.rows_returned += batch.num_rows
            counter.inc(batch.num_rows, stream=str(stream.stream_id))
            yield batch

    def _wire_accounted(self, session: ReadSession, batches) -> Iterator[RecordBatch]:
        for batch in batches:
            self._account_wire(session, batch)
            yield batch

    def _account_wire(self, session: ReadSession, batch: RecordBatch) -> None:
        """ReadRows payload accounting + transfer/TLS cost (§3.4 f.w.)."""
        if session.wire_format is None:
            return
        from repro.storageapi import wire

        plain = wire.plain_size(batch)
        if session.wire_format == "encoded":
            encoded = len(wire.encode_batch(batch))
        else:
            encoded = plain
        session.stats.wire_bytes_plain += plain
        session.stats.wire_bytes_encoded += encoded
        # Wire transfer + client-side TLS decryption scale with the bytes
        # actually shipped.
        with self.ctx.tracer.span("read_api.wire", layer="storageapi", bytes=encoded):
            self.ctx.charge(
                "read_api.wire",
                (encoded / MIB)
                * (self.ctx.costs.in_region_per_mib_ms + self.ctx.costs.tls_decrypt_per_mib_ms),
            )

    def _aggregate_stream(self, session: ReadSession, batches) -> Iterator[RecordBatch]:
        """Aggregate pushdown (§3.4 future work): compute partial
        MIN/MAX/SUM/COUNT server-side and return one tiny row per stream."""
        from repro.data.column import Column
        from repro.data.types import Field

        counts = {name: 0 for _, _, name in session.aggregates}
        sums: dict[str, float | int | None] = {name: None for _, _, name in session.aggregates}
        mins: dict[str, Any] = {name: None for _, _, name in session.aggregates}
        maxs: dict[str, Any] = {name: None for _, _, name in session.aggregates}
        dtypes: dict[str, DataType] = {}
        for func, column, name in session.aggregates:
            if func == "COUNT":
                dtypes[name] = DataType.INT64
            else:
                dtypes[name] = session.output_schema.field(column).dtype
        for batch in batches:
            for func, column, name in session.aggregates:
                if func == "COUNT" and column is None:
                    counts[name] += batch.num_rows
                    continue
                col = batch.column(column)
                if func == "COUNT":
                    counts[name] += len(col) - col.null_count()
                elif func == "SUM":
                    valid = col.is_valid()
                    if valid.any():
                        part = col.values[valid].sum()
                        part = part.item() if hasattr(part, "item") else part
                        sums[name] = part if sums[name] is None else sums[name] + part
                elif func in ("MIN", "MAX"):
                    lo, hi = col.min_max()
                    target = mins if func == "MIN" else maxs
                    value = lo if func == "MIN" else hi
                    if value is not None:
                        current = target[name]
                        if current is None:
                            target[name] = value
                        else:
                            target[name] = min(current, value) if func == "MIN" else max(current, value)
        fields = []
        columns = []
        for func, column, name in session.aggregates:
            fields.append(Field(name, dtypes[name]))
            if func == "COUNT":
                value = counts[name]
            elif func == "SUM":
                value = sums[name]
            elif func == "MIN":
                value = mins[name]
            else:
                value = maxs[name]
            columns.append(Column.from_pylist(dtypes[name], [value]))
        partial = RecordBatch(Schema(tuple(fields)), columns)
        self._account_wire(session, partial)
        yield partial

    def _count_scanned(self, num_bytes: int) -> None:
        self.ctx.metrics.counter(
            "readapi_bytes_scanned_total", "bytes scanned across all read sessions"
        ).inc(num_bytes)

    def _count_cache_hit(self, num_bytes: int) -> None:
        """Warm reads bypass :meth:`_count_scanned`; without this counter
        the scanned metric silently stops tying out against trace/JOBS
        totals on warm runs (scanned + cache_hit == source bytes)."""
        self.ctx.metrics.counter(
            "readapi_cache_hit_bytes_total",
            "source bytes served from the data cache instead of being scanned",
        ).inc(num_bytes)

    def _read_managed_stream(
        self, session, stream, enforcement, max_units=None
    ) -> Iterator[RecordBatch]:
        taken = 0
        while stream.offset < len(stream.batches) and (max_units is None or taken < max_units):
            batch = stream.batches[stream.offset]
            stream.offset += 1
            taken += 1
            session.stats.rows_scanned += batch.num_rows
            session.stats.bytes_scanned += batch.nbytes()
            self._count_scanned(batch.nbytes())
            out = enforcement.process(batch)
            session.stats.rows_returned += out.num_rows
            if out.num_rows:
                yield out

    def _read_object_stream(
        self, session, stream, enforcement, max_units=None
    ) -> Iterator[RecordBatch]:
        """Materialize object-table rows from cached metadata entries.

        When the ``data`` column is requested, object contents are fetched
        *after* row filtering, so a principal only ever reads bytes of
        objects whose rows it can see (§4.1's invariant), and unselected
        objects cost nothing.
        """
        needs_data = any(c.lower() == "data" for c in session.columns)
        if needs_data:
            # Widen the enforcement projection so bucket/key survive for
            # the fetch, then narrow to the requested columns at the end.
            wide_columns = list(session.columns)
            for extra in ("bucket", "key"):
                if extra not in [c.lower() for c in wide_columns]:
                    wide_columns.append(extra)
            access = session.table.policies.resolve(session.principal)
            enforcement = Superluminal(
                self._effective_schema(session.table), access,
                columns=wide_columns, row_restriction=session.row_restriction,
                functions=self.functions, tracer=self.ctx.tracer,
            )
            store = self.stores.store_for(session.table.storage.location)
            self._require_delegated_access(session.table, store)
        chunk = 4096
        taken = 0
        while stream.offset < len(stream.files) and (max_units is None or taken < max_units):
            take = chunk if max_units is None else min(chunk, max_units - taken)
            entries = stream.files[stream.offset : stream.offset + take]
            stream.offset += len(entries)
            taken += len(entries)
            batch = _object_entries_to_batch(entries)
            self.ctx.charge("object_table.materialize", self.ctx.costs.bigmeta_lookup_ms)
            session.stats.rows_scanned += batch.num_rows
            out = enforcement.process(batch)
            if needs_data and out.num_rows:
                out = self._fetch_object_data(session, out)
                out = out.select(session.columns)
            session.stats.rows_returned += out.num_rows
            if out.num_rows:
                yield out

    def _fetch_object_data(self, session, batch: RecordBatch) -> RecordBatch:
        """Fill the ``data`` column by fetching each surviving object."""
        from repro.data.column import Column
        from repro.data.types import Field

        store = self.stores.store_for(session.table.storage.location)
        buckets = batch.column("bucket").to_pylist()
        keys = batch.column("key").to_pylist()
        payloads = []
        for bucket, key in zip(buckets, keys):
            data = self.ctx.with_retry(
                "objectstore.get",
                lambda: store.get_object(
                    bucket, key, caller_location=session.engine_location
                ),
            )
            session.stats.bytes_scanned += len(data)
            self._count_scanned(len(data))
            payloads.append(data)
        column = Column.from_pylist(DataType.BYTES, payloads)
        return batch.with_column(Field("data", DataType.BYTES), column)

    def _read_file_stream(
        self, session, stream, enforcement, max_units=None
    ) -> Iterator[RecordBatch]:
        table = session.table
        store = self.stores.store_for(table.storage.location)
        self._require_delegated_access(table, store)
        cache = self.data_cache
        taken = 0
        while stream.offset < len(stream.files) and (max_units is None or taken < max_units):
            # Advance the cursor *before* reading: the file is "started",
            # so a rebalancer can never move it mid-read. A failed read is
            # rewound by the caller's progress snapshot, not here.
            entry = stream.files[stream.offset]
            stream.offset += 1
            taken += 1
            bucket, _, key = entry.file_path.partition("/")
            generation = getattr(entry, "generation", 0)
            if (
                cache is not None
                and cache.enabled
                and generation > 0
                and not session.use_row_oriented_reader
            ):
                # The cached path covers both scan modes: a warm file is
                # served chunk-by-chunk regardless of ranged_reads, a cold
                # one falls back to the mode's historical fetch shape.
                yield from self._cached_scan(
                    session, store, bucket, key, generation, enforcement
                )
                continue
            if session.ranged_reads and not session.use_row_oriented_reader:
                yield from self._ranged_scan(session, store, bucket, key, enforcement)
                continue
            data = self.ctx.with_retry(
                "objectstore.get",
                lambda: store.get_object(
                    bucket, key, caller_location=session.engine_location
                ),
            )
            session.stats.bytes_scanned += len(data)
            self._count_scanned(len(data))
            if session.use_row_oriented_reader:
                yield from self._row_oriented_scan(session, data, enforcement)
            else:
                yield from self._vectorized_scan(session, data, enforcement)

    # -- ranged scans -----------------------------------------------------

    # Selected chunk ranges closer together than this are fetched as one
    # request (standard reader coalescing).
    _COALESCE_GAP_BYTES = 64 * 1024

    def _needed_columns(self, session) -> set[str]:
        """Lower-cased column names a scan must materialize: the projection
        plus every column referenced by user or security row filters."""
        from repro.sql.expressions import collect_column_refs

        needed = {c.lower() for c in session.columns if c.lower() != "data"}
        if session.row_restriction:
            needed |= {
                r.rsplit(".", 1)[-1].lower()
                for r in collect_column_refs(parse_expression(session.row_restriction))
            }
        access = session.table.policies.resolve(session.principal)
        for filter_sql in access.row_filters:
            needed |= {
                r.rsplit(".", 1)[-1].lower()
                for r in collect_column_refs(parse_expression(filter_sql))
            }
        return needed

    def _fetch_ranges(
        self, session, store, bucket: str, key: str, chunks
    ) -> dict[str, bytes]:
        """Fetch the given column chunks with coalesced ranged GETs;
        returns {column_name: payload} and accounts the scanned bytes."""
        buffers: dict[str, bytes] = {}
        for start, stop, members in self._coalesced_ranges(
            sorted(chunks, key=lambda c: c.offset)
        ):
            blob = self.ctx.with_retry(
                "objectstore.get_range",
                lambda start=start, stop=stop: store.get_range(
                    bucket, key, start, stop - start,
                    caller_location=session.engine_location,
                ),
            )
            session.stats.bytes_scanned += len(blob)
            self._count_scanned(len(blob))
            for chunk in members:
                lo = chunk.offset - start
                buffers[chunk.name] = blob[lo : lo + chunk.length]
        return buffers

    def _emit(self, session, enforcement, batch) -> Iterator[RecordBatch]:
        session.stats.rows_scanned += batch.num_rows
        out = enforcement.process(batch)
        session.stats.rows_returned += out.num_rows
        if out.num_rows:
            yield out

    def _ranged_scan(
        self, session, store, bucket: str, key: str, enforcement
    ) -> Iterator[RecordBatch]:
        """Fetch only the chunks the query needs: footer first, then the
        surviving row groups x (projected + filter) columns, coalescing
        adjacent byte ranges."""
        from repro.formats import pqs as _pqs

        footer, _size = self.ctx.with_retry(
            "objectstore.get_range",
            lambda: read_remote_footer(
                store, bucket, key, caller_location=session.engine_location
            ),
        )
        keep = self._surviving_row_groups(session, footer)
        session.stats.row_groups_pruned += len(footer.row_groups) - len(keep)
        if not keep:
            return

        needed = self._needed_columns(session)
        schema = footer.schema
        fetch_columns = [f.name for f in schema if f.name.lower() in needed]
        if not fetch_columns:
            fetch_columns = [schema.fields[0].name]

        for rg_index in keep:
            rg = footer.row_groups[rg_index]
            buffers = self._fetch_ranges(
                session, store, bucket, key,
                [rg.column(name) for name in fetch_columns],
            )
            columns = []
            for field in schema:
                chunk = rg.column(field.name)
                if field.name in buffers:
                    columns.append(
                        _pqs._decode_chunk(
                            field.dtype, chunk.encoding, buffers[field.name]
                        )
                    )
                else:
                    # Unfetched columns ride as null placeholders so the
                    # batch stays aligned with the table schema; they are
                    # never projected or filtered on.
                    from repro.data.column import Column

                    columns.append(Column.nulls(field.dtype, rg.num_rows))
            batch = RecordBatch(schema, columns)
            cpu_cost = (
                sum(len(b) for b in buffers.values()) / MIB
            ) * self.ctx.costs.scan_per_mib_ms
            session.stats.cpu_ms += cpu_cost
            with self.ctx.tracer.span(
                "formats.decode", layer="formats", reader="ranged",
                bytes=sum(len(b) for b in buffers.values()),
            ):
                self.ctx.charge("read_api.ranged_scan", cpu_cost)
            yield from self._emit(session, enforcement, batch)

    def _cached_scan(
        self, session, store, bucket: str, key: str, generation: int, enforcement
    ) -> Iterator[RecordBatch]:
        """Serve a file's surviving row groups through the data cache.

        Footer first: a hit skips the footer round trips, a miss takes the
        scan mode's historical fetch (whole object, or ranged footer read)
        and admits it. Then per row group: a cold whole-object fetch
        decodes and admits every chunk at the historical decode cost; a
        warm file serves the needed columns from the chunk tier at the
        cheap hit cost, ranged-fetching only the missing chunks. Columns
        the query does not need ride as null placeholders exactly like the
        ranged path, so results are byte-identical cold or warm.
        """
        from repro.data.column import Column
        from repro.formats import pqs as _pqs

        cache = self.data_cache
        data: bytes | None = None
        cached = cache.lookup_footer(bucket, key, generation)
        if cached is not None:
            footer, _size = cached
        elif session.ranged_reads:
            footer, size = self.ctx.with_retry(
                "objectstore.get_range",
                lambda: read_remote_footer(
                    store, bucket, key, caller_location=session.engine_location
                ),
            )
            cache.admit_footer(bucket, key, generation, footer, size)
        else:
            data = self.ctx.with_retry(
                "objectstore.get",
                lambda: store.get_object(
                    bucket, key, caller_location=session.engine_location
                ),
            )
            session.stats.bytes_scanned += len(data)
            self._count_scanned(len(data))
            footer = _pqs.read_footer(data)
            cache.admit_footer(bucket, key, generation, footer, len(data))

        keep = self._surviving_row_groups(session, footer)
        session.stats.row_groups_pruned += len(footer.row_groups) - len(keep)
        if not keep:
            return
        schema = footer.schema

        if data is not None:
            # Cold whole-object fetch: decode every column (the bytes are
            # already here) so later queries hit regardless of projection.
            cpu_cost = (len(data) / MIB) * self.ctx.costs.scan_per_mib_ms
            session.stats.cpu_ms += cpu_cost
            with self.ctx.tracer.span(
                "formats.decode", layer="formats", reader="vectorized", bytes=len(data)
            ):
                self.ctx.charge("read_api.vectorized_scan", cpu_cost)
            for rg_index in keep:
                rg = footer.row_groups[rg_index]
                columns = []
                for field in schema:
                    chunk = rg.column(field.name)
                    decoded = cache.decode_chunk(
                        field.dtype, chunk.encoding,
                        data[chunk.offset : chunk.offset + chunk.length],
                    )
                    cache.admit_chunk(
                        bucket, key, generation, rg_index, field.name,
                        decoded, chunk.length,
                    )
                    columns.append(decoded)
                yield from self._emit(
                    session, enforcement, RecordBatch(schema, columns)
                )
            return

        # Warm footer: chunk-granular serving for the needed columns.
        needed = self._needed_columns(session)
        fetch_columns = [f.name for f in schema if f.name.lower() in needed]
        if not fetch_columns:
            fetch_columns = [schema.fields[0].name]
        for rg_index in keep:
            rg = footer.row_groups[rg_index]
            resolved: dict[str, Any] = {}
            missing = []
            for name in fetch_columns:
                hit = cache.lookup_chunk(bucket, key, generation, rg_index, name)
                if hit is not None:
                    resolved[name], nbytes = hit
                    session.stats.cache_hit_bytes += nbytes
                    self._count_cache_hit(nbytes)
                else:
                    missing.append(rg.column(name))
            if missing:
                buffers = self._fetch_ranges(session, store, bucket, key, missing)
                fetched = sum(len(b) for b in buffers.values())
                cpu_cost = (fetched / MIB) * self.ctx.costs.scan_per_mib_ms
                session.stats.cpu_ms += cpu_cost
                with self.ctx.tracer.span(
                    "formats.decode", layer="formats", reader="ranged", bytes=fetched
                ):
                    self.ctx.charge("read_api.ranged_scan", cpu_cost)
                for chunk in missing:
                    field = schema.field(chunk.name)
                    decoded = cache.decode_chunk(
                        field.dtype, chunk.encoding, buffers[chunk.name]
                    )
                    cache.admit_chunk(
                        bucket, key, generation, rg_index, chunk.name,
                        decoded, chunk.length,
                    )
                    resolved[chunk.name] = decoded
            columns = [
                resolved[f.name] if f.name in resolved
                else Column.nulls(f.dtype, rg.num_rows)
                for f in schema
            ]
            yield from self._emit(session, enforcement, RecordBatch(schema, columns))

    def _surviving_row_groups(self, session, footer) -> list[int]:
        keep = set(range(len(footer.row_groups)))
        reader = VectorizedReader.__new__(VectorizedReader)
        reader.footer = footer
        for column, constraint in session.constraints:
            if not footer.schema.has_field(column):
                continue
            keep &= set(
                reader.prunable_row_groups(
                    footer.schema.field(column).name,
                    lo=constraint.lo, hi=constraint.hi,
                )
            )
        return sorted(keep)

    def _coalesced_ranges(self, chunks) -> list[tuple[int, int, list]]:
        """Group offset-sorted chunks into fetch ranges, merging neighbors
        separated by less than the coalescing gap."""
        ranges: list[tuple[int, int, list]] = []
        for chunk in chunks:
            if ranges and chunk.offset - ranges[-1][1] <= self._COALESCE_GAP_BYTES:
                start, _stop, members = ranges[-1]
                members.append(chunk)
                ranges[-1] = (start, max(_stop, chunk.offset + chunk.length), members)
            else:
                ranges.append((chunk.offset, chunk.offset + chunk.length, [chunk]))
        return ranges

    def _vectorized_scan(self, session, data: bytes, enforcement) -> Iterator[RecordBatch]:
        reader = VectorizedReader(data)
        keep = set(range(len(reader.footer.row_groups)))
        # Row-group skipping with footer stats and session constraints.
        for column, constraint in session.constraints:
            if not reader.footer.schema.has_field(column):
                continue
            survivors = set(
                reader.prunable_row_groups(
                    reader.footer.schema.field(column).name,
                    lo=constraint.lo,
                    hi=constraint.hi,
                )
            )
            keep &= survivors
        session.stats.row_groups_pruned += len(reader.footer.row_groups) - len(keep)
        cpu_cost = (len(data) / MIB) * self.ctx.costs.scan_per_mib_ms
        session.stats.cpu_ms += cpu_cost
        with self.ctx.tracer.span(
            "formats.decode", layer="formats", reader="vectorized", bytes=len(data)
        ):
            self.ctx.charge("read_api.vectorized_scan", cpu_cost)
        for rg_index in sorted(keep):
            from repro.formats import pqs

            batch = pqs.read_row_group(data, reader.footer, rg_index)
            session.stats.rows_scanned += batch.num_rows
            out = enforcement.process(batch)
            session.stats.rows_returned += out.num_rows
            if out.num_rows:
                yield out

    def _row_oriented_scan(self, session, data: bytes, enforcement) -> Iterator[RecordBatch]:
        """The legacy prototype path (§3.4): decode rows, re-columnarize,
        then enforce. Slower in CPU and in simulated time."""
        reader = RowReader(data)
        n_rows = reader.footer.num_rows
        cpu_cost = (
            (len(data) / MIB) * self.ctx.costs.scan_per_mib_ms * 4.0
            + n_rows * self.ctx.costs.row_scan_overhead_per_row_us / 1000.0
        )
        session.stats.cpu_ms += cpu_cost
        with self.ctx.tracer.span(
            "formats.decode", layer="formats", reader="row", bytes=len(data)
        ):
            self.ctx.charge("read_api.row_scan", cpu_cost)
        for batch in reader.read_all(batch_rows=8192):
            session.stats.rows_scanned += batch.num_rows
            out = enforcement.process(batch)
            session.stats.rows_returned += out.num_rows
            if out.num_rows:
                yield out

    # ------------------------------------------------------------------
    # Dynamic work rebalancing
    # ------------------------------------------------------------------

    def split_stream(self, session: ReadSession, stream_index: int) -> int:
        """Split half of a stream's *pending* files into a new stream.

        Only not-yet-started files move; anything at or below the
        consumption cursor stays put so an active consumer never loses a
        file out from under its current read."""
        stream = session.streams[stream_index]
        pending = stream.pending_files
        if len(pending) < 2:
            raise StorageApiError("stream too small to split")
        half = len(pending) // 2
        moved = pending[half:]
        del stream.files[stream.offset + half:]
        new_stream = ReadStream(stream_id=len(session.streams), files=moved)
        session.streams.append(new_stream)
        return new_stream.stream_id


def _object_entry(bucket: str, meta) -> FileEntry:
    """Encode one object's attributes as a metadata-cache entry.

    Object tables reuse the structured-table cache (§4.1): attributes ride
    in ``partition_values`` so the standard pruner can filter on them
    (e.g. ``content_type = 'image/jpeg'`` or ``create_time > ...``).
    """
    create_us = int(meta.create_time_ms * 1000)
    update_us = int(meta.update_time_ms * 1000)
    return FileEntry(
        file_path=f"{bucket}/{meta.key}",
        size_bytes=meta.size,
        row_count=1,
        partition_values=(
            ("bucket", bucket),
            ("content_type", meta.content_type),
            ("create_time", create_us),
            ("generation", meta.generation),
            ("key", meta.key),
            ("size", meta.size),
            ("update_time", update_us),
            ("uri", meta.uri),
        ),
        column_stats=(
            ("create_time", ColumnStats(min_value=create_us, max_value=create_us)),
            ("size", ColumnStats(min_value=meta.size, max_value=meta.size)),
        ),
    )


def _object_entries_to_batch(entries: list[FileEntry]) -> RecordBatch:
    columns = {name: [] for name in OBJECT_TABLE_SCHEMA.names()}
    for entry in entries:
        values = entry.partition()
        for name in columns:
            columns[name].append(values.get(name))
    return batch_from_pydict(OBJECT_TABLE_SCHEMA, columns)


def _coerce_partition_value(raw: str, dtype: DataType):
    if dtype is DataType.INT64:
        return int(raw)
    if dtype is DataType.FLOAT64:
        return float(raw)
    if dtype is DataType.DATE:
        return parse_date_to_days(raw)
    if dtype is DataType.BOOL:
        return raw.lower() in ("true", "1")
    return raw


def _dir_prefix(prefix: str) -> str:
    """Normalize a table prefix to a directory prefix so that listing
    ``a/store`` never also matches ``a/store_sales/``."""
    return prefix.rstrip("/") + "/" if prefix else ""
