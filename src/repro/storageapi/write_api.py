"""The Storage Write API (§2.2.2): streams, exactly-once, transactions.

Supports the paper's two modes:

* ``COMMITTED`` streams — real-time streaming: rows become visible as they
  are flushed.
* ``PENDING`` streams — batch mode: rows buffer until the stream is
  finalized and committed; ``batch_commit`` makes *multiple* finalized
  streams visible atomically (cross-stream transactions).

Exactly-once delivery uses per-stream row offsets: a retried append with an
already-applied offset is acknowledged as a duplicate and not re-applied.

Destinations: BigQuery managed tables (append to managed storage) and BLMTs
(write pqs files to the customer bucket, commit them to Big Metadata).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.data.batch import RecordBatch, concat_batches
from repro.errors import (
    AccessDeniedError,
    StorageApiError,
    StreamOffsetError,
)
from repro.metastore.bigmeta import BigMetadataService
from repro.metastore.catalog import TableInfo, TableKind
from repro.objectstore.registry import StoreRegistry
from repro.security.audit import AuditLog
from repro.security.iam import IamService, Permission, Principal
from repro.simtime import SimContext
from repro.storageapi.fileutil import write_data_file
from repro.storageapi.managed import ManagedStorage

_stream_ids = itertools.count(1)
_file_ids = itertools.count(1)


class WriteStreamKind(enum.Enum):
    COMMITTED = "committed"  # visible on flush (real-time streaming)
    PENDING = "pending"  # visible at batch commit (batch semantics)


@dataclass
class AppendResult:
    offset: int
    row_count: int
    duplicate: bool = False


@dataclass
class WriteStream:
    stream_id: str
    table: TableInfo
    kind: WriteStreamKind
    principal: Principal
    next_offset: int = 0
    buffered: list[RecordBatch] = field(default_factory=list)
    buffered_rows: int = 0
    finalized: bool = False
    committed: bool = False

    @property
    def is_writable(self) -> bool:
        return not self.finalized and not self.committed


class WriteApi:
    """The Write API service endpoint for one deployment."""

    def __init__(
        self,
        bigmeta: BigMetadataService,
        managed: ManagedStorage,
        stores: StoreRegistry,
        iam: IamService,
        audit: AuditLog,
        ctx: SimContext,
        committed_flush_rows: int = 10_000,
    ) -> None:
        self.bigmeta = bigmeta
        self.managed = managed
        self.stores = stores
        self.iam = iam
        self.audit = audit
        self.ctx = ctx
        self.committed_flush_rows = committed_flush_rows

    # ------------------------------------------------------------------

    def create_write_stream(
        self,
        principal: Principal,
        table: TableInfo,
        kind: WriteStreamKind = WriteStreamKind.COMMITTED,
    ) -> WriteStream:
        if table.kind not in (TableKind.MANAGED, TableKind.BLMT):
            raise StorageApiError(
                f"write streams target managed or BLMT tables, not {table.kind.value}"
            )
        decision = self.iam.is_allowed(
            principal, Permission.TABLES_UPDATE_DATA, table.resource_name
        )
        self.audit.record(
            principal, "write_stream.create", table.resource_name,
            decision.allowed, decision.reason,
        )
        if not decision.allowed:
            raise AccessDeniedError(f"{principal} cannot write {table.table_id}")
        return WriteStream(
            stream_id=f"wstream-{next(_stream_ids):08d}",
            table=table,
            kind=kind,
            principal=principal,
        )

    def append_rows(
        self, stream: WriteStream, batch: RecordBatch, offset: int | None = None
    ) -> AppendResult:
        """Append a batch at ``offset`` (rows since stream creation).

        Exactly-once: ``offset < next`` is a duplicate retry (acked, not
        re-applied); ``offset > next`` is a gap (error); ``None`` means
        "append at the end".
        """
        if not stream.is_writable:
            raise StorageApiError(f"stream {stream.stream_id} is not writable")
        # Hazard before buffering: the exactly-once offset protocol makes a
        # caller retry of a failed append safe (duplicates are acked).
        self.ctx.faults.check("write_api.append", table=stream.table.table_id)
        if offset is None:
            offset = stream.next_offset
        if offset < stream.next_offset:
            return AppendResult(offset=offset, row_count=batch.num_rows, duplicate=True)
        if offset > stream.next_offset:
            raise StreamOffsetError(
                f"append at offset {offset} but stream is at {stream.next_offset}"
            )
        stream.buffered.append(batch)
        stream.buffered_rows += batch.num_rows
        stream.next_offset += batch.num_rows
        self.ctx.metering.count("write_api.append")
        if (
            stream.kind is WriteStreamKind.COMMITTED
            and stream.buffered_rows >= self.committed_flush_rows
        ):
            self.flush(stream)
        return AppendResult(offset=offset, row_count=batch.num_rows)

    def flush(self, stream: WriteStream) -> int:
        """Make a COMMITTED stream's buffered rows visible; returns rows
        flushed. No-op for PENDING streams (they commit via batch_commit)."""
        if stream.kind is not WriteStreamKind.COMMITTED:
            raise StorageApiError("only COMMITTED streams flush incrementally")
        rows = stream.buffered_rows
        if rows == 0:
            return 0
        self._apply(stream.table, stream.buffered, txn=None)
        stream.buffered = []
        stream.buffered_rows = 0
        return rows

    def finalize(self, stream: WriteStream) -> int:
        """Seal the stream against further appends; returns total rows."""
        if stream.kind is WriteStreamKind.COMMITTED and stream.buffered_rows:
            self.flush(stream)
        stream.finalized = True
        return stream.next_offset

    def batch_commit(self, streams: list[WriteStream]) -> int:
        """Atomically publish several finalized PENDING streams.

        All streams' rows become visible at one commit point — a
        cross-stream transaction. Returns the number of rows committed.
        """
        for stream in streams:
            if stream.kind is not WriteStreamKind.PENDING:
                raise StorageApiError("batch_commit takes PENDING streams")
            if not stream.finalized:
                raise StorageApiError(f"stream {stream.stream_id} not finalized")
            if stream.committed:
                raise StorageApiError(f"stream {stream.stream_id} already committed")
        txn = self.bigmeta.begin()
        needs_txn = False
        total_rows = 0
        for stream in streams:
            total_rows += stream.buffered_rows
            if stream.table.kind is TableKind.BLMT:
                needs_txn = True
            self._apply(stream.table, stream.buffered, txn=txn)
        if needs_txn:
            txn.commit()
        else:
            txn.abort()
        for stream in streams:
            stream.committed = True
            stream.buffered = []
            stream.buffered_rows = 0
        return total_rows

    # ------------------------------------------------------------------

    def _apply(self, table: TableInfo, batches: list[RecordBatch], txn) -> None:
        """Write buffered batches to the table's backend."""
        batches = [b for b in batches if b.num_rows]
        if not batches:
            return
        if table.kind is TableKind.MANAGED:
            if not self.managed.exists(table.table_id):
                self.managed.create(table.table_id, table.schema)
            for batch in batches:
                self.managed.append(table.table_id, batch)
            table.version += 1
            return
        # BLMT: write one pqs file and commit it to Big Metadata.
        store = self.stores.store_for(table.storage.location)
        key = f"{table.storage.prefix.rstrip('/')}/data/stream-{next(_file_ids):08d}.pqs"
        combined = concat_batches(table.schema, batches)
        # Retried ops are idempotent: the PUT rewrites the same key, and a
        # failed commit leaves Big Metadata untouched.
        entry = self.ctx.with_retry(
            "objectstore.put",
            lambda: write_data_file(
                store, table.storage.bucket, key, table.schema, [combined]
            ),
        )
        self.bigmeta.register_table(table.table_id)
        if txn is not None:
            txn.stage(table.table_id, added=[entry])
        else:
            self.ctx.with_retry(
                "bigmeta.commit",
                lambda: self.bigmeta.commit(table.table_id, added=[entry]),
            )
        table.version += 1
