"""BigQuery Storage APIs: the Read API, Write API, and Superluminal.

This is the trust boundary of the whole system (§2.2, §3.2): every byte
that leaves storage — whether consumed by the Dremel-like engine, the Spark
simulator, or a hostile client — passes through the Read API, which applies
projections, user predicates, row-level security filters, and data masking
*before* returning Arrow-like batches. External engines are trusted with
nothing.

The Write API (§2.2.2) provides multi-stream, exactly-once ingestion with
stream-level and cross-stream (batch) commit semantics.
"""

from repro.storageapi.superluminal import Superluminal
from repro.storageapi.read_api import ReadApi, ReadSession, ReadStream, SessionStats
from repro.storageapi.write_api import (
    AppendResult,
    WriteApi,
    WriteStream,
    WriteStreamKind,
)

__all__ = [
    "Superluminal",
    "ReadApi",
    "ReadSession",
    "ReadStream",
    "SessionStats",
    "AppendResult",
    "WriteApi",
    "WriteStream",
    "WriteStreamKind",
]
