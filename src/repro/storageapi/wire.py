"""ReadRows wire encoding (§3.4 future work, implemented).

    "Clients typically spend a non-trivial amount of CPU cycles on the TLS
    decryption of ReadRows payload. Dictionary and run-length encodings on
    the Arrow columnar batches can significantly reduce the amount of
    bytes that need to be sent over the wire."

The wire format reuses the pqs chunk encodings (PLAIN / DICT / DICT_RLE)
per column, so low-cardinality and sorted columns shrink dramatically
relative to the plain Arrow-like representation. ``encode_batch`` /
``decode_batch`` round-trip real bytes; sessions record both the logical
(plain) size and the encoded size so benchmarks can report the reduction.
"""

from __future__ import annotations

import struct

from repro.data.batch import RecordBatch
from repro.data.types import Schema
from repro.errors import StorageApiError
from repro.formats.pqs import _decode_chunk, _encode_chunk

_MAGIC = b"WIR1"
_U32 = struct.Struct("<I")


def encode_batch(batch: RecordBatch) -> bytes:
    """Serialize one batch with per-column dictionary/RLE compression."""
    import json

    flat = batch.decoded()
    parts = [_MAGIC]
    header = {"schema": flat.schema.to_dict(), "num_rows": flat.num_rows, "columns": []}
    payloads = []
    for i, field in enumerate(flat.schema):
        encoding, payload = _encode_chunk(flat.column_at(i))
        header["columns"].append({"encoding": encoding, "length": len(payload)})
        payloads.append(payload)
    header_bytes = json.dumps(header).encode("utf-8")
    parts.append(_U32.pack(len(header_bytes)))
    parts.append(header_bytes)
    parts.extend(payloads)
    return b"".join(parts)


def decode_batch(data: bytes) -> RecordBatch:
    """Inverse of :func:`encode_batch`."""
    import json

    if len(data) < 8 or data[:4] != _MAGIC:
        raise StorageApiError("not a ReadRows wire payload (bad magic)")
    (header_len,) = _U32.unpack_from(data, 4)
    header = json.loads(data[8 : 8 + header_len].decode("utf-8"))
    schema = Schema.from_dict(header["schema"])
    offset = 8 + header_len
    columns = []
    for field, meta in zip(schema, header["columns"]):
        payload = data[offset : offset + meta["length"]]
        offset += meta["length"]
        columns.append(_decode_chunk(field.dtype, meta["encoding"], payload))
    return RecordBatch(schema, columns)


def plain_size(batch: RecordBatch) -> int:
    """The uncompressed (Arrow-like) payload size the wire format replaces.

    Plain Arrow ships flat value buffers, so the comparison decodes any
    in-memory dictionary columns first.
    """
    return batch.decoded().nbytes()
