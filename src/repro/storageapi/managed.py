"""BigQuery managed storage: the native replicated storage tier (§2).

Managed tables live here as in-memory columnar batches. Reads charge the
engine-side scan cost but no object-store round trips — managed storage is
the fast, fully-owned substrate BigLake brings lake data up to par with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.batch import RecordBatch, concat_batches
from repro.data.types import Schema
from repro.errors import NotFoundError
from repro.simtime import MIB, SimContext


@dataclass
class _ManagedTable:
    schema: Schema
    batches: list[RecordBatch] = field(default_factory=list)
    num_rows: int = 0


class ManagedStorage:
    """In-memory columnar storage for managed tables."""

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self._tables: dict[str, _ManagedTable] = {}

    def create(self, table_id: str, schema: Schema, replace: bool = False) -> None:
        if table_id in self._tables and not replace:
            return
        self._tables[table_id] = _ManagedTable(schema=schema)

    def exists(self, table_id: str) -> bool:
        return table_id in self._tables

    def append(self, table_id: str, batch: RecordBatch) -> None:
        table = self._lookup(table_id)
        if batch.num_rows == 0:
            return
        table.batches.append(batch.decoded())
        table.num_rows += batch.num_rows

    def read(self, table_id: str) -> list[RecordBatch]:
        """All batches; charges the columnar scan cost."""
        table = self._lookup(table_id)
        nbytes = sum(b.nbytes() for b in table.batches)
        self.ctx.charge("managed.scan", (nbytes / MIB) * self.ctx.costs.scan_per_mib_ms)
        return list(table.batches)

    def read_all(self, table_id: str) -> RecordBatch:
        table = self._lookup(table_id)
        return concat_batches(table.schema, self.read(table_id))

    def truncate(self, table_id: str) -> None:
        table = self._lookup(table_id)
        table.batches.clear()
        table.num_rows = 0

    def replace_contents(self, table_id: str, batches: list[RecordBatch]) -> None:
        table = self._lookup(table_id)
        table.batches = [b.decoded() for b in batches if b.num_rows]
        table.num_rows = sum(b.num_rows for b in table.batches)

    def drop(self, table_id: str) -> None:
        self._tables.pop(table_id, None)

    def row_count(self, table_id: str) -> int:
        return self._lookup(table_id).num_rows

    def schema(self, table_id: str) -> Schema:
        return self._lookup(table_id).schema

    def size_bytes(self, table_id: str) -> int:
        return sum(b.nbytes() for b in self._lookup(table_id).batches)

    def _lookup(self, table_id: str) -> _ManagedTable:
        try:
            return self._tables[table_id]
        except KeyError:
            raise NotFoundError(f"managed table {table_id!r} not found") from None
