"""Security and governance: IAM, delegated access, fine-grained policies.

Implements the paper's governance model:

* coarse IAM (principals, roles, resource policies) — §2, §5.1;
* connection objects holding service-account credentials for delegated
  access to object stores (§3.1) — users never touch raw files;
* fine-grained controls: row-level access policies, column-level ACLs, and
  data masking (§3.2), enforced *inside* the Read API trust boundary;
* downscoped per-query credentials limiting blast radius (§5.3.1);
* an audit log for every authorization decision.
"""

from repro.security.iam import (
    AccessDecision,
    IamService,
    Permission,
    Principal,
    PrincipalKind,
    Role,
    ROLE_PERMISSIONS,
)
from repro.security.policies import (
    ColumnAcl,
    DataMaskingRule,
    MaskingKind,
    RowAccessPolicy,
    TablePolicySet,
    apply_mask_value,
)
from repro.security.connections import (
    Connection,
    ConnectionManager,
    ScopedCredential,
)
from repro.security.audit import AuditEvent, AuditLog

__all__ = [
    "AccessDecision",
    "IamService",
    "Permission",
    "Principal",
    "PrincipalKind",
    "Role",
    "ROLE_PERMISSIONS",
    "ColumnAcl",
    "DataMaskingRule",
    "MaskingKind",
    "RowAccessPolicy",
    "TablePolicySet",
    "apply_mask_value",
    "Connection",
    "ConnectionManager",
    "ScopedCredential",
    "AuditEvent",
    "AuditLog",
]
