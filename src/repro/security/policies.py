"""Fine-grained governance: row policies, column ACLs, data masking (§3.2).

Policies are *declarative* table-level metadata. Enforcement happens inside
the Storage Read API's trust boundary (``repro.storageapi.superluminal``),
never in the calling engine — so BigQuery, the Spark simulator, and a
hostile engine all see exactly the same governed view of the data.

Row-access predicates are stored as SQL text and compiled by the enforcement
layer; this module stays independent of the SQL front end.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.security.iam import Principal


class MaskingKind(enum.Enum):
    """Supported masking routines, modeled on BigQuery data-masking rules."""

    HASH = "hash"  # deterministic SHA-256 hex digest
    NULLIFY = "nullify"  # replace with NULL
    DEFAULT_VALUE = "default"  # type-appropriate default ("", 0, ...)
    LAST_FOUR = "last_four"  # keep last 4 chars, mask the rest


@dataclass(frozen=True)
class RowAccessPolicy:
    """Grantees see only rows satisfying ``filter_sql``.

    Multiple policies on a table combine per BigQuery semantics: a principal
    subject to row policies sees the union of rows admitted by the policies
    that name them; a principal named by no policy (when any policy exists)
    sees no rows.
    """

    name: str
    filter_sql: str
    grantees: frozenset[Principal]

    def applies_to(self, principal: Principal) -> bool:
        return principal in self.grantees


@dataclass(frozen=True)
class ColumnAcl:
    """Column-level access control: only ``readers`` may select the column."""

    column: str
    readers: frozenset[Principal]

    def allows(self, principal: Principal) -> bool:
        return principal in self.readers


@dataclass(frozen=True)
class DataMaskingRule:
    """Principals in ``masked_readers`` see ``column`` through the mask
    instead of being denied outright."""

    column: str
    kind: MaskingKind
    masked_readers: frozenset[Principal]

    def applies_to(self, principal: Principal) -> bool:
        return principal in self.masked_readers


def apply_mask_value(kind: MaskingKind, value: Any) -> Any:
    """Mask a single value. Vectorized masking in the Read API defers to
    this for semantics; tests compare against it."""
    if value is None:
        return None
    if kind is MaskingKind.NULLIFY:
        return None
    if kind is MaskingKind.HASH:
        payload = value if isinstance(value, bytes) else str(value).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
    if kind is MaskingKind.DEFAULT_VALUE:
        if isinstance(value, str):
            return ""
        if isinstance(value, bytes):
            return b""
        if isinstance(value, bool):
            return False
        if isinstance(value, int):
            return 0
        if isinstance(value, float):
            return 0.0
        return None
    if kind is MaskingKind.LAST_FOUR:
        text = value if isinstance(value, str) else str(value)
        if len(text) <= 4:
            return "X" * len(text)
        return "X" * (len(text) - 4) + text[-4:]
    raise ValueError(f"unknown masking kind {kind}")


@dataclass
class EffectiveAccess:
    """What one principal may see of one table, after policy resolution."""

    # SQL predicates whose union admits the visible rows; empty list with
    # row_policies_exist=False means "all rows".
    row_filters: list[str] = field(default_factory=list)
    row_policies_exist: bool = False
    # Columns the principal must not see at all.
    denied_columns: set[str] = field(default_factory=set)
    # Columns the principal sees through a mask.
    masked_columns: dict[str, MaskingKind] = field(default_factory=dict)

    @property
    def sees_no_rows(self) -> bool:
        return self.row_policies_exist and not self.row_filters


@dataclass
class TablePolicySet:
    """All fine-grained policies attached to one table."""

    row_policies: list[RowAccessPolicy] = field(default_factory=list)
    column_acls: list[ColumnAcl] = field(default_factory=list)
    masking_rules: list[DataMaskingRule] = field(default_factory=list)

    def add_row_policy(self, policy: RowAccessPolicy) -> None:
        if any(p.name == policy.name for p in self.row_policies):
            raise ValueError(f"row access policy {policy.name!r} already exists")
        self.row_policies.append(policy)

    def add_column_acl(self, acl: ColumnAcl) -> None:
        self.column_acls.append(acl)

    def add_masking_rule(self, rule: DataMaskingRule) -> None:
        self.masking_rules.append(rule)

    def resolve(self, principal: Principal) -> EffectiveAccess:
        """Compute the principal's effective access to the table.

        Masking takes precedence over column denial (a masked reader gets
        masked values rather than an error), matching BigQuery behaviour.
        """
        access = EffectiveAccess()
        if self.row_policies:
            access.row_policies_exist = True
            access.row_filters = [
                p.filter_sql for p in self.row_policies if p.applies_to(principal)
            ]
        for rule in self.masking_rules:
            if rule.applies_to(principal):
                access.masked_columns[rule.column] = rule.kind
        for acl in self.column_acls:
            if acl.column in access.masked_columns:
                continue
            if not acl.allows(principal):
                access.denied_columns.add(acl.column)
        return access

    @property
    def is_empty(self) -> bool:
        return not (self.row_policies or self.column_acls or self.masking_rules)
