"""Audit logging for authorization decisions and data access (§5.3.4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.security.iam import Principal
from repro.simtime import SimContext


@dataclass(frozen=True)
class AuditEvent:
    """One audited action: who did what to which resource, and the outcome."""

    timestamp_ms: float
    principal: Principal
    action: str
    resource: str
    allowed: bool
    detail: str = ""
    # The job whose execution triggered this event ("" outside a query);
    # correlates DATA_ACCESS rows with INFORMATION_SCHEMA.JOBS.
    job_id: str = ""


@dataclass
class AuditLog:
    """Append-only audit trail; every governance decision lands here."""

    ctx: SimContext
    events: list[AuditEvent] = field(default_factory=list)
    # Set by the engine for the duration of a statement so every decision
    # made on the job's behalf carries its job_id.
    current_job_id: str = ""

    def record(
        self,
        principal: Principal,
        action: str,
        resource: str,
        allowed: bool,
        detail: str = "",
    ) -> AuditEvent:
        event = AuditEvent(
            timestamp_ms=self.ctx.clock.now_ms,
            principal=principal,
            action=action,
            resource=resource,
            allowed=allowed,
            detail=detail,
            job_id=self.current_job_id,
        )
        self.events.append(event)
        return event

    def for_principal(self, principal: Principal) -> Iterator[AuditEvent]:
        return (e for e in self.events if e.principal == principal)

    def denials(self) -> list[AuditEvent]:
        return [e for e in self.events if not e.allowed]

    def __len__(self) -> int:
        return len(self.events)
