"""Delegated access: connections and downscoped credentials.

§3.1: BigLake tables never forward user credentials to the object store.
Instead each table references a *connection* holding a service account with
read access to the data lake; the table uses the connection both for query
processing and for background maintenance (metadata refresh, reclustering).

§5.3.1: for each query, the job server computes the superset of object paths
the query needs and mints a credential scoped down to exactly those paths,
so a compromised worker's blast radius is that query's tables only.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.errors import AccessDeniedError, InvalidCredentialError, NotFoundError
from repro.security.iam import IamService, Permission, Principal, Role
from repro.simtime import SimContext

_token_counter = itertools.count(1)


@dataclass(frozen=True)
class Connection:
    """A named connection object holding service-account credentials.

    Customers typically use one connection per data lake; many tables can
    share it (§3.1).
    """

    name: str  # e.g. "us.my-lake-connection"
    service_account: Principal

    def __post_init__(self) -> None:
        if self.service_account.kind.value != "serviceAccount":
            raise ValueError("connection credentials must be a service account")


@dataclass(frozen=True)
class ScopedCredential:
    """A short-lived credential limited to specific bucket paths.

    ``allowed_paths`` entries are ``bucket/key-prefix`` strings; a request
    for ``bucket/key`` is permitted iff some entry prefixes it.
    """

    token: str
    principal: Principal
    allowed_paths: frozenset[str]
    expires_ms: float

    def permits(self, bucket: str, key: str) -> bool:
        target = f"{bucket}/{key}"
        return any(target.startswith(p) for p in self.allowed_paths)


class ConnectionManager:
    """Registry of connections + credential minting/validation service."""

    def __init__(self, iam: IamService, ctx: SimContext) -> None:
        self._iam = iam
        self._ctx = ctx
        self._connections: dict[str, Connection] = {}
        self._live_tokens: dict[str, ScopedCredential] = {}

    # -- connection lifecycle ------------------------------------------------

    def create_connection(self, name: str) -> Connection:
        """Create a connection with a fresh service account.

        The caller must separately grant the service account storage access
        on the lake bucket (the paper's "grant the connection's service
        account read access to the object store" step).
        """
        if name in self._connections:
            raise ValueError(f"connection {name!r} already exists")
        digest = hashlib.sha1(name.encode()).hexdigest()[:10]
        sa = Principal.service_account(f"biglake-conn-{digest}@repro.iam")
        conn = Connection(name=name, service_account=sa)
        self._connections[name] = conn
        return conn

    def has_connection(self, name: str) -> bool:
        return name in self._connections

    def get_connection(self, name: str) -> Connection:
        try:
            return self._connections[name]
        except KeyError:
            raise NotFoundError(f"connection {name!r} not found") from None

    def grant_lake_access(self, conn: Connection, bucket: str, writable: bool = False) -> None:
        """Grant the connection's service account access to a bucket."""
        role = Role.STORAGE_OBJECT_ADMIN if writable else Role.STORAGE_OBJECT_VIEWER
        self._iam.grant(f"buckets/{bucket}", role, conn.service_account)

    def authorize_use(self, principal: Principal, conn: Connection) -> None:
        """Verify the querying user may *use* the connection (not the data)."""
        self._iam.require(
            principal, Permission.CONNECTIONS_USE, f"connections/{conn.name}"
        )

    # -- downscoped credentials (§5.3.1) ---------------------------------------

    def mint_scoped_credential(
        self,
        conn: Connection,
        paths: list[str],
        ttl_ms: float = 3_600_000.0,
    ) -> ScopedCredential:
        """Mint a credential for the connection's service account restricted
        to ``paths`` (``bucket/prefix`` strings).

        The connection's service account must itself have access to each
        bucket — downscoping can only narrow, never widen.
        """
        for path in paths:
            bucket = path.split("/", 1)[0]
            self._iam.require(
                conn.service_account,
                Permission.STORAGE_OBJECTS_GET,
                f"buckets/{bucket}",
            )
        token = f"scoped-{next(_token_counter):08d}"
        cred = ScopedCredential(
            token=token,
            principal=conn.service_account,
            allowed_paths=frozenset(paths),
            expires_ms=self._ctx.clock.now_ms + ttl_ms,
        )
        self._live_tokens[token] = cred
        return cred

    def validate(self, cred: ScopedCredential, bucket: str, key: str) -> None:
        """Validate a credential for a specific object access."""
        live = self._live_tokens.get(cred.token)
        if live is None or live != cred:
            raise InvalidCredentialError(f"unknown or tampered token {cred.token!r}")
        if self._ctx.clock.now_ms > cred.expires_ms:
            raise InvalidCredentialError(f"token {cred.token!r} expired")
        if not cred.permits(bucket, key):
            raise AccessDeniedError(
                f"token {cred.token!r} not scoped for {bucket}/{key}"
            )

    def revoke(self, cred: ScopedCredential) -> None:
        self._live_tokens.pop(cred.token, None)
