"""Coarse-grained IAM: principals, roles, resource policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AccessDeniedError


class PrincipalKind(enum.Enum):
    USER = "user"
    SERVICE_ACCOUNT = "serviceAccount"
    GROUP = "group"


@dataclass(frozen=True)
class Principal:
    """An identity: human user, service account, or group."""

    kind: PrincipalKind
    name: str

    @staticmethod
    def user(name: str) -> "Principal":
        return Principal(PrincipalKind.USER, name)

    @staticmethod
    def service_account(name: str) -> "Principal":
        return Principal(PrincipalKind.SERVICE_ACCOUNT, name)

    @staticmethod
    def group(name: str) -> "Principal":
        return Principal(PrincipalKind.GROUP, name)

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


class Permission(enum.Enum):
    """Fine verbs checked against resources."""

    TABLES_GET = "bigquery.tables.get"
    TABLES_GET_DATA = "bigquery.tables.getData"
    TABLES_UPDATE_DATA = "bigquery.tables.updateData"
    TABLES_CREATE = "bigquery.tables.create"
    TABLES_DELETE = "bigquery.tables.delete"
    JOBS_CREATE = "bigquery.jobs.create"
    JOBS_LIST_ALL = "bigquery.jobs.listAll"
    AUDIT_READ = "bigquery.auditLogs.read"
    MONITORING_READ = "monitoring.timeSeries.list"
    CONNECTIONS_USE = "bigquery.connections.use"
    MODELS_PREDICT = "bigquery.models.predict"
    STORAGE_OBJECTS_GET = "storage.objects.get"
    STORAGE_OBJECTS_LIST = "storage.objects.list"
    STORAGE_OBJECTS_CREATE = "storage.objects.create"


class Role(enum.Enum):
    """Bundles of permissions, modeled on BigQuery's predefined roles."""

    DATA_VIEWER = "roles/bigquery.dataViewer"
    DATA_EDITOR = "roles/bigquery.dataEditor"
    JOB_USER = "roles/bigquery.jobUser"
    CONNECTION_USER = "roles/bigquery.connectionUser"
    STORAGE_OBJECT_VIEWER = "roles/storage.objectViewer"
    STORAGE_OBJECT_ADMIN = "roles/storage.objectAdmin"
    ML_USER = "roles/bigquery.mlUser"
    ADMIN = "roles/bigquery.admin"


ROLE_PERMISSIONS: dict[Role, frozenset[Permission]] = {
    Role.DATA_VIEWER: frozenset(
        {Permission.TABLES_GET, Permission.TABLES_GET_DATA}
    ),
    Role.DATA_EDITOR: frozenset(
        {
            Permission.TABLES_GET,
            Permission.TABLES_GET_DATA,
            Permission.TABLES_UPDATE_DATA,
            Permission.TABLES_CREATE,
            Permission.TABLES_DELETE,
        }
    ),
    Role.JOB_USER: frozenset({Permission.JOBS_CREATE}),
    Role.CONNECTION_USER: frozenset({Permission.CONNECTIONS_USE}),
    Role.STORAGE_OBJECT_VIEWER: frozenset(
        {Permission.STORAGE_OBJECTS_GET, Permission.STORAGE_OBJECTS_LIST}
    ),
    Role.STORAGE_OBJECT_ADMIN: frozenset(
        {
            Permission.STORAGE_OBJECTS_GET,
            Permission.STORAGE_OBJECTS_LIST,
            Permission.STORAGE_OBJECTS_CREATE,
        }
    ),
    Role.ML_USER: frozenset({Permission.MODELS_PREDICT}),
    # Project administration: every BigQuery-side permission, plus the
    # observability verbs that widen INFORMATION_SCHEMA.JOBS to all
    # principals and open the DATA_ACCESS audit view.
    Role.ADMIN: frozenset(
        {
            Permission.TABLES_GET,
            Permission.TABLES_GET_DATA,
            Permission.TABLES_UPDATE_DATA,
            Permission.TABLES_CREATE,
            Permission.TABLES_DELETE,
            Permission.JOBS_CREATE,
            Permission.JOBS_LIST_ALL,
            Permission.AUDIT_READ,
            Permission.MONITORING_READ,
            Permission.CONNECTIONS_USE,
            Permission.MODELS_PREDICT,
        }
    ),
}


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of an authorization check, recorded in the audit log."""

    principal: Principal
    permission: Permission
    resource: str
    allowed: bool
    reason: str


@dataclass
class _Binding:
    role: Role
    members: set[Principal] = field(default_factory=set)


class IamService:
    """Resource-scoped role bindings with hierarchical resource names.

    Resources are slash-separated paths (``projects/p/datasets/d/tables/t``
    or ``buckets/b``); a binding on a prefix grants access to everything
    beneath it, like real IAM resource hierarchies.
    """

    def __init__(self) -> None:
        self._bindings: dict[str, list[_Binding]] = {}
        self._group_members: dict[Principal, set[Principal]] = {}

    def grant(self, resource: str, role: Role, principal: Principal) -> None:
        """Grant ``role`` on ``resource`` to ``principal``."""
        for binding in self._bindings.setdefault(resource, []):
            if binding.role is role:
                binding.members.add(principal)
                return
        self._bindings[resource].append(_Binding(role=role, members={principal}))

    def revoke(self, resource: str, role: Role, principal: Principal) -> None:
        for binding in self._bindings.get(resource, []):
            if binding.role is role:
                binding.members.discard(principal)

    def add_group_member(self, group: Principal, member: Principal) -> None:
        if group.kind is not PrincipalKind.GROUP:
            raise ValueError(f"{group} is not a group")
        self._group_members.setdefault(group, set()).add(member)

    def _expanded_identities(self, principal: Principal) -> set[Principal]:
        """The principal plus every group containing it (one level deep)."""
        identities = {principal}
        for group, members in self._group_members.items():
            if principal in members:
                identities.add(group)
        return identities

    def is_allowed(
        self, principal: Principal, permission: Permission, resource: str
    ) -> AccessDecision:
        """Check whether ``principal`` holds ``permission`` on ``resource``
        via a binding on the resource or any ancestor prefix."""
        identities = self._expanded_identities(principal)
        # Walk the resource and its ancestors.
        parts = resource.split("/")
        for end in range(len(parts), 0, -1):
            prefix = "/".join(parts[:end])
            for binding in self._bindings.get(prefix, []):
                if permission not in ROLE_PERMISSIONS[binding.role]:
                    continue
                if identities & binding.members:
                    return AccessDecision(
                        principal, permission, resource, True,
                        f"granted by {binding.role.value} on {prefix}",
                    )
        return AccessDecision(
            principal, permission, resource, False,
            f"no binding grants {permission.value}",
        )

    def require(
        self, principal: Principal, permission: Permission, resource: str
    ) -> AccessDecision:
        """Like :meth:`is_allowed` but raises on denial."""
        decision = self.is_allowed(principal, permission, resource)
        if not decision.allowed:
            raise AccessDeniedError(
                f"{principal} lacks {permission.value} on {resource}: {decision.reason}"
            )
        return decision
