"""Skew-aware slot-pool scheduler: per-task makespan on simulated time.

The scalar wave model (``elapsed = scan_work * waves / tasks``) assumed
perfectly even task sizes — the explicitly-flagged ROADMAP gap. This module
replaces it with a small discrete-event simulation of a Dremel-style slot
pool, run entirely on *model* time (no sim-clock advancement, no RNG of its
own, no wall clock), so the result is a pure, replayable function of its
inputs:

* **Per-stage scheduling** — each scan stage brings its own per-task cost
  estimates (per-file bytes, decode cost, cache-hit discounts from
  :meth:`~repro.storageapi.read_api.ReadApi.estimate_task_costs`). Tasks
  are placed LPT (longest processing time first); a slot that frees up
  steals the next pending task, so the schedule is the classic greedy
  list schedule. For *n* equal tasks on *s* slots the makespan reduces
  exactly to the old wave formula ``ceil(n/s) * per_task_cost``.
* **Stragglers** — the ``task.slow`` hazard point (see
  :meth:`~repro.faults.FaultInjector.slowdown`) multiplies a task's cost
  by the spec's ``factor``. Probes happen once per primary task in index
  order, so the fault stream is independent of slot count and of whether
  speculation is enabled.
* **Speculative execution** — once at least ``min_completed`` tasks have
  finished and no work is pending, any task running longer than
  ``quantile(completed durations) * threshold_multiplier`` gets a backup
  copy on a free slot. The backup runs at the task's healthy (un-slowed)
  cost and does *not* re-probe the fault injector; whichever copy finishes
  first wins and the loser is cancelled, freeing its slot. Backups only
  ever use otherwise-idle slots, so speculation can never increase the
  makespan.

The output is a :class:`StageTimeline` per stage — makespan, skew ratio
(max/mean winner duration), speculative launch/win counts, and the full
:class:`TaskRun` list that feeds ``INFORMATION_SCHEMA.JOBS_TIMELINE``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faults import FaultInjector


@dataclass(frozen=True)
class SpeculationConfig:
    """Backup-task policy (mirrors Hadoop/Spark speculative execution)."""

    enabled: bool = True
    # A task is a straggler once it has run longer than this quantile of
    # completed-task durations, times the multiplier.
    quantile: float = 0.75
    threshold_multiplier: float = 1.5
    # Never speculate before this many tasks have completed (the quantile
    # would be noise).
    min_completed: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(f"speculation quantile must be in [0, 1], got {self.quantile}")
        if self.threshold_multiplier < 1.0:
            raise ValueError("speculation threshold_multiplier must be >= 1")
        if self.min_completed < 1:
            raise ValueError("speculation min_completed must be >= 1")


@dataclass
class TaskRun:
    """One task attempt (primary or speculative backup) on one slot."""

    stage: str
    task: int
    slot: int
    start_ms: float
    end_ms: float
    cost_ms: float  # modeled runtime of this attempt (slow factor included)
    slow_factor: float = 1.0
    speculative: bool = False
    winner: bool = False
    cancelled: bool = False

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> dict:
        """JSON-friendly view (CLI determinism gate, bench reports)."""
        return {
            "stage": self.stage,
            "task": self.task,
            "slot": self.slot,
            "start_ms": round(self.start_ms, 6),
            "end_ms": round(self.end_ms, 6),
            "cost_ms": round(self.cost_ms, 6),
            "slow_factor": self.slow_factor,
            "speculative": self.speculative,
            "winner": self.winner,
            "cancelled": self.cancelled,
        }


@dataclass
class StageTimeline:
    """The scheduler's verdict for one scan stage."""

    stage: str
    slots: int
    task_count: int
    makespan_ms: float
    skew_ratio: float = 1.0
    speculative_launched: int = 0
    speculative_wins: int = 0
    runs: list[TaskRun] = field(default_factory=list)


def duration_quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class SlotScheduler:
    """Deterministic greedy-LPT slot pool with stragglers and speculation.

    ``faults`` supplies ``task.slow`` slowdown factors (None = healthy);
    ``speculation`` configures backup tasks (None = defaults, enabled).
    The scheduler never draws randomness itself and never touches the sim
    clock — every number is model time derived from the task costs.
    """

    _FINISH = 0  # event kinds; FINISH sorts before CHECK at equal times
    _CHECK = 1

    def __init__(
        self,
        slots: int,
        faults: "FaultInjector | None" = None,
        speculation: SpeculationConfig | None = None,
    ) -> None:
        self.slots = max(1, slots)
        self.faults = faults
        self.speculation = speculation or SpeculationConfig()

    def run_stage(
        self, stage: str, costs: list[float], start_ms: float = 0.0
    ) -> StageTimeline:
        """Schedule one stage's tasks; ``costs`` are healthy per-task costs."""
        n = len(costs)
        if n == 0:
            return StageTimeline(stage=stage, slots=self.slots, task_count=0, makespan_ms=0.0)

        # Straggler probes: once per task, in index order, independent of
        # slot count / speculation so the fault RNG stream is stable.
        slow = [1.0] * n
        if self.faults is not None:
            for i in range(n):
                slow[i] = self.faults.slowdown("task.slow", stage=stage, task=i)

        spec = self.speculation
        # LPT on the *estimated* (healthy) cost: the scheduler does not
        # know which tasks a fault slowed until they fail to come back.
        pending = deque(sorted(range(n), key=lambda i: (-costs[i], i)))
        free: list[int] = list(range(self.slots))
        heapq.heapify(free)
        events: list[tuple[float, int, int, object]] = []
        seq = 0
        runs: list[TaskRun] = []
        primary: dict[int, TaskRun] = {}
        backup: dict[int, TaskRun] = {}
        done: set[int] = set()
        completed: list[float] = []  # winner durations
        launched = 0
        wins = 0

        def push(at_ms: float, kind: int, payload: object) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(events, (at_ms, kind, seq, payload))

        def launch(task: int, now: float, speculative: bool) -> None:
            nonlocal launched
            slot = heapq.heappop(free)
            factor = 1.0 if speculative else slow[task]
            cost = costs[task] * factor
            run = TaskRun(
                stage=stage, task=task, slot=slot, start_ms=now,
                end_ms=now + cost, cost_ms=cost, slow_factor=factor,
                speculative=speculative,
            )
            runs.append(run)
            if speculative:
                backup[task] = run
                launched += 1
            else:
                primary[task] = run
            push(run.end_ms, self._FINISH, run)

        def assign(now: float) -> None:
            while pending and free:
                launch(pending.popleft(), now, speculative=False)

        def threshold_ms() -> float:
            return duration_quantile(completed, spec.quantile) * spec.threshold_multiplier

        def maybe_speculate(now: float) -> None:
            """Launch (or schedule checks for) backups of running stragglers."""
            if not spec.enabled or pending or len(completed) < spec.min_completed:
                return
            limit = threshold_ms()
            for task in sorted(primary):
                if not free:
                    return
                if task in done or task in backup:
                    continue
                trigger = primary[task].start_ms + limit
                if trigger <= now:
                    launch(task, now, speculative=True)
                else:
                    # Re-evaluated when it fires; duplicates are no-ops.
                    push(trigger, self._CHECK, task)

        assign(start_ms)
        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == self._CHECK:
                task = payload  # type: ignore[assignment]
                if (
                    spec.enabled and not pending and free
                    and task not in done and task not in backup
                    and len(completed) >= spec.min_completed
                ):
                    trigger = primary[task].start_ms + threshold_ms()
                    if trigger <= now:
                        launch(task, now, speculative=True)
                    else:
                        push(trigger, self._CHECK, task)
                continue
            run = payload  # type: ignore[assignment]
            if run.cancelled or run.task in done:
                continue  # stale finish event of a cancelled loser
            done.add(run.task)
            run.winner = True
            completed.append(run.duration_ms)
            heapq.heappush(free, run.slot)
            if run.speculative:
                wins += 1
            twin = primary.get(run.task) if run.speculative else backup.get(run.task)
            if twin is not None and twin is not run and not twin.cancelled:
                twin.cancelled = True
                twin.end_ms = now
                twin.cost_ms = twin.duration_ms
                heapq.heappush(free, twin.slot)
            assign(now)
            maybe_speculate(now)

        makespan = max((r.end_ms for r in runs), default=start_ms) - start_ms
        skew = 1.0
        if completed:
            mean = sum(completed) / len(completed)
            skew = (max(completed) / mean) if mean > 0 else 1.0
        return StageTimeline(
            stage=stage, slots=self.slots, task_count=n, makespan_ms=makespan,
            skew_ratio=skew, speculative_launched=launched,
            speculative_wins=wins, runs=runs,
        )


def normalize_costs(task_costs: list[float] | None, total_ms: float, tasks: int) -> list[float]:
    """Scale relative per-task estimates so they sum to the *measured*
    stage scan time — estimates set the shape, measurement sets the scale.
    Falls back to a uniform split when estimates are missing/degenerate."""
    n = max(1, tasks)
    if not task_costs or len(task_costs) != n or min(task_costs) < 0:
        return [total_ms / n] * n
    weight = sum(task_costs)
    if weight <= 0:
        return [total_ms / n] * n
    return [c * total_ms / weight for c in task_costs]
