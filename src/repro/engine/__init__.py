"""The Dremel-like distributed query engine (§2.1).

A regional query engine that plans SQL over the catalog, optimizes with
whatever physical metadata is available (partition/file pruning, statistics
-based join ordering, dynamic partition pruning), executes vectorized
operators over columnar batches, and accounts simulated elapsed time under
a slot-limited scheduler. All storage access — managed, BigLake, Object
tables — goes through the Storage Read API, so governance is identical for
the engine and for external consumers (§3.2).
"""

from repro.engine.plan import (
    AggregateNode,
    AggSpec,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    TvfNode,
    UnionAllNode,
)
from repro.engine.engine import QueryEngine, QueryResult, QueryStats

__all__ = [
    "AggregateNode",
    "AggSpec",
    "DistinctNode",
    "FilterNode",
    "JoinNode",
    "LimitNode",
    "PlanNode",
    "ProjectNode",
    "ScanNode",
    "SortNode",
    "TvfNode",
    "UnionAllNode",
    "QueryEngine",
    "QueryResult",
    "QueryStats",
]
