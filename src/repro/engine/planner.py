"""AST -> logical plan translation (the analyzer/planner)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.data.types import DataType, Field, Schema
from repro.errors import AnalysisError
from repro.metastore.catalog import Catalog, TableInfo, TableKind
from repro.sql import ast_nodes as ast
from repro.sql.expressions import AGGREGATE_FUNCTIONS, Binder, FunctionRegistry
from repro.storageapi.read_api import OBJECT_TABLE_SCHEMA

from repro.engine.plan import (
    AggregateNode,
    AggSpec,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemTableNode,
    TvfNode,
    UnionAllNode,
)

# Resolves a TVF's output schema: (tvf_name, model_path, input_schema) -> Schema.
TvfSchemaResolver = Callable[[str, tuple[str, ...], Schema | None], Schema]


@dataclass
class _AggState:
    """Aggregates and group keys discovered while rewriting expressions."""

    specs: list[AggSpec] = field(default_factory=list)
    by_signature: dict[str, str] = field(default_factory=dict)  # sig -> output name


class Planner:
    """Translates SELECT ASTs into logical plans against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        functions: FunctionRegistry | None = None,
        tvf_schema_resolver: TvfSchemaResolver | None = None,
        system_tables=None,  # repro.obs.system_tables.SystemTables
    ) -> None:
        self.catalog = catalog
        self.functions = functions or FunctionRegistry()
        self.tvf_schema_resolver = tvf_schema_resolver
        self.system_tables = system_tables

    # ------------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> PlanNode:
        plan = self._plan_query_block(select)
        if select.union_all is not None:
            other = self.plan_select(select.union_all)
            if len(other.schema) != len(plan.schema):
                raise AnalysisError("UNION ALL arms have different column counts")
            plan = UnionAllNode(inputs=[plan, other], schema=plan.schema)
        return plan

    def _plan_query_block(self, select: ast.Select) -> PlanNode:
        join_context = isinstance(select.from_item, ast.Join)
        if select.from_item is not None:
            plan = self._plan_from(select.from_item, join_context)
        else:
            plan = _one_row_plan()

        if select.where is not None:
            plan = self._plan_where(plan, select.where)

        alias_map = {
            item.alias.lower(): item.expr
            for item in select.items
            if item.alias is not None and not isinstance(item.expr, ast.Star)
        }

        group_exprs = [
            self._resolve_group_expr(g, select.items, alias_map) for g in select.group_by
        ]

        agg_state = _AggState()
        rewritten_items: list[ast.SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                rewritten_items.append(item)
            else:
                # Derive the output name before any rewriting replaces the
                # expression with synthesized ($key/$agg) references.
                alias = item.alias
                if alias is None and isinstance(item.expr, ast.ColumnRef):
                    alias = item.expr.parts[-1]
                rewritten_items.append(
                    ast.SelectItem(self._extract_aggs(item.expr, agg_state), alias)
                )
        having = (
            self._extract_aggs(self._substitute_aliases(select.having, alias_map), agg_state)
            if select.having is not None
            else None
        )
        order_items = [
            ast.OrderItem(
                self._extract_aggs(self._substitute_aliases(o.expr, alias_map), agg_state)
                if not isinstance(o.expr, ast.Literal)
                else o.expr,
                o.ascending,
            )
            for o in select.order_by
        ]

        if agg_state.specs or group_exprs:
            plan, key_names = self._plan_aggregate(plan, group_exprs, agg_state)
            # Replace group expressions appearing verbatim with key refs.
            substitutions = dict(zip(map(_expr_key, group_exprs), key_names))
            rewritten_items = [
                ast.SelectItem(self._substitute_exprs(i.expr, substitutions), i.alias)
                if not isinstance(i.expr, ast.Star)
                else i
                for i in rewritten_items
            ]
            if having is not None:
                having = self._substitute_exprs(having, substitutions)
                plan = FilterNode(child=plan, predicate=having, schema=plan.schema)
            order_items = [
                ast.OrderItem(self._substitute_exprs(o.expr, substitutions), o.ascending)
                if not isinstance(o.expr, ast.Literal)
                else o
                for o in order_items
            ]
        elif select.having is not None:
            raise AnalysisError("HAVING requires aggregation")

        plan = self._plan_projection(plan, rewritten_items, join_context)

        if select.distinct:
            plan = DistinctNode(child=plan, schema=plan.schema)

        if order_items:
            plan = self._plan_order_by(plan, order_items)

        if select.limit is not None:
            plan = LimitNode(child=plan, limit=select.limit, schema=plan.schema)
        return plan

    def _plan_where(self, plan: PlanNode, where: ast.Expr) -> PlanNode:
        """Split the WHERE conjunction: IN-subquery conjuncts become
        semi/anti joins; everything else stays a filter."""
        regular: list[ast.Expr] = []
        for conjunct in _flatten_where(where):
            subquery = _as_in_subquery(conjunct)
            if subquery is not None:
                plan = self._plan_in_subquery(plan, subquery)
            else:
                regular.append(conjunct)
        if regular:
            predicate = regular[0]
            for clause in regular[1:]:
                predicate = ast.BinaryOp("AND", predicate, clause)
            plan = FilterNode(child=plan, predicate=predicate, schema=plan.schema)
        return plan

    def _plan_in_subquery(self, outer: PlanNode, node: ast.InSubquery) -> JoinNode:
        """Lower ``x [NOT] IN (SELECT ...)`` to a semi/anti join."""
        sub_plan = self.plan_select(node.query)
        if len(sub_plan.schema) != 1:
            raise AnalysisError(
                "IN (SELECT ...) subquery must produce exactly one column"
            )
        sub_column = ast.ColumnRef((sub_plan.schema.fields[0].name,))
        return JoinNode(
            kind="ANTI" if node.negated else "SEMI",
            left=outer,
            right=sub_plan,
            schema=outer.schema,
            equi_keys=[(node.operand, sub_column)],
        )

    # -- FROM ------------------------------------------------------------

    def _plan_from(self, item: ast.FromItem, join_context: bool) -> PlanNode:
        if isinstance(item, ast.TableRef):
            return self._plan_table(item, join_context)
        if isinstance(item, ast.SubqueryRef):
            plan = self.plan_select(item.query)
            if join_context and item.alias:
                plan = _qualify(plan, item.alias)
            return plan
        if isinstance(item, ast.TvfRef):
            return self._plan_tvf(item)
        if isinstance(item, ast.Join):
            left = self._plan_from(item.left, True)
            right = self._plan_from(item.right, True)
            schema = left.schema.merge(right.schema)
            if item.kind == "CROSS":
                return JoinNode(kind="CROSS", left=left, right=right, schema=schema)
            equi, residual = _split_join_condition(item.condition)
            oriented, extra_residual = _orient_equi_keys(
                equi, left.schema, right.schema, self.functions
            )
            for clause in extra_residual:
                residual = (
                    clause if residual is None else ast.BinaryOp("AND", residual, clause)
                )
            return JoinNode(
                kind=item.kind, left=left, right=right, schema=schema,
                equi_keys=oriented, residual=residual,
            )
        raise AnalysisError(f"unsupported FROM item {item!r}")

    def _plan_table(self, ref: ast.TableRef, join_context: bool) -> PlanNode:
        if self.system_tables is not None and self.system_tables.resolves(ref.path):
            return self._plan_system_table(ref, join_context)
        table = self.catalog.resolve(ref.path)
        base = OBJECT_TABLE_SCHEMA if table.kind is TableKind.OBJECT else table.schema
        qualifier = ref.alias or ref.path[-1]
        if join_context:
            schema = base.rename_all(qualifier)
        else:
            schema = base
        return ScanNode(
            table=table,
            schema=schema,
            columns=base.names(),
            qualifier=qualifier if join_context else None,
            snapshot_ms=self._system_time_ms(ref),
        )

    def _plan_system_table(self, ref: ast.TableRef, join_context: bool) -> SystemTableNode:
        if ref.system_time is not None:
            raise AnalysisError(
                "INFORMATION_SCHEMA tables do not support FOR SYSTEM_TIME AS OF"
            )
        name = self.system_tables.normalize(ref.path)
        base = self.system_tables.schema(name)
        qualifier = ref.alias or ref.path[-1]
        schema = base.rename_all(qualifier) if join_context else base
        return SystemTableNode(
            name=name,
            schema=schema,
            base_schema=base,
            qualifier=qualifier if join_context else None,
        )

    def _system_time_ms(self, ref: ast.TableRef) -> float | None:
        """Evaluate ``FOR SYSTEM_TIME AS OF`` to a snapshot in simulated
        milliseconds (TIMESTAMP values are microseconds since epoch; the
        simulation clock counts milliseconds from the same origin)."""
        if ref.system_time is None:
            return None
        from repro.data.column import Column
        from repro.data.types import DataType as _DT
        from repro.data.batch import RecordBatch
        from repro.sql.expressions import evaluate

        bound = Binder(Schema(()), self.functions).bind(ref.system_time)
        if bound.dtype not in (_DT.TIMESTAMP, _DT.DATE):
            raise AnalysisError("FOR SYSTEM_TIME AS OF expects a TIMESTAMP")
        one_row = RecordBatch(
            Schema.of(("$dummy", _DT.INT64)), [Column(_DT.INT64, [0])]
        )
        value = evaluate(bound, one_row)[0]
        if bound.dtype is _DT.DATE:
            from repro.sql.dates import MICROS_PER_DAY

            value = value * MICROS_PER_DAY
        return value / 1000.0

    def _plan_tvf(self, ref: ast.TvfRef) -> TvfNode:
        if self.tvf_schema_resolver is None:
            raise AnalysisError(f"no handler registered for {ref.name}")
        input_plan: PlanNode | None = None
        input_table: TableInfo | None = None
        input_schema: Schema | None = None
        if ref.input_query is not None:
            input_plan = self.plan_select(ref.input_query)
            input_schema = input_plan.schema
        elif ref.input_table is not None:
            input_table = self.catalog.resolve(ref.input_table)
            input_schema = (
                OBJECT_TABLE_SCHEMA
                if input_table.kind is TableKind.OBJECT
                else input_table.schema
            )
        schema = self.tvf_schema_resolver(ref.name, ref.model, input_schema)
        return TvfNode(
            name=ref.name, model=ref.model, input_plan=input_plan,
            input_table=input_table, schema=schema, options=dict(ref.options),
        )

    # -- aggregation -------------------------------------------------------

    def _resolve_group_expr(
        self, expr: ast.Expr, items: list[ast.SelectItem], alias_map: dict
    ) -> ast.Expr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(items) or isinstance(items[index].expr, ast.Star):
                raise AnalysisError(f"GROUP BY position {expr.value} out of range")
            return items[index].expr
        return self._substitute_aliases(expr, alias_map)

    def _substitute_aliases(self, expr: ast.Expr | None, alias_map: dict) -> ast.Expr | None:
        if expr is None or not alias_map:
            return expr
        return _rewrite(expr, lambda e: (
            alias_map.get(e.parts[0].lower())
            if isinstance(e, ast.ColumnRef) and len(e.parts) == 1
            and e.parts[0].lower() in alias_map
            else None
        ))

    def _extract_aggs(self, expr: ast.Expr, state: _AggState) -> ast.Expr:
        """Replace aggregate calls with refs to synthesized columns."""

        def visit(e: ast.Expr) -> ast.Expr | None:
            if isinstance(e, ast.FunctionCall) and e.name in AGGREGATE_FUNCTIONS:
                signature = str(e)
                existing = state.by_signature.get(signature)
                if existing is not None:
                    return ast.ColumnRef((existing,))
                output = f"$agg{len(state.specs)}"
                arg = None if e.is_star else (e.args[0] if e.args else None)
                if not e.is_star and arg is None:
                    raise AnalysisError(f"{e.name}() requires an argument or *")
                state.specs.append(
                    AggSpec(func=e.name, arg=arg, output=output, distinct=e.distinct)
                )
                state.by_signature[signature] = output
                return ast.ColumnRef((output,))
            return None

        return _rewrite(expr, visit)

    def _plan_aggregate(
        self, child: PlanNode, group_exprs: list[ast.Expr], state: _AggState
    ) -> tuple[AggregateNode, list[str]]:
        binder = Binder(child.schema, self.functions)
        fields: list[Field] = []
        group_items: list[tuple[ast.Expr, str]] = []
        key_names: list[str] = []
        for i, expr in enumerate(group_exprs):
            name = f"$key{i}"
            dtype = binder.bind(expr).dtype
            fields.append(Field(name, dtype))
            group_items.append((expr, name))
            key_names.append(name)
        for spec in state.specs:
            spec.dtype = _agg_dtype(spec, binder)
            fields.append(Field(spec.output, spec.dtype))
        schema = Schema(tuple(fields))
        node = AggregateNode(
            child=child, group_items=group_items, aggregates=state.specs, schema=schema
        )
        return node, key_names

    def _substitute_exprs(self, expr: ast.Expr, substitutions: dict) -> ast.Expr:
        def visit(e: ast.Expr) -> ast.Expr | None:
            key = _expr_key(e)
            if key in substitutions:
                return ast.ColumnRef((substitutions[key],))
            return None

        return _rewrite(expr, visit)

    # -- projection / ordering -----------------------------------------------

    def _plan_projection(
        self, child: PlanNode, items: list[ast.SelectItem], join_context: bool
    ) -> ProjectNode:
        binder = Binder(child.schema, self.functions)
        out_items: list[tuple[ast.Expr, str]] = []
        fields: list[Field] = []
        used: set[str] = set()
        for i, item in enumerate(items):
            if isinstance(item.expr, ast.Star):
                for f in child.schema:
                    if f.name.startswith("$"):
                        continue
                    if item.expr.qualifier is not None and not f.name.lower().startswith(
                        item.expr.qualifier.lower() + "."
                    ):
                        continue
                    out_name = f.name.rsplit(".", 1)[-1]
                    out_name = _dedupe(out_name, used)
                    out_items.append((ast.ColumnRef((f.name,)), out_name))
                    fields.append(Field(out_name, f.dtype))
                continue
            name = item.alias or _derive_name(item.expr, i)
            name = _dedupe(name, used)
            dtype = binder.bind(item.expr).dtype
            out_items.append((item.expr, name))
            fields.append(Field(name, dtype))
        return ProjectNode(child=child, items=out_items, schema=Schema(tuple(fields)))

    def _plan_order_by(self, plan: ProjectNode, order_items: list[ast.OrderItem]) -> PlanNode:
        keys: list[tuple[ast.Expr, bool]] = []
        hidden: list[tuple[ast.Expr, str]] = []
        binder = Binder(plan.schema, self.functions)
        child_binder = Binder(plan.child.schema, self.functions)
        for i, item in enumerate(order_items):
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(plan.items):
                    raise AnalysisError(f"ORDER BY position {expr.value} out of range")
                keys.append((ast.ColumnRef((plan.items[index][1],)), item.ascending))
                continue
            try:
                binder.bind(expr)
                keys.append((expr, item.ascending))
            except AnalysisError:
                # Not expressible over the output: compute a hidden column
                # against the pre-projection schema.
                dtype = child_binder.bind(expr).dtype
                name = f"$order{i}"
                hidden.append((expr, name))
                plan = ProjectNode(
                    child=plan.child,
                    items=plan.items + [(expr, name)],
                    schema=Schema(plan.schema.fields + (Field(name, dtype),)),
                )
                binder = Binder(plan.schema, self.functions)
                keys.append((ast.ColumnRef((name,)), item.ascending))
        sorted_plan: PlanNode = SortNode(child=plan, keys=keys, schema=plan.schema)
        if hidden:
            visible = [
                (ast.ColumnRef((name,)), name)
                for name in plan.schema.names()
                if not name.startswith("$order")
            ]
            visible_schema = Schema(
                tuple(f for f in plan.schema.fields if not f.name.startswith("$order"))
            )
            sorted_plan = ProjectNode(child=sorted_plan, items=visible, schema=visible_schema)
        return sorted_plan


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _one_row_plan() -> PlanNode:
    """FROM-less SELECT: a single-row, zero-column relation."""
    from repro.engine.plan import ValuesNode

    return ValuesNode(rows=[[]], schema=Schema(()))


def _qualify(plan: PlanNode, alias: str) -> ProjectNode:
    items = [
        (ast.ColumnRef((f.name,)), f"{alias}.{f.name.rsplit('.', 1)[-1]}")
        for f in plan.schema
    ]
    schema = Schema(
        tuple(
            Field(f"{alias}.{f.name.rsplit('.', 1)[-1]}", f.dtype, f.nullable)
            for f in plan.schema
        )
    )
    return ProjectNode(child=plan, items=items, schema=schema)


def _split_join_condition(
    condition: ast.Expr | None,
) -> tuple[list[tuple[ast.Expr, ast.Expr]], ast.Expr | None]:
    """Separate equi-key conjuncts from the residual condition."""
    if condition is None:
        return [], None
    conjuncts: list[ast.Expr] = []

    def flatten(e: ast.Expr) -> None:
        if isinstance(e, ast.BinaryOp) and e.op == "AND":
            flatten(e.left)
            flatten(e.right)
        else:
            conjuncts.append(e)

    flatten(condition)
    equi: list[tuple[ast.Expr, ast.Expr]] = []
    residual: list[ast.Expr] = []
    for clause in conjuncts:
        if (
            isinstance(clause, ast.BinaryOp)
            and clause.op == "="
            and isinstance(clause.left, ast.ColumnRef)
            and isinstance(clause.right, ast.ColumnRef)
        ):
            equi.append((clause.left, clause.right))
        else:
            residual.append(clause)
    residual_expr: ast.Expr | None = None
    for clause in residual:
        residual_expr = (
            clause if residual_expr is None else ast.BinaryOp("AND", residual_expr, clause)
        )
    return equi, residual_expr


def _flatten_where(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_where(expr.left) + _flatten_where(expr.right)
    return [expr]


def _as_in_subquery(expr: ast.Expr) -> ast.InSubquery | None:
    """Recognize ``x IN (SELECT)``, ``x NOT IN (SELECT)``, and
    ``NOT (x IN (SELECT))`` conjuncts."""
    if isinstance(expr, ast.InSubquery):
        return expr
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "NOT"
        and isinstance(expr.operand, ast.InSubquery)
    ):
        inner = expr.operand
        return ast.InSubquery(inner.operand, inner.query, negated=not inner.negated)
    return None


def _orient_equi_keys(
    equi: list[tuple[ast.Expr, ast.Expr]],
    left_schema: Schema,
    right_schema: Schema,
    functions: FunctionRegistry,
) -> tuple[list[tuple[ast.Expr, ast.Expr]], list[ast.Expr]]:
    """Orient each ``a = b`` pair so the first expr binds against the left
    child and the second against the right; pairs that cannot be oriented
    (e.g. both sides reference the same child) fall back to residuals."""
    left_binder = Binder(left_schema, functions)
    right_binder = Binder(right_schema, functions)

    def binds(binder: Binder, expr: ast.Expr) -> bool:
        try:
            binder.bind(expr)
            return True
        except AnalysisError:
            return False

    oriented: list[tuple[ast.Expr, ast.Expr]] = []
    residuals: list[ast.Expr] = []
    for a, b in equi:
        if binds(left_binder, a) and binds(right_binder, b):
            oriented.append((a, b))
        elif binds(left_binder, b) and binds(right_binder, a):
            oriented.append((b, a))
        else:
            residuals.append(ast.BinaryOp("=", a, b))
    return oriented, residuals


def _rewrite(expr: ast.Expr, visit) -> ast.Expr:
    """Bottom-up rewrite: ``visit`` returns a replacement or None."""
    replacement = visit(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, visit), _rewrite(expr.right, visit))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, visit))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_rewrite(expr.operand, visit), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            _rewrite(expr.operand, visit),
            tuple(_rewrite(i, visit) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _rewrite(expr.operand, visit),
            _rewrite(expr.low, visit),
            _rewrite(expr.high, visit),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(_rewrite(expr.operand, visit), expr.pattern, expr.negated)
    if isinstance(expr, ast.Case):
        return ast.Case(
            tuple((_rewrite(c, visit), _rewrite(v, visit)) for c, v in expr.whens),
            _rewrite(expr.default, visit) if expr.default is not None else None,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(_rewrite(expr.operand, visit), expr.target_type)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(_rewrite(a, visit) for a in expr.args),
            expr.distinct,
            expr.is_star,
        )
    return expr


def _expr_key(expr: ast.Expr) -> str:
    return str(expr)


def _derive_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.parts[-1]
    return f"f{index}_"


def _dedupe(name: str, used: set[str]) -> str:
    candidate = name
    suffix = 1
    while candidate.lower() in used:
        candidate = f"{name}_{suffix}"
        suffix += 1
    used.add(candidate.lower())
    return candidate


def _agg_dtype(spec: AggSpec, binder: Binder) -> DataType:
    if spec.func == "COUNT":
        return DataType.INT64
    if spec.arg is None:
        raise AnalysisError(f"{spec.func}() requires an argument")
    arg_dtype = binder.bind(spec.arg).dtype
    if spec.func == "AVG":
        return DataType.FLOAT64
    if spec.func == "SUM":
        return arg_dtype if arg_dtype in (DataType.INT64, DataType.FLOAT64) else DataType.FLOAT64
    return arg_dtype  # MIN/MAX preserve type
