"""The query engine facade: parse -> plan -> optimize -> execute."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.data.batch import RecordBatch, concat_batches
from repro.data.types import Schema
from repro.errors import AnalysisError, QueryError
from repro.metastore.catalog import Catalog, TableKind
from repro.security.iam import Principal
from repro.sql import ast_nodes as ast
from repro.sql.expressions import FunctionRegistry
from repro.sql.parser import parse_statement
from repro.storageapi.read_api import ReadApi, SessionStats

from repro.engine.operators import ExecContext, execute_plan
from repro.engine.optimizer import optimize
from repro.engine.plan import PlanNode, ScanNode, TvfNode
from repro.engine.planner import Planner
from repro.engine.scheduler import (
    SlotScheduler,
    SpeculationConfig,
    TaskRun,
    normalize_costs,
)


@dataclass
class StageScan:
    """One plan stage's scan work: measured time + per-task estimates."""

    stage: str
    scan_ms: float
    task_costs: list[float] = field(default_factory=list)

    @property
    def tasks(self) -> int:
        return len(self.task_costs)


@dataclass
class QueryStats:
    """Accounting for one query execution (simulated time + work)."""

    planning_ms: float = 0.0
    scan_work_ms: float = 0.0
    compute_ms: float = 0.0  # join/aggregate CPU (rows processed)
    scan_tasks: int = 0
    bytes_scanned: int = 0
    rows_scanned: int = 0
    files_total: int = 0
    files_read: int = 0
    row_groups_pruned: int = 0
    dpp_applied: int = 0
    elapsed_ms: float = 0.0
    slot_ms: float = 0.0
    shuffle_partitions: int = 0  # set by finalize() from the engine config
    compute_parallelism: int = 0  # set by finalize(): min(slots, shuffle_partitions)
    retry_count: int = 0  # transient-failure retries spent on this query
    degraded: bool = False  # True when any fallback path served the query
    cache_hit_bytes: int = 0  # source bytes served from the data cache
    cache_hit: bool = False  # True when the query-result cache served this query
    # Per-stage scan accounting (one entry per scan operator); stage-less
    # callers (e.g. ML batch scoring) keep bumping scan_work_ms/scan_tasks
    # directly and are finalized under the legacy wave model.
    scan_stages: list[StageScan] = field(default_factory=list)
    # Scheduler outputs (set by finalize): per-task timeline plus skew and
    # speculation facts, surfaced on JobRecord / INFORMATION_SCHEMA.JOBS.
    task_skew: float = 1.0
    speculative_count: int = 0
    speculative_wins: int = 0
    task_timeline: list[TaskRun] = field(default_factory=list)

    def record_scan(
        self,
        session: SessionStats,
        scan_ms: float,
        tasks: int,
        stage: str | None = None,
        task_costs: list[float] | None = None,
    ) -> None:
        self.scan_work_ms += scan_ms
        self.scan_tasks += tasks
        self.bytes_scanned += session.bytes_scanned
        self.rows_scanned += session.rows_scanned
        self.files_total += session.files_total
        self.files_read += session.files_after_pruning
        self.row_groups_pruned += session.row_groups_pruned
        self.cache_hit_bytes += session.cache_hit_bytes
        if stage is not None:
            # Self-joins scan the same table twice; keep stage names unique
            # so timelines stay unambiguous.
            taken = {s.stage for s in self.scan_stages}
            name, k = stage, 2
            while name in taken:
                name = f"{stage}#{k}"
                k += 1
            self.scan_stages.append(
                StageScan(name, scan_ms, normalize_costs(task_costs, scan_ms, tasks))
            )

    @property
    def files_pruned(self) -> int:
        return self.files_total - self.files_read

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of source bytes served from the data cache."""
        total = self.cache_hit_bytes + self.bytes_scanned
        return self.cache_hit_bytes / total if total else 0.0

    def finalize(
        self,
        slots: int,
        startup_ms: float,
        shuffle_partitions: int = 8,
        faults: Any | None = None,
        speculation: SpeculationConfig | None = None,
    ) -> None:
        """Slot-limited elapsed-time model: metadata/planning work is
        serial; each scan stage's tasks run through the skew-aware slot
        scheduler (LPT + work-stealing, straggler injection, speculative
        backups) and contribute their makespan; operator compute spreads
        across shuffle partitions (bounded by slots).

        Stage-less scan work (recorded without per-task estimates, e.g. by
        ML batch scoring) still uses the legacy uniform-wave formula — for
        *n* equal tasks the scheduler's makespan reduces to exactly that,
        so the two models agree where the old one was right.
        """
        import math

        self.shuffle_partitions = shuffle_partitions
        self.compute_parallelism = max(1, min(slots, shuffle_partitions))
        compute_parallelism = self.compute_parallelism
        self.slot_ms = self.planning_ms + self.scan_work_ms + self.compute_ms
        scan_elapsed = 0.0
        self.task_timeline = []
        self.speculative_count = 0
        self.speculative_wins = 0
        winner_durations: list[float] = []
        if self.scan_stages:
            scheduler = SlotScheduler(slots, faults=faults, speculation=speculation)
            offset = startup_ms + self.planning_ms
            for stage in self.scan_stages:
                timeline = scheduler.run_stage(
                    stage.stage, stage.task_costs, start_ms=offset
                )
                offset += timeline.makespan_ms
                scan_elapsed += timeline.makespan_ms
                self.speculative_count += timeline.speculative_launched
                self.speculative_wins += timeline.speculative_wins
                self.task_timeline.extend(timeline.runs)
                winner_durations.extend(
                    r.duration_ms for r in timeline.runs if r.winner
                )
        self.task_skew = 1.0
        if winner_durations:
            mean = sum(winner_durations) / len(winner_durations)
            if mean > 0:
                self.task_skew = max(winner_durations) / mean
        # Legacy wave model for scan work recorded without a stage: 3 equal
        # tasks on 2 slots take 2 waves (2/3 of the total scan work
        # elapses), not the 1.5 "waves" plain division would claim.
        leftover_tasks = self.scan_tasks - sum(s.tasks for s in self.scan_stages)
        leftover_ms = self.scan_work_ms - sum(s.scan_ms for s in self.scan_stages)
        if leftover_ms > 1e-9:  # float residue from the += accumulation is not work
            tasks = max(1, leftover_tasks)
            waves = math.ceil(tasks / max(1, slots))
            scan_elapsed += leftover_ms * waves / tasks
        # Compute partitions occupy slots too; emit their attempts so the
        # solo timeline matches the pool's run-for-run (on an idle pool the
        # free-slot heap hands partitions 0..K-1 the identically numbered
        # slots, all starting at scan end). Skew stays scan-only.
        if self.compute_ms > 0:
            start = startup_ms + self.planning_ms + scan_elapsed
            per_partition = self.compute_ms / compute_parallelism
            for p in range(compute_parallelism):
                self.task_timeline.append(
                    TaskRun(
                        stage="compute", task=p, slot=p, start_ms=start,
                        end_ms=start + per_partition, cost_ms=per_partition,
                        winner=True,
                    )
                )
        self.elapsed_ms = (
            startup_ms
            + self.planning_ms
            + scan_elapsed
            + self.compute_ms / compute_parallelism
        )


@dataclass
class QueryResult:
    """A completed query: schema, data, stats, and the executed plan."""

    schema: Schema
    batches: list[RecordBatch]
    stats: QueryStats
    plan_text: str = ""
    rows_affected: int = 0  # set by DML statements
    cross_cloud: dict | None = None  # set by the cross-cloud planner
    # The query's span tree (repro.obs.Span) when tracing was enabled.
    trace: Any | None = None
    # The zero-duration ``scheduler.simulate`` marker span, stashed when
    # the pool (not finalize) will produce the verdict — the job queue
    # tags it once the shared-pool simulation settles.
    sched_span: Any | None = None

    @property
    def num_rows(self) -> int:
        return sum(b.num_rows for b in self.batches)

    def rows(self) -> list[tuple]:
        out: list[tuple] = []
        for batch in self.batches:
            out.extend(batch.iter_rows())
        return out

    def to_pydict(self) -> dict[str, list[Any]]:
        return concat_batches(self.schema, self.batches).to_pydict()

    def column(self, name: str) -> list[Any]:
        return self.to_pydict()[self.schema.field(name).name]

    def single_value(self) -> Any:
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise QueryError("query did not produce a single value")
        return rows[0][0]


class TvfHandler(Protocol):
    """Handler for one table-valued function family (registered by ML)."""

    def output_schema(self, model: tuple[str, ...], input_schema: Schema | None) -> Schema:
        ...

    def execute(
        self, node: TvfNode, input_batches: list[RecordBatch] | None, ctx: ExecContext
    ) -> list[RecordBatch]:
        ...


class DmlHandler(Protocol):
    """Executes DML/CTAS statements (provided by the table manager)."""

    def execute_dml(self, statement: ast.Statement, engine: "QueryEngine", principal: Principal) -> "QueryResult":
        ...


class QueryEngine:
    """A regional Dremel-like engine instance.

    Feature flags mirror the paper's ablations:

    * ``use_stats`` — planner sees Big Metadata statistics (join
      reordering); off reproduces the pre-acceleration baseline.
    * ``enable_dpp`` — dynamic partition pruning at execution time.
    * ``use_row_oriented_reader`` — the §3.4 prototype scan path.
    """

    def __init__(
        self,
        read_api: ReadApi,
        catalog: Catalog,
        location: str = "gcp/us-central1",
        name: str = "dremel",
        slots: int = 64,
        functions: FunctionRegistry | None = None,
        use_stats: bool = True,
        enable_dpp: bool = True,
        use_row_oriented_reader: bool = False,
        enable_aggregate_pushdown: bool = True,
        shuffle_partitions: int = 8,
        speculation: SpeculationConfig | None = None,
    ) -> None:
        self.read_api = read_api
        self.catalog = catalog
        self.location = location
        self.name = name
        self.slots = slots
        self.functions = functions or FunctionRegistry()
        self.use_stats = use_stats
        self.enable_dpp = enable_dpp
        self.use_row_oriented_reader = use_row_oriented_reader
        self.enable_aggregate_pushdown = enable_aggregate_pushdown
        self.shuffle_partitions = shuffle_partitions
        self.speculation = speculation or SpeculationConfig()
        self.ctx = read_api.ctx
        self._tvf_handlers: dict[str, TvfHandler] = {}
        self.dml_handler: DmlHandler | None = None
        # Platform-owned observability services (set by _wire_engine); a
        # bare engine runs fine without them — no history, and
        # INFORMATION_SCHEMA names fall through to the catalog.
        self.history = None  # repro.obs.history.JobHistory
        self.system_tables = None  # repro.obs.system_tables.SystemTables
        # The serving-layer job queue execute() submits through. Platform
        # wiring points every engine at the shared platform queue (one
        # admission-control queue + slot pool per project); bare engines
        # lazily get a private queue so execute() has a single code path.
        self.job_queue = None  # repro.serving.jobs.JobQueue
        # The platform's plan/result cache (repro.cache.plan.QueryCache);
        # a bare engine has none and simply replans every statement.
        self.query_cache = None
        # Root span of the most recent _execute_statement call (survives
        # exceptions so the queue can attach traces to failed jobs).
        self._last_root = None

    # -- registration -------------------------------------------------------

    def register_tvf(self, name: str, handler: TvfHandler) -> None:
        self._tvf_handlers[name.upper()] = handler

    def set_dml_handler(self, handler: DmlHandler) -> None:
        self.dml_handler = handler

    # -- planning helpers -----------------------------------------------------

    def _planner(self) -> Planner:
        return Planner(
            self.catalog,
            functions=self.functions,
            tvf_schema_resolver=self._tvf_schema,
            system_tables=self.system_tables,
        )

    def _tvf_schema(
        self, name: str, model: tuple[str, ...], input_schema: Schema | None
    ) -> Schema:
        handler = self._tvf_handlers.get(name.upper())
        if handler is None:
            raise AnalysisError(f"no handler registered for {name}")
        return handler.output_schema(model, input_schema)

    def stats_provider(self, scan: ScanNode) -> float | None:
        """Cardinality source for the optimizer (Big Metadata / managed)."""
        if not self.use_stats:
            return None
        table = scan.table
        if table.kind is TableKind.MANAGED:
            if self.read_api.managed.exists(table.table_id):
                return float(self.read_api.managed.row_count(table.table_id))
            return None
        if self.read_api.bigmeta.has_table(table.table_id):
            return float(self.read_api.bigmeta.table_stats(table.table_id)["num_rows"])
        return None

    def remote_location_for(self, table) -> str | None:
        """Engine location when reading a bucket outside this region."""
        if table.storage is None:
            return None
        if table.storage.location == self.location:
            return None
        return self.location

    # -- entry points ------------------------------------------------------------

    def plan(self, select: ast.Select) -> PlanNode:
        plan = self._planner().plan_select(select)
        return optimize(
            plan,
            stats_provider=self.stats_provider,
            use_stats=self.use_stats,
            aggregate_pushdown=self.enable_aggregate_pushdown,
        )

    def explain(self, sql: str) -> str:
        statement = parse_statement(sql)
        if not isinstance(statement, ast.Select):
            raise AnalysisError("EXPLAIN supports SELECT statements")
        return self.plan(statement).describe()

    def execute(
        self,
        sql_or_select: str | ast.Select,
        principal: Principal,
        *,
        snapshot_ms: float | None = None,
        use_query_cache: bool = False,
    ) -> QueryResult:
        """The single query entry point: SELECT (string or AST) and DML.

        SELECTs are planned and executed here; other statements dispatch
        to the registered DML handler. Every statement runs under a root
        ``query`` span, so ``result.trace`` (when tracing is enabled)
        holds the full cross-layer span tree, and the query metrics
        (``queries_total``, ``query_elapsed_ms``,
        ``query_bytes_scanned_total``) are recorded on the way out.

        When the engine is platform-wired, every call — including ones
        that fail — persists a :class:`~repro.obs.history.JobRecord` into
        the platform's job history, queryable afterwards through
        ``INFORMATION_SCHEMA.JOBS`` / ``JOBS_TIMELINE``. Audit events
        emitted while the statement runs carry its job id.

        Since the serving redesign this is a thin blocking wrapper over
        the async jobs API — ``submit(...).wait()`` — so a solo execute()
        is just a one-job batch on the shared slot pool and there is a
        single lifecycle/history/metrics code path for both styles.
        """
        return self.submit(
            sql_or_select, principal, snapshot_ms=snapshot_ms,
            use_query_cache=use_query_cache,
        ).wait()

    def submit(
        self,
        sql_or_select: str | ast.Select,
        principal: Principal,
        *,
        snapshot_ms: float | None = None,
        use_query_cache: bool = False,
    ):
        """``jobs.insert``: enqueue a statement, return its
        :class:`~repro.serving.jobs.QueryJob` handle (PENDING until a
        ``wait()`` drains the queue over the shared slot pool)."""
        if self.job_queue is None:
            from repro.serving.jobs import JobQueue

            self.job_queue = JobQueue(default_engine=self)
        return self.job_queue.submit(
            sql_or_select, principal, engine=self, snapshot_ms=snapshot_ms,
            use_query_cache=use_query_cache,
        )

    def _execute_statement(
        self,
        statement: ast.Statement,
        principal: Principal,
        kind: str,
        snapshot_ms: float | None = None,
        sql_text: str | None = None,
        use_query_cache: bool = False,
    ) -> QueryResult:
        """Run one already-validated statement under the root ``query``
        span — the execution half of the old execute(). Lifecycle, job
        history, and query metrics live in :class:`repro.serving.JobQueue`;
        the root span is kept on ``self._last_root`` (even on failure) so
        the queue can attach traces to failed jobs.

        ``sql_text`` (the original statement text; None when the caller
        submitted an AST) keys the plan and result caches. Plan-cache use
        is automatic; the result cache additionally requires the caller's
        ``use_query_cache=True`` opt-in.
        """
        tracer = self.ctx.tracer
        self._last_root = None
        with tracer.span(
            "query", layer="engine", engine=self.name, kind=kind
        ) as root:
            self._last_root = root
            if isinstance(statement, ast.Select):
                result = self._execute_select(
                    statement, principal, snapshot_ms, sql_text, use_query_cache
                )
            else:
                result = self.dml_handler.execute_dml(statement, self, principal)
        if tracer.enabled:
            result.trace = root
        return result

    def _execute_select(
        self,
        statement: ast.Select,
        principal: Principal,
        snapshot_ms: float | None,
        sql_text: str | None,
        use_query_cache: bool,
    ) -> QueryResult:
        """Plan (through the plan cache) and run one SELECT, serving and
        populating the query-result cache when the caller opted in."""
        cache = self.query_cache
        if cache is None or sql_text is None:
            plan = self.plan(statement)
        else:
            plan = cache.lookup_plan(sql_text, self, principal)
            if plan is None:
                plan = self.plan(statement)
                cache.store_plan(sql_text, self, principal, plan)
        result_key = None
        if use_query_cache and cache is not None and sql_text is not None:
            result_key = cache.result_key(
                sql_text, self, principal, snapshot_ms, plan
            )
            if result_key is not None:
                served = cache.lookup_result(result_key, principal)
                if served is not None:
                    schema, batches, plan_text = served
                    stats = QueryStats(cache_hit=True)
                    return QueryResult(
                        schema=schema, batches=batches, stats=stats,
                        plan_text=plan_text,
                    )
        result = self._run_plan(
            plan, principal, snapshot_ms=snapshot_ms, finalize=False
        )
        if result_key is not None:
            cache.store_result(
                result_key, result.schema, result.batches, result.plan_text
            )
        return result

    def query(
        self,
        sql: str | ast.Select,
        principal: Principal,
        snapshot_ms: float | None = None,
    ) -> QueryResult:
        """Deprecated alias for :meth:`execute`."""
        warnings.warn(
            "QueryEngine.query() is deprecated; use execute()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(sql, principal, snapshot_ms=snapshot_ms)

    def explain_analyze(
        self,
        sql: str | ast.Select,
        principal: Principal,
        *,
        snapshot_ms: float | None = None,
    ) -> str:
        """Execute ``sql`` and render its span tree with a per-layer
        self-time breakdown — deterministic across identical runs."""
        from repro.obs.trace import layer_breakdown, render_trace

        result = self.execute(sql, principal, snapshot_ms=snapshot_ms)
        if result.trace is None:
            return result.plan_text
        lines = [render_trace(result.trace), "", "layer self time:"]
        breakdown = layer_breakdown(result.trace)
        for layer in sorted(breakdown, key=lambda k: (-breakdown[k], k)):
            lines.append(f"  {layer:<12} {breakdown[layer]:12.3f} ms")
        return "\n".join(lines)

    def _run_plan(
        self,
        plan: PlanNode,
        principal: Principal,
        snapshot_ms: float | None = None,
        finalize: bool = True,
    ) -> QueryResult:
        """Execute a physical plan. With ``finalize=True`` (direct callers:
        the cross-cloud planner's regional subqueries) the single-query
        scheduler settles the elapsed-time verdict here, as it always has.
        The job queue passes ``finalize=False``: the real work still runs,
        but the schedulable shape is handed to the shared slot pool, which
        produces the verdict under multi-query contention."""
        stats = QueryStats()
        ctx = ExecContext(
            engine=self,
            principal=principal,
            stats=stats,
            dpp_enabled=self.enable_dpp,
            snapshot_ms=snapshot_ms,
        )
        batches = execute_plan(plan, ctx)
        # The scheduler runs on model time only — the span below is
        # zero-duration on the sim clock, a marker carrying the verdict.
        with self.ctx.tracer.span("scheduler.simulate", layer="scheduler") as span:
            if finalize:
                stats.finalize(
                    self.slots, self.ctx.costs.slot_startup_ms, self.shuffle_partitions,
                    faults=self.ctx.faults, speculation=self.speculation,
                )
                if stats.task_timeline:
                    span.set_tag("tasks", sum(s.tasks for s in stats.scan_stages))
                    span.set_tag("task_skew", round(stats.task_skew, 4))
                    span.set_tag("speculative", stats.speculative_count)
        if finalize:
            self._record_scheduler_metrics(stats)
        result = QueryResult(
            schema=plan.schema, batches=batches, stats=stats, plan_text=plan.describe()
        )
        if not finalize:
            result.sched_span = span
        return result

    def _record_scheduler_metrics(self, stats: QueryStats) -> None:
        if not stats.task_timeline:
            return
        metrics = self.ctx.metrics
        metrics.counter(
            "repro_scheduler_tasks_total", "scan tasks placed on the simulated slot pool"
        ).inc(sum(s.tasks for s in stats.scan_stages), engine=self.name)
        if stats.speculative_count:
            metrics.counter(
                "repro_scheduler_speculative_launched_total",
                "speculative backup tasks launched",
            ).inc(stats.speculative_count, engine=self.name)
        if stats.speculative_wins:
            metrics.counter(
                "repro_scheduler_speculative_wins_total",
                "speculative backups that beat their primary",
            ).inc(stats.speculative_wins, engine=self.name)
        metrics.gauge(
            "repro_task_skew_ratio",
            "max/mean winner task duration of the last scheduled query",
        ).set(stats.task_skew, engine=self.name)

    # -- TVF execution -------------------------------------------------------------

    def execute_tvf(self, node: TvfNode, ctx: ExecContext) -> list[RecordBatch]:
        handler = self._tvf_handlers.get(node.name.upper())
        if handler is None:
            raise AnalysisError(f"no handler registered for {node.name}")
        input_batches = None
        if node.input_plan is not None:
            input_batches = execute_plan(node.input_plan, ctx)
        return handler.execute(node, input_batches, ctx)
