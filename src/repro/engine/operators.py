"""Vectorized physical operators and the plan executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.batch import RecordBatch, batch_from_rows, concat_batches
from repro.data.column import Column
from repro.data.types import DataType, Schema
from repro.errors import ExecutionError
from repro.metastore.constraints import ColumnConstraint
from repro.sql import ast_nodes as ast
from repro.sql.expressions import Binder, evaluate, evaluate_predicate
from repro.sql.printer import strip_qualifiers, to_sql

from repro.engine.plan import (
    AggregateNode,
    AggSpec,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemTableNode,
    TvfNode,
    UnionAllNode,
    ValuesNode,
)

# Build sides larger than this skip dynamic partition pruning (the IN-set
# would be too large to be useful as a pruning predicate).
_DPP_MAX_KEYS = 10_000


def _charge_compute(ctx: "ExecContext", rows: int, us_per_row: float) -> None:
    """Record operator CPU work (drives the simulated elapsed model)."""
    if rows <= 0:
        return
    work_ms = rows * us_per_row / 1000.0
    ctx.stats.compute_ms += work_ms
    ctx.engine.ctx.clock.advance(work_ms)


@dataclass
class ExecContext:
    """Everything operators need at runtime."""

    engine: "Any"  # QueryEngine (typed loosely to avoid a cycle)
    principal: Any
    stats: Any  # QueryStats
    dpp_enabled: bool = True
    snapshot_ms: float | None = None


def execute_plan(node: PlanNode, ctx: ExecContext) -> list[RecordBatch]:
    """Execute a plan subtree, returning its batches.

    With tracing enabled each node gets an ``engine.<op>`` span whose
    sim-time duration covers the node *and* its inputs; per-layer
    breakdowns use self-time, so nested scans still attribute their IO
    to the storage layers below.
    """
    tracer = ctx.engine.ctx.tracer
    if not tracer.enabled:
        return _dispatch_plan_node(node, ctx)
    op = type(node).__name__.removesuffix("Node").lower()
    with tracer.span(f"engine.{op}", layer="engine") as span:
        batches = _dispatch_plan_node(node, ctx)
        span.set_tag("rows_out", sum(b.num_rows for b in batches))
        return batches


def _dispatch_plan_node(node: PlanNode, ctx: ExecContext) -> list[RecordBatch]:
    if isinstance(node, ScanNode):
        return _execute_scan(node, ctx)
    if isinstance(node, SystemTableNode):
        return _execute_system_table(node, ctx)
    if isinstance(node, FilterNode):
        return _execute_filter(node, ctx)
    if isinstance(node, ProjectNode):
        return _execute_project(node, ctx)
    if isinstance(node, AggregateNode):
        return _execute_aggregate(node, ctx)
    if isinstance(node, JoinNode):
        return _execute_join(node, ctx)
    if isinstance(node, SortNode):
        return _execute_sort(node, ctx)
    if isinstance(node, LimitNode):
        return _execute_limit(node, ctx)
    if isinstance(node, DistinctNode):
        return _execute_distinct(node, ctx)
    if isinstance(node, UnionAllNode):
        return _execute_union(node, ctx)
    if isinstance(node, TvfNode):
        return ctx.engine.execute_tvf(node, ctx)
    if isinstance(node, ValuesNode):
        return _execute_values(node, ctx)
    raise ExecutionError(f"cannot execute plan node {type(node).__name__}")


# --------------------------------------------------------------------------
# Scan
# --------------------------------------------------------------------------


def _execute_scan(node: ScanNode, ctx: ExecContext) -> list[RecordBatch]:
    restriction = _scan_restriction(node)
    engine = ctx.engine
    # External connectors (executor_per_stream) request a fixed executor
    # count and schedule one task per stream; the home engine keeps one
    # task per file.
    per_stream = getattr(engine, "executor_per_stream", False)
    max_streams = (getattr(engine, "scan_streams", None) or engine.slots) if per_stream else engine.slots
    t0 = engine.ctx.clock.now_ms
    session = engine.read_api.create_read_session(
        principal=ctx.principal,
        table=node.table,
        columns=node.columns,
        row_restriction=restriction,
        snapshot_ms=node.snapshot_ms or ctx.snapshot_ms,
        max_streams=max_streams,
        engine_location=engine.remote_location_for(node.table),
        use_row_oriented_reader=engine.use_row_oriented_reader,
        aggregates=node.pushed_aggregates or None,
    )
    if per_stream and hasattr(session, "serialize") and hasattr(engine.read_api, "attach"):
        # Connector handoff: executors join through the serialized wire
        # handle, never through a live session reference.
        session = engine.read_api.attach(session.serialize())
    ctx.stats.planning_ms += engine.ctx.clock.now_ms - t0
    # Per-task cost estimates for the slot scheduler, taken *before* the
    # scan runs (planning-time knowledge: file sizes + cache residency).
    # Read-api stand-ins (e.g. the Spark direct reader) may not offer them;
    # the scheduler then falls back to a uniform split.
    estimator = getattr(engine.read_api, "estimate_task_costs", None)
    task_costs = estimator(session) if estimator is not None else None
    t1 = engine.ctx.clock.now_ms
    batches: list[RecordBatch] = []
    for stream_index in range(len(session.streams)):
        batches.extend(_run_stream_task(engine, session, stream_index))
    scan_ms = engine.ctx.clock.now_ms - t1
    if per_stream:
        # One executor per stream: fold the per-file estimates into
        # per-stream task costs (estimates come out in stream order).
        tasks = max(1, len(session.streams))
        if task_costs:
            grouped, start = [], 0
            for stream in session.streams:
                stop = start + len(stream.files)
                grouped.append(sum(task_costs[start:stop]))
                start = stop
            task_costs = grouped
    else:
        tasks = max(1, session.stats.files_after_pruning)
    ctx.stats.record_scan(
        session.stats, scan_ms, tasks,
        stage=node.table.table_id, task_costs=task_costs,
    )
    current = engine.ctx.tracer.current
    if current is not None:
        current.set_tag("table", node.table.table_id)
        current.add_tag("bytes_scanned", session.stats.bytes_scanned)
    if node.pushed_aggregates:
        # Partial-aggregate rows already carry the scan's output names.
        return batches
    # Rename plain session output to the (possibly qualified) scan schema.
    out_names = node.schema.names()
    renamed = []
    for batch in batches:
        ordered = batch.select(node.columns)
        renamed.append(ordered.rename(out_names))
    return renamed


def _run_stream_task(engine, session, stream_index: int) -> list[RecordBatch]:
    """One worker task: drain a stream, with task-level retry.

    The ``engine.task`` hazard point models a worker restart killing the
    task; the retry re-runs the whole stream read. Batches are buffered
    per attempt, so a mid-stream failure never leaks duplicate rows into
    the query — and session stats are snapshotted per attempt, so the
    failed attempt's partial progress (bytes/rows counted mid-stream) is
    rolled back instead of double-counted by the re-execution.
    """
    ctx = engine.ctx

    def attempt() -> tuple[list[RecordBatch], int]:
        ctx.faults.check("engine.task", engine=engine.name, stream=stream_index)
        snap = session.stats.snapshot()
        stream = session.streams[stream_index]
        # Reads advance the stream's consumption cursor; a retried attempt
        # must rewind it with the stats or the re-run starts mid-stream.
        progress = getattr(stream, "progress_snapshot", lambda: None)()
        try:
            collected: list[RecordBatch] = []
            rows = 0
            for batch in engine.read_api.read_rows(session, stream_index):
                rows += batch.num_rows
                collected.append(batch)
        except BaseException:
            session.stats.restore(snap)
            if progress is not None:
                stream.restore_progress(progress)
            raise
        return collected, rows

    with ctx.tracer.span(
        "read_api.read_rows", layer="storageapi", stream=stream_index
    ) as span:
        collected, rows = ctx.with_retry("engine.task", attempt)
        span.set_tag("rows", rows)
    return collected


def _execute_system_table(node: SystemTableNode, ctx: ExecContext) -> list[RecordBatch]:
    """Materialize an INFORMATION_SCHEMA table under the querying principal.

    Governance (per-principal job visibility, admin-only audit access)
    lives in the provider, not here — the engine is untrusted with respect
    to observability data just as it is with table data (§3.2)."""
    engine = ctx.engine
    provider = getattr(engine, "system_tables", None)
    if provider is None:
        raise ExecutionError(
            f"INFORMATION_SCHEMA.{node.name} requires a platform-wired engine"
        )
    t0 = engine.ctx.clock.now_ms
    with engine.ctx.tracer.span(
        "system_tables.scan", layer="obs", table=node.name
    ) as span:
        # System tables read control-plane state: charge one metadata
        # lookup rather than object-store scan costs.
        engine.ctx.charge("system_tables.scan", engine.ctx.costs.bigmeta_lookup_ms)
        rows = provider.scan(node.name, ctx.principal)
        span.set_tag("rows", len(rows))
    ctx.stats.planning_ms += engine.ctx.clock.now_ms - t0
    batch = batch_from_rows(node.base_schema, rows)
    if node.schema.names() != node.base_schema.names():
        batch = batch.rename(node.schema.names())
    return [batch]


def _scan_restriction(node: ScanNode) -> str | None:
    clauses: list[str] = [
        to_sql(strip_qualifiers(f)) for f in node.pushed_filters
    ]
    clauses.extend(_constraints_to_sql(node.runtime_constraints))
    if not clauses:
        return None
    return " AND ".join(clauses)


def _constraints_to_sql(constraints) -> list[str]:
    clauses = []
    for column, constraint in constraints:
        if constraint.in_set is not None:
            rendered = ", ".join(_render_literal(v) for v in sorted(constraint.in_set, key=repr))
            clauses.append(f"{column} IN ({rendered})")
            continue
        if constraint.lo is not None:
            clauses.append(f"{column} >= {_render_literal(constraint.lo)}")
        if constraint.hi is not None:
            clauses.append(f"{column} <= {_render_literal(constraint.hi)}")
    return clauses


def _render_literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)


# --------------------------------------------------------------------------
# Row-level operators
# --------------------------------------------------------------------------


def _execute_filter(node: FilterNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    if not batches:
        return []
    bound = Binder(node.child.schema, ctx.engine.functions).bind(node.predicate)
    out = []
    for batch in batches:
        mask = evaluate_predicate(bound, batch)
        filtered = batch.filter(mask)
        if filtered.num_rows:
            out.append(filtered)
    return out


def _execute_project(node: ProjectNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    binder = Binder(node.child.schema, ctx.engine.functions)
    bound = [binder.bind(expr) for expr, _ in node.items]
    out = []
    for batch in batches:
        columns = [evaluate(b, batch) for b in bound]
        out.append(RecordBatch(node.schema, columns))
    return out


def _execute_values(node: ValuesNode, ctx: ExecContext) -> list[RecordBatch]:
    if not node.schema.fields:
        # FROM-less SELECT: one placeholder row; projections evaluate
        # literals against it.
        return [_one_row_batch()]
    binder = None
    rows = []
    for row_exprs in node.rows:
        # Plain literals (the overwhelmingly common INSERT ... VALUES case)
        # skip the bind/evaluate machinery entirely; typed literals
        # (DATE/TIMESTAMP hints) still need the binder's conversion.
        if all(isinstance(e, ast.Literal) and e.type_hint is None for e in row_exprs):
            rows.append(tuple(e.value for e in row_exprs))
            continue
        if binder is None:
            binder = Binder(Schema(()), ctx.engine.functions)
        one = _one_row_batch()
        rows.append(tuple(evaluate(binder.bind(e), one)[0] for e in row_exprs))
    return [batch_from_rows(node.schema, rows)]


def _one_row_batch() -> RecordBatch:
    schema = Schema.of(("$dummy", DataType.INT64))
    return RecordBatch(schema, [Column(DataType.INT64, [0])])


def _execute_limit(node: LimitNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    out = []
    remaining = node.limit
    for batch in batches:
        if remaining <= 0:
            break
        if batch.num_rows <= remaining:
            out.append(batch)
            remaining -= batch.num_rows
        else:
            out.append(batch.slice(0, remaining))
            remaining = 0
    return out


def _execute_union(node: UnionAllNode, ctx: ExecContext) -> list[RecordBatch]:
    out: list[RecordBatch] = []
    names = node.schema.names()
    for child in node.inputs:
        for batch in execute_plan(child, ctx):
            out.append(batch.rename(names))
    return out


# --------------------------------------------------------------------------
# Row-key factorization (shared by join / DISTINCT / GROUP BY)
#
# Multi-column keys are reduced to one int64 code per row via np.unique so
# that equal codes correspond *exactly* to key tuples that compare equal
# under the naive python semantics (NULL == NULL, NULL != any value). When
# that equivalence cannot be guaranteed — NaN values (python tuples keep
# distinct NaN objects apart, np.unique collapses them), non-comparable
# object values, or mismatched key dtypes — the helpers return None and
# the caller falls back to the retained naive row-at-a-time path, which
# doubles as the property-test reference.
# --------------------------------------------------------------------------


def _column_codes(columns: list[Column]) -> np.ndarray | None:
    """Factorize the concatenation of same-position key columns to codes.

    Valid values get codes >= 0 (equal value <=> equal code, shared across
    all the given columns); NULLs get -1. Returns None when python-tuple
    equality semantics cannot be reproduced with np.unique.
    """
    first_dtype = columns[0].dtype
    for col in columns[1:]:
        if col.dtype is not first_dtype:
            return None
    if len(columns) == 1:
        vals, valid = columns[0].values, columns[0].is_valid()
    else:
        vals = np.concatenate([c.values for c in columns])
        valid = np.concatenate([c.is_valid() for c in columns])
    codes = np.full(len(vals), -1, dtype=np.int64)
    sub = vals[valid]
    if sub.size:
        if sub.dtype.kind == "f" and np.isnan(sub).any():
            return None
        try:
            _, inverse = np.unique(sub, return_inverse=True)
        except TypeError:
            return None
        codes[valid] = inverse
    return codes


def _combine_codes(code_arrays: list[np.ndarray]) -> np.ndarray:
    """Fold per-column codes into one code per row (NULL folds in as 0).

    Each step re-factorizes the running code so magnitudes stay bounded by
    the row count — no overflow for any realistic batch."""
    combined = code_arrays[0] + 1
    for codes in code_arrays[1:]:
        if combined.size == 0:
            return combined
        c = codes + 1
        _, combined = np.unique(combined, return_inverse=True)
        combined = combined.astype(np.int64) * (int(c.max()) + 1) + c
    return combined


def _row_codes(columns: list[Column]) -> np.ndarray | None:
    """One int64 code per row for a multi-column key; None -> fall back."""
    code_arrays = []
    for col in columns:
        codes = _column_codes([col])
        if codes is None:
            return None
        code_arrays.append(codes)
    return _combine_codes(code_arrays)


def _join_key_codes(
    build_cols: list[Column], probe_cols: list[Column], build_rows: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Shared (build_codes, probe_codes) for equi-join keys; None -> naive."""
    code_arrays = []
    for bcol, pcol in zip(build_cols, probe_cols):
        codes = _column_codes([bcol, pcol])
        if codes is None:
            return None
        code_arrays.append(codes)
    combined = _combine_codes(code_arrays)
    return combined[:build_rows], combined[build_rows:]


def _hash_join_indices(
    build_codes: np.ndarray,
    probe_codes: np.ndarray,
    build_valid: np.ndarray,
    probe_valid: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized equi-join match enumeration.

    Emits (probe_indices, build_indices) in probe-major order with build
    indices ascending within each probe row — the exact order the naive
    dict-of-lists build/probe loops produce."""
    build_rows = np.flatnonzero(build_valid)
    order = np.argsort(build_codes[build_rows], kind="stable")
    sorted_codes = build_codes[build_rows][order]
    sorted_build = build_rows[order]
    probe_rows = np.flatnonzero(probe_valid)
    pcodes = probe_codes[probe_rows]
    left = np.searchsorted(sorted_codes, pcodes, side="left")
    right = np.searchsorted(sorted_codes, pcodes, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    probe_indices = np.repeat(probe_rows, counts)
    # Per-match offset into each probe row's [left, right) run of builds.
    segment_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(segment_starts, counts)
    build_indices = sorted_build[np.repeat(left, counts) + within]
    return probe_indices.astype(np.int64), build_indices.astype(np.int64)


def _hash_join_indices_naive(
    build_key_cols: list[Column],
    probe_key_cols: list[Column],
    build_valid: np.ndarray,
    probe_valid: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Retained dict-of-lists reference (fallback + property-test oracle)."""
    table: dict[tuple, list[int]] = {}
    build_key_lists = [c.to_pylist() for c in build_key_cols]
    for i in range(len(build_valid)):
        if not build_valid[i]:
            continue
        table.setdefault(tuple(lst[i] for lst in build_key_lists), []).append(i)
    probe_key_lists = [c.to_pylist() for c in probe_key_cols]
    probe_indices: list[int] = []
    build_indices: list[int] = []
    for i in range(len(probe_valid)):
        matches = (
            table.get(tuple(lst[i] for lst in probe_key_lists)) if probe_valid[i] else None
        )
        if matches:
            for j in matches:
                probe_indices.append(i)
                build_indices.append(j)
    return (
        np.asarray(probe_indices, dtype=np.int64),
        np.asarray(build_indices, dtype=np.int64),
    )


def _execute_distinct(node: DistinctNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    if not batches:
        return []
    combined = concat_batches(node.child.schema, batches)
    if combined.num_rows == 0:
        return []
    codes = _row_codes(list(combined.columns))
    if codes is None:
        return _distinct_naive(node, batches)
    _, first_index = np.unique(codes, return_index=True)
    first_index.sort()  # first-seen row order, as the naive set preserves
    return [combined.take(first_index.astype(np.int64))]


def _distinct_naive(node: DistinctNode, batches: list[RecordBatch]) -> list[RecordBatch]:
    """Retained row-at-a-time reference (fallback + property-test oracle)."""
    seen: set[tuple] = set()
    rows: list[tuple] = []
    for batch in batches:
        for row in batch.iter_rows():
            if row not in seen:
                seen.add(row)
                rows.append(row)
    if not rows:
        return []
    return [batch_from_rows(node.schema, rows)]


def _execute_sort(node: SortNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    if not batches:
        return []
    combined = concat_batches(node.child.schema, batches)
    binder = Binder(node.child.schema, ctx.engine.functions)
    key_columns = [
        (evaluate(binder.bind(expr), combined), ascending)
        for expr, ascending in node.keys
    ]

    def sort_key(i: int):
        parts = []
        for column, ascending in key_columns:
            value = column[i]
            # NULLs first ascending, last descending (BigQuery default).
            null_rank = 0 if value is None else 1
            if not ascending:
                null_rank = -null_rank
            parts.append((null_rank, _Reversed(value) if not ascending else _orderable(value)))
        return tuple(parts)

    order = sorted(range(combined.num_rows), key=sort_key)
    return [combined.take(np.asarray(order, dtype=np.int64))]


class _Reversed:
    """Wrap a value so ascending sort yields descending order."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = _orderable(value)

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _orderable(value):
    return 0 if value is None else value


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------


def _execute_aggregate(node: AggregateNode, ctx: ExecContext) -> list[RecordBatch]:
    batches = execute_plan(node.child, ctx)
    combined = concat_batches(node.child.schema, batches)
    binder = Binder(node.child.schema, ctx.engine.functions)
    n = combined.num_rows
    _charge_compute(ctx, n, ctx.engine.ctx.costs.aggregate_cpu_us_per_row)

    if node.group_items:
        key_columns = [evaluate(binder.bind(expr), combined) for expr, _ in node.group_items]
        gid, keys_in_order = _group_keys(key_columns, n)
        num_groups = len(keys_in_order)
        if num_groups == 0:
            return []
    else:
        gid = np.zeros(n, dtype=np.int64)
        keys_in_order = [()]
        num_groups = 1

    out_columns: list[Column] = []
    for j, (_, name) in enumerate(node.group_items):
        dtype = node.schema.field(name).dtype
        out_columns.append(
            Column.from_pylist(dtype, [key[j] for key in keys_in_order])
        )
    for spec in node.aggregates:
        arg = evaluate(binder.bind(spec.arg), combined) if spec.arg is not None else None
        out_columns.append(_aggregate(spec, arg, gid, num_groups, n))
    return [RecordBatch(node.schema, out_columns)]


def _group_keys(key_columns: list[Column], n: int) -> tuple[np.ndarray, list[tuple]]:
    """Materialize GROUP BY keys: per-row group ids (numbered in first-seen
    order) plus each group's key tuple, first-seen order preserved."""
    codes = _row_codes(key_columns)
    if codes is None:
        return _group_keys_naive(key_columns, n)
    _, first_index, inverse = np.unique(codes, return_index=True, return_inverse=True)
    # Rank the unique codes by first appearance so gid 0 is the first key
    # seen, exactly like the naive dict numbering.
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(first_index), dtype=np.int64)
    rank[order] = np.arange(len(first_index), dtype=np.int64)
    gid = rank[inverse.reshape(-1)]
    first_rows = first_index[order].astype(np.int64)
    rep_lists = [c.take(first_rows).to_pylist() for c in key_columns]
    keys_in_order = list(zip(*rep_lists)) if rep_lists else []
    return gid, keys_in_order


def _group_keys_naive(key_columns: list[Column], n: int) -> tuple[np.ndarray, list[tuple]]:
    """Retained row-at-a-time reference (fallback + property-test oracle)."""
    key_lists = [c.to_pylist() for c in key_columns]
    group_of: dict[tuple, int] = {}
    gid = np.empty(n, dtype=np.int64)
    keys_in_order: list[tuple] = []
    for i in range(n):
        key = tuple(lst[i] for lst in key_lists)
        g = group_of.get(key)
        if g is None:
            g = len(keys_in_order)
            group_of[key] = g
            keys_in_order.append(key)
        gid[i] = g
    return gid, keys_in_order


def _aggregate(spec: AggSpec, arg: Column | None, gid: np.ndarray, groups: int, n: int) -> Column:
    if spec.func == "COUNT":
        if arg is None:  # COUNT(*)
            counts = np.bincount(gid, minlength=groups) if n else np.zeros(groups, dtype=np.int64)
            return Column(DataType.INT64, counts.astype(np.int64))
        valid = arg.is_valid()
        if spec.distinct:
            seen: list[set] = [set() for _ in range(groups)]
            values = arg.to_pylist()
            for i in range(n):
                if valid[i]:
                    seen[gid[i]].add(values[i])
            return Column(DataType.INT64, np.asarray([len(s) for s in seen], dtype=np.int64))
        counts = np.bincount(gid[valid], minlength=groups) if n else np.zeros(groups)
        return Column(DataType.INT64, counts.astype(np.int64))

    if arg is None:
        raise ExecutionError(f"{spec.func}() requires an argument")
    valid = arg.is_valid()
    group_has_value = np.zeros(groups, dtype=bool)
    if n:
        np.logical_or.at(group_has_value, gid[valid], True)
    validity = None if bool(group_has_value.all()) else group_has_value

    if spec.func in ("SUM", "AVG"):
        values = arg.values.astype(np.float64)
        sums = (
            np.bincount(gid[valid], weights=values[valid], minlength=groups)
            if n
            else np.zeros(groups)
        )
        if spec.func == "AVG":
            counts = np.bincount(gid[valid], minlength=groups) if n else np.zeros(groups)
            with np.errstate(invalid="ignore", divide="ignore"):
                result = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            return Column(DataType.FLOAT64, result, validity)
        if spec.dtype is DataType.INT64:
            return Column(DataType.INT64, np.round(sums).astype(np.int64), validity)
        return Column(DataType.FLOAT64, sums, validity)

    if spec.func in ("MIN", "MAX"):
        if arg.dtype.is_variable_width:
            best: list[Any] = [None] * groups
            values = arg.to_pylist()
            for i in range(n):
                if not valid[i]:
                    continue
                g = gid[i]
                v = values[i]
                if best[g] is None:
                    best[g] = v
                elif spec.func == "MIN":
                    best[g] = min(best[g], v)
                else:
                    best[g] = max(best[g], v)
            return Column.from_pylist(arg.dtype, best)
        if spec.func == "MIN":
            init = np.inf
            out = np.full(groups, init, dtype=np.float64)
            if n:
                np.minimum.at(out, gid[valid], arg.values[valid].astype(np.float64))
        else:
            out = np.full(groups, -np.inf, dtype=np.float64)
            if n:
                np.maximum.at(out, gid[valid], arg.values[valid].astype(np.float64))
        out = np.where(group_has_value, out, 0.0)
        if spec.dtype in (DataType.INT64, DataType.TIMESTAMP, DataType.DATE):
            return Column(spec.dtype, out.astype(np.int64), validity)
        if spec.dtype is DataType.BOOL:
            return Column(spec.dtype, out.astype(bool), validity)
        return Column(DataType.FLOAT64, out, validity)

    raise ExecutionError(f"unknown aggregate {spec.func}")


# --------------------------------------------------------------------------
# Joins
# --------------------------------------------------------------------------


def _execute_join(node: JoinNode, ctx: ExecContext) -> list[RecordBatch]:
    if node.kind == "CROSS":
        return _execute_cross_join(node, ctx)
    if node.kind in ("SEMI", "ANTI"):
        return _execute_semi_join(node, ctx)
    if not node.equi_keys:
        # Non-equi inner join: cross join + residual filter.
        batches = _execute_cross_join(node, ctx)
        if node.residual is None:
            return batches
        bound = Binder(node.schema, ctx.engine.functions).bind(node.residual)
        return [b.filter(evaluate_predicate(bound, b)) for b in batches]

    # Decide build/probe by estimated size, then build first so dynamic
    # partition pruning can inform the probe-side scan (§3.4).
    from repro.engine.optimizer import estimate_rows

    stats_provider = ctx.engine.stats_provider
    left_estimate = estimate_rows(node.left, stats_provider)
    right_estimate = estimate_rows(node.right, stats_provider)
    build_is_left = left_estimate <= right_estimate
    if node.kind == "LEFT":
        build_is_left = False  # preserve all left rows: probe with left

    build_node = node.left if build_is_left else node.right
    probe_node = node.right if build_is_left else node.left
    build_keys = [l if build_is_left else r for l, r in node.equi_keys]
    probe_keys = [r if build_is_left else l for l, r in node.equi_keys]

    build_batches = execute_plan(build_node, ctx)
    build = concat_batches(build_node.schema, build_batches)
    build_binder = Binder(build_node.schema, ctx.engine.functions)
    build_key_cols = [evaluate(build_binder.bind(k), build) for k in build_keys]
    _charge_compute(ctx, build.num_rows, ctx.engine.ctx.costs.join_cpu_us_per_row)

    if ctx.dpp_enabled and node.kind == "INNER":
        _apply_dynamic_partition_pruning(probe_node, probe_keys, build_key_cols, ctx)

    probe_batches = execute_plan(probe_node, ctx)
    probe = concat_batches(probe_node.schema, probe_batches)
    probe_binder = Binder(probe_node.schema, ctx.engine.functions)
    probe_key_cols = [evaluate(probe_binder.bind(k), probe) for k in probe_keys]
    _charge_compute(ctx, probe.num_rows, ctx.engine.ctx.costs.join_cpu_us_per_row)

    # Enumerate matches: factorize the keys to shared int codes and group
    # the build side with a stable argsort (dict-of-lists retained as the
    # naive fallback for key types np.unique cannot order faithfully).
    build_valid = np.ones(build.num_rows, dtype=bool)
    for col in build_key_cols:
        build_valid &= col.is_valid()
    probe_valid = np.ones(probe.num_rows, dtype=bool)
    for col in probe_key_cols:
        probe_valid &= col.is_valid()
    shared = _join_key_codes(build_key_cols, probe_key_cols, build.num_rows)
    if shared is not None:
        build_codes, probe_codes = shared
        probe_idx_array, build_idx_array = _hash_join_indices(
            build_codes, probe_codes, build_valid, probe_valid
        )
    else:
        probe_idx_array, build_idx_array = _hash_join_indices_naive(
            build_key_cols, probe_key_cols, build_valid, probe_valid
        )

    probe_taken = probe.take(probe_idx_array)
    build_taken = build.take(build_idx_array)
    if build_is_left:
        joined = _concat_columns(node.schema, build_taken, probe_taken)
    else:
        joined = _concat_columns(node.schema, probe_taken, build_taken)

    if node.residual is not None and joined.num_rows:
        bound = Binder(node.schema, ctx.engine.functions).bind(node.residual)
        keep = evaluate_predicate(bound, joined)
        joined = joined.filter(keep)
        probe_idx_array = probe_idx_array[keep]

    results = [joined] if joined.num_rows else []
    if node.kind == "LEFT":
        # Probe rows with no *surviving* match get NULL-extended output.
        matched = np.zeros(probe.num_rows, dtype=bool)
        matched[probe_idx_array] = True
        unmatched_probe = np.flatnonzero(~matched)
    else:
        unmatched_probe = np.empty(0, dtype=np.int64)
    if node.kind == "LEFT" and unmatched_probe.size:
        left_rows = probe.take(unmatched_probe.astype(np.int64))
        null_right = RecordBatch(
            build_node.schema,
            [Column.nulls(f.dtype, left_rows.num_rows) for f in build_node.schema],
        )
        results.append(_concat_columns(node.schema, left_rows, null_right))
    return results


def _apply_dynamic_partition_pruning(
    probe_node: PlanNode,
    probe_keys: list[ast.Expr],
    build_key_cols: list[Column],
    ctx: ExecContext,
) -> None:
    """Feed distinct build-side keys into the probe scan as IN constraints.

    This is the optimization the read-session statistics unlock for
    snowflake joins (§3.4): the probe scan's file pruning sees the concrete
    dimension keys instead of scanning every partition.
    """
    for key_expr, build_col in zip(probe_keys, build_key_cols):
        if not isinstance(key_expr, ast.ColumnRef):
            continue
        column = key_expr.parts[-1]
        # The probe side may be a join subtree whose fact scan has not
        # executed yet; locate the (unique) scan owning the key column.
        scan = _find_scan_for_column(probe_node, column)
        if scan is None:
            continue
        values = {v for v in build_col.to_pylist() if v is not None}
        if not values or len(values) > _DPP_MAX_KEYS:
            continue
        scan.runtime_constraints.add(column, ColumnConstraint(in_set=frozenset(values)))
        ctx.stats.dpp_applied += 1


def _unwrap_scan(node: PlanNode) -> ScanNode | None:
    if isinstance(node, ScanNode):
        return node
    if isinstance(node, FilterNode):
        return _unwrap_scan(node.child)
    return None


def _find_scan_for_column(node: PlanNode, column: str) -> ScanNode | None:
    """The unique un-executed scan (through filters and inner joins) whose
    base table carries ``column`` — the DPP injection target."""
    if isinstance(node, ScanNode):
        if node.table.schema.has_field(column):
            return node
        return None
    if isinstance(node, FilterNode):
        return _find_scan_for_column(node.child, column)
    if isinstance(node, JoinNode) and node.kind == "INNER":
        left = _find_scan_for_column(node.left, column)
        right = _find_scan_for_column(node.right, column)
        if left is not None and right is not None:
            return None  # ambiguous: refuse to prune
        return left or right
    return None


def _execute_semi_join(node: JoinNode, ctx: ExecContext) -> list[RecordBatch]:
    """SEMI/ANTI join for IN / NOT IN subqueries.

    The subquery (right side) builds first so its keys can dynamically
    prune the probe scan, like any other build side. NOT IN follows SQL
    null semantics: a NULL anywhere in the subquery result means no probe
    row can pass, and probe rows with NULL keys never qualify.
    """
    build_node, probe_node = node.right, node.left
    probe_keys = [l for l, _ in node.equi_keys]
    build_keys = [r for _, r in node.equi_keys]

    build_batches = execute_plan(build_node, ctx)
    build = concat_batches(build_node.schema, build_batches)
    build_binder = Binder(build_node.schema, ctx.engine.functions)
    build_key_cols = [evaluate(build_binder.bind(k), build) for k in build_keys]
    _charge_compute(ctx, build.num_rows, ctx.engine.ctx.costs.join_cpu_us_per_row)

    build_has_null = any(c.null_count() > 0 for c in build_key_cols)
    if node.kind == "ANTI" and build_has_null:
        return []  # NOT IN over a set containing NULL matches nothing

    if ctx.dpp_enabled and node.kind == "SEMI":
        # Pruning to the build keys is only sound for SEMI: an ANTI join
        # needs precisely the non-matching rows.
        _apply_dynamic_partition_pruning(probe_node, probe_keys, build_key_cols, ctx)

    probe_batches = execute_plan(probe_node, ctx)
    probe = concat_batches(probe_node.schema, probe_batches)
    probe_binder = Binder(probe_node.schema, ctx.engine.functions)
    probe_key_cols = [evaluate(probe_binder.bind(k), probe) for k in probe_keys]
    _charge_compute(ctx, probe.num_rows, ctx.engine.ctx.costs.join_cpu_us_per_row)

    build_valid = np.ones(build.num_rows, dtype=bool)
    for col in build_key_cols:
        build_valid &= col.is_valid()
    probe_valid = np.ones(probe.num_rows, dtype=bool)
    for col in probe_key_cols:
        probe_valid &= col.is_valid()
    shared = _join_key_codes(build_key_cols, probe_key_cols, build.num_rows)
    if shared is not None:
        build_codes, probe_codes = shared
        in_set = np.isin(probe_codes, build_codes[build_valid])
        if node.kind == "SEMI":
            keep = probe_valid & in_set
        else:
            keep = probe_valid & ~in_set
    else:
        keep = _semi_join_keep_naive(
            build_key_cols, probe_key_cols, probe.num_rows, node.kind
        )
    result = probe.filter(keep)
    return [result] if result.num_rows else []


def _semi_join_keep_naive(
    build_key_cols: list[Column],
    probe_key_cols: list[Column],
    probe_rows: int,
    kind: str,
) -> np.ndarray:
    """Retained row-at-a-time reference (fallback + property-test oracle)."""
    key_set: set[tuple] = set()
    build_lists = [c.to_pylist() for c in build_key_cols]
    for i in range(len(build_lists[0]) if build_lists else 0):
        key = tuple(lst[i] for lst in build_lists)
        if None not in key:
            key_set.add(key)
    probe_lists = [c.to_pylist() for c in probe_key_cols]
    keep = np.zeros(probe_rows, dtype=bool)
    for i in range(probe_rows):
        key = tuple(lst[i] for lst in probe_lists)
        if None in key:
            continue  # NULL keys match nothing in either mode
        matched = key in key_set
        keep[i] = matched if kind == "SEMI" else not matched
    return keep


def _execute_cross_join(node: JoinNode, ctx: ExecContext) -> list[RecordBatch]:
    left = concat_batches(node.left.schema, execute_plan(node.left, ctx))
    right = concat_batches(node.right.schema, execute_plan(node.right, ctx))
    if left.num_rows == 0 or right.num_rows == 0:
        return []
    left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
    right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
    return [
        _concat_columns(node.schema, left.take(left_idx), right.take(right_idx))
    ]


def _concat_columns(schema: Schema, left: RecordBatch, right: RecordBatch) -> RecordBatch:
    return RecordBatch(schema, list(left.columns) + list(right.columns))
