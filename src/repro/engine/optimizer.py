"""Plan rewrites: filter pushdown, column pruning, stats-based join order.

These are the optimizations the paper attributes its performance results
to: pushing predicates into Read API sessions so partition/file pruning can
act on them (§3.3), pruning projections, and — when table statistics are
available from Big Metadata (§3.4) — reordering joins by estimated
cardinality. Dynamic partition pruning happens at execution time in
:mod:`repro.engine.operators`.
"""

from __future__ import annotations

from typing import Callable

from repro.data.types import Schema
from repro.errors import AnalysisError
from repro.sql import ast_nodes as ast
from repro.sql.expressions import Binder, collect_column_refs

from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    TvfNode,
    UnionAllNode,
    ValuesNode,
)

# (scan) -> estimated row count, or None when unknown.
StatsProvider = Callable[[ScanNode], float | None]

_DEFAULT_ROWS = 1_000_000.0
_FILTER_SELECTIVITY = 0.2


def optimize(
    plan: PlanNode,
    stats_provider: StatsProvider | None = None,
    use_stats: bool = False,
    aggregate_pushdown: bool = True,
) -> PlanNode:
    """Apply the rewrite pipeline and return the optimized plan."""
    plan = push_filters(plan)
    if use_stats and stats_provider is not None:
        plan = reorder_joins(plan, stats_provider)
    plan = prune_columns(plan)
    if aggregate_pushdown:
        plan = push_aggregates(plan)
    return plan


# --------------------------------------------------------------------------
# Filter pushdown
# --------------------------------------------------------------------------


def push_filters(plan: PlanNode) -> PlanNode:
    """Push WHERE conjuncts toward (and into) the scans that can answer
    them. Conjuncts absorbed by a scan ride in the read session's row
    restriction, where they drive partition/file/row-group pruning."""
    if isinstance(plan, FilterNode):
        child = push_filters(plan.child)
        remaining: list[ast.Expr] = []
        for conjunct in _flatten_and(plan.predicate):
            if not _try_push(child, conjunct):
                remaining.append(conjunct)
        if not remaining:
            return child
        return FilterNode(child=child, predicate=_join_and(remaining), schema=child.schema)
    for i, node in enumerate(plan.children()):
        _replace_child(plan, i, push_filters(node))
    return plan


def _try_push(node: PlanNode, conjunct: ast.Expr) -> bool:
    refs = collect_column_refs(conjunct)
    if isinstance(node, ScanNode):
        if _binds(node.schema, refs):
            node.pushed_filters.append(conjunct)
            return True
        return False
    if isinstance(node, FilterNode):
        return _try_push(node.child, conjunct)
    if isinstance(node, JoinNode):
        if node.kind == "INNER" or node.kind == "CROSS":
            sides = [node.left, node.right]
        elif node.kind in ("LEFT", "SEMI", "ANTI"):
            sides = [node.left]  # pushing right would change semantics
        else:
            sides = []
        for side in sides:
            if _binds(side.schema, refs) and _try_push(side, conjunct):
                return True
        # Bindable on one side but not absorbable by a scan: insert a filter.
        for i, side in enumerate(sides):
            if _binds(side.schema, refs):
                wrapped = FilterNode(child=side, predicate=conjunct, schema=side.schema)
                if side is node.left:
                    node.left = wrapped
                else:
                    node.right = wrapped
                return True
        return False
    return False


def _binds(schema: Schema, refs: set[str]) -> bool:
    binder = Binder(schema)
    for name in refs:
        try:
            binder.bind_column(name)
        except AnalysisError:
            return False
    return True


def _flatten_and(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _join_and(conjuncts: list[ast.Expr]) -> ast.Expr:
    expr = conjuncts[0]
    for clause in conjuncts[1:]:
        expr = ast.BinaryOp("AND", expr, clause)
    return expr


# --------------------------------------------------------------------------
# Column pruning
# --------------------------------------------------------------------------


def prune_columns(plan: PlanNode) -> PlanNode:
    """Shrink every scan to the columns referenced above it."""
    required = _collect_required_refs(plan)
    _apply_pruning(plan, required)
    _refresh_schemas(plan)
    return plan


def _refresh_schemas(node: PlanNode) -> None:
    """Recompute pass-through schemas bottom-up after scans shrank."""
    for child in node.children():
        _refresh_schemas(child)
    if isinstance(node, JoinNode):
        if node.kind in ("SEMI", "ANTI"):
            node.schema = node.left.schema
        else:
            node.schema = node.left.schema.merge(node.right.schema)
    elif isinstance(node, (FilterNode, SortNode, LimitNode, DistinctNode)):
        node.schema = node.child.schema


def _collect_required_refs(plan: PlanNode) -> set[str]:
    refs: set[str] = set()

    def walk(node: PlanNode) -> None:
        for expr in _node_exprs(node):
            refs.update(collect_column_refs(expr))
        if isinstance(node, ScanNode):
            return
        for child in node.children():
            walk(child)
        if isinstance(node, TvfNode) and node.input_plan is None:
            return

    walk(plan)
    return {r.lower() for r in refs}


def _node_exprs(node: PlanNode) -> list[ast.Expr]:
    if isinstance(node, FilterNode):
        return [node.predicate]
    if isinstance(node, ProjectNode):
        return [e for e, _ in node.items]
    if isinstance(node, AggregateNode):
        exprs = [e for e, _ in node.group_items]
        exprs.extend(s.arg for s in node.aggregates if s.arg is not None)
        return exprs
    if isinstance(node, JoinNode):
        exprs = [l for l, _ in node.equi_keys] + [r for _, r in node.equi_keys]
        if node.residual is not None:
            exprs.append(node.residual)
        return exprs
    if isinstance(node, SortNode):
        return [e for e, _ in node.keys]
    return []


def _apply_pruning(node: PlanNode, required: set[str]) -> None:
    if isinstance(node, ScanNode):
        keep: list[str] = []
        for field in node.schema:
            base = field.name.rsplit(".", 1)[-1].lower()
            qualified = field.name.lower()
            if base in required or qualified in required or any(
                r.endswith("." + base) for r in required
            ):
                keep.append(base)
        if not keep:
            keep = [node.schema.fields[0].name.rsplit(".", 1)[-1].lower()]
        base_names = [c for c in node.columns if c.lower() in keep]
        node.columns = base_names
        kept_fields = tuple(
            f for f in node.schema.fields
            if f.name.rsplit(".", 1)[-1].lower() in {c.lower() for c in base_names}
        )
        node.schema = Schema(kept_fields)
        return
    for child in node.children():
        _apply_pruning(child, required)


# --------------------------------------------------------------------------
# Aggregate pushdown (§3.4 future work)
# --------------------------------------------------------------------------

_PUSHABLE_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX"}


def push_aggregates(plan: PlanNode) -> PlanNode:
    """Push group-less MIN/MAX/SUM/COUNT into the Read API session.

    The scan then returns one partial row per stream (computed server-side
    by Superluminal, after governance) and a residual aggregate combines
    the partials — shrinking the ReadRows payload to a handful of values.
    """
    if isinstance(plan, AggregateNode):
        rewritten = _try_push_aggregate(plan)
        if rewritten is not None:
            return rewritten
    for i, child in enumerate(plan.children()):
        _replace_child(plan, i, push_aggregates(child))
    return plan


def _try_push_aggregate(node: AggregateNode) -> AggregateNode | None:
    from repro.data.types import Field, Schema as _Schema
    from repro.engine.plan import AggSpec

    if node.group_items or not isinstance(node.child, ScanNode):
        return None
    scan = node.child
    pushed: list[tuple[str, str | None, str]] = []
    needed_columns: set[str] = set()
    for spec in node.aggregates:
        if spec.func not in _PUSHABLE_AGGREGATES or spec.distinct:
            return None
        if spec.arg is None:
            pushed.append((spec.func, None, spec.output))
            continue
        if not isinstance(spec.arg, ast.ColumnRef):
            return None
        base = spec.arg.parts[-1]
        if not scan.table.schema.has_field(base):
            return None
        column_name = scan.table.schema.field(base).name
        needed_columns.add(column_name)
        pushed.append((spec.func, column_name, spec.output))
    if not pushed:
        return None
    scan.pushed_aggregates = pushed
    scan.columns = sorted(needed_columns) or scan.columns[:1]
    partial_fields = []
    combine_specs = []
    for spec, (func, column, output) in zip(node.aggregates, pushed):
        partial_dtype = spec.dtype
        partial_fields.append(Field(output, partial_dtype))
        combine_func = "SUM" if func == "COUNT" else func
        combine_specs.append(
            AggSpec(
                func=combine_func,
                arg=ast.ColumnRef((output,)),
                output=spec.output,
                dtype=spec.dtype,
            )
        )
    scan.schema = _Schema(tuple(partial_fields))
    return AggregateNode(
        child=scan, group_items=[], aggregates=combine_specs, schema=node.schema
    )


# --------------------------------------------------------------------------
# Join reordering (requires statistics, §3.4)
# --------------------------------------------------------------------------


def reorder_joins(plan: PlanNode, stats_provider: StatsProvider) -> PlanNode:
    """Reorder maximal inner-join chains left-deep by ascending estimated
    cardinality, preferring connected (non-cross) joins."""
    if isinstance(plan, JoinNode) and plan.kind == "INNER":
        relations, conditions, residuals = _collect_join_chain(plan)
        if len(relations) > 2:
            ordered = _order_relations(relations, conditions, stats_provider)
            rebuilt = _rebuild_left_deep(ordered, conditions)
            for residual in residuals:
                rebuilt = FilterNode(child=rebuilt, predicate=residual, schema=rebuilt.schema)
            # Recurse into the (non-join) leaves.
            return rebuilt
    for i, child in enumerate(plan.children()):
        _replace_child(plan, i, reorder_joins(child, stats_provider))
    return plan


def _collect_join_chain(
    node: PlanNode,
) -> tuple[list[PlanNode], list[tuple[ast.Expr, ast.Expr]], list[ast.Expr]]:
    relations: list[PlanNode] = []
    conditions: list[tuple[ast.Expr, ast.Expr]] = []
    residuals: list[ast.Expr] = []

    def walk(n: PlanNode) -> None:
        if isinstance(n, JoinNode) and n.kind == "INNER":
            walk(n.left)
            walk(n.right)
            conditions.extend(n.equi_keys)
            if n.residual is not None:
                residuals.append(n.residual)
        else:
            relations.append(n)

    walk(node)
    return relations, conditions, residuals


def estimate_rows(node: PlanNode, stats_provider: StatsProvider) -> float:
    """Cardinality estimate for a relation subtree."""
    if isinstance(node, ScanNode):
        base = stats_provider(node)
        if base is None:
            base = _DEFAULT_ROWS
        # Each pushed conjunct shrinks the relation.
        return max(1.0, base * (_FILTER_SELECTIVITY ** len(node.pushed_filters)))
    if isinstance(node, FilterNode):
        return max(1.0, estimate_rows(node.child, stats_provider) * _FILTER_SELECTIVITY)
    if isinstance(node, (ProjectNode, SortNode, DistinctNode)):
        return estimate_rows(node.child, stats_provider)
    if isinstance(node, LimitNode):
        return min(float(node.limit), estimate_rows(node.child, stats_provider))
    if isinstance(node, AggregateNode):
        return max(1.0, estimate_rows(node.child, stats_provider) * 0.1)
    if isinstance(node, JoinNode):
        return max(
            estimate_rows(node.left, stats_provider),
            estimate_rows(node.right, stats_provider),
        )
    if isinstance(node, UnionAllNode):
        return sum(estimate_rows(c, stats_provider) for c in node.inputs)
    if isinstance(node, ValuesNode):
        return float(len(node.rows))
    return _DEFAULT_ROWS


def _order_relations(
    relations: list[PlanNode],
    conditions: list[tuple[ast.Expr, ast.Expr]],
    stats_provider: StatsProvider,
) -> list[PlanNode]:
    remaining = list(relations)
    remaining.sort(key=lambda r: estimate_rows(r, stats_provider))
    ordered = [remaining.pop(0)]
    while remaining:
        joined_schema_names = set()
        for rel in ordered:
            joined_schema_names.update(f.name.lower() for f in rel.schema)
        # Prefer the smallest relation connected to the joined set.
        chosen_index = None
        for i, rel in enumerate(remaining):
            if _connected(rel, joined_schema_names, conditions):
                chosen_index = i
                break
        if chosen_index is None:
            chosen_index = 0  # unavoidable cross join
        ordered.append(remaining.pop(chosen_index))
    return ordered


def _connected(
    relation: PlanNode, joined_names: set[str], conditions: list[tuple[ast.Expr, ast.Expr]]
) -> bool:
    rel_names = {f.name.lower() for f in relation.schema}
    for left, right in conditions:
        l, r = str(left).lower(), str(right).lower()
        if (l in rel_names and r in joined_names) or (r in rel_names and l in joined_names):
            return True
    return False


def _rebuild_left_deep(
    ordered: list[PlanNode], conditions: list[tuple[ast.Expr, ast.Expr]]
) -> PlanNode:
    used = [False] * len(conditions)
    plan = ordered[0]
    for rel in ordered[1:]:
        available = {f.name.lower() for f in plan.schema}
        incoming = {f.name.lower() for f in rel.schema}
        keys: list[tuple[ast.Expr, ast.Expr]] = []
        for i, (left, right) in enumerate(conditions):
            if used[i]:
                continue
            l, r = str(left).lower(), str(right).lower()
            if l in available and r in incoming:
                keys.append((left, right))
                used[i] = True
            elif r in available and l in incoming:
                keys.append((right, left))
                used[i] = True
        plan = JoinNode(
            kind="INNER" if keys else "CROSS",
            left=plan,
            right=rel,
            schema=plan.schema.merge(rel.schema),
            equi_keys=keys,
        )
    # Conditions spanning relations joined earlier become residual filters.
    for i, (left, right) in enumerate(conditions):
        if not used[i]:
            plan = FilterNode(
                child=plan,
                predicate=ast.BinaryOp("=", left, right),
                schema=plan.schema,
            )
    return plan


# --------------------------------------------------------------------------


def _replace_child(parent: PlanNode, index: int, new_child: PlanNode) -> None:
    if isinstance(parent, (FilterNode, ProjectNode, AggregateNode, SortNode, LimitNode, DistinctNode)):
        parent.child = new_child
        return
    if isinstance(parent, JoinNode):
        if index == 0:
            parent.left = new_child
        else:
            parent.right = new_child
        return
    if isinstance(parent, UnionAllNode):
        parent.inputs[index] = new_child
        return
    if isinstance(parent, TvfNode):
        parent.input_plan = new_child
        return
