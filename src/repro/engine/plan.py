"""Logical plan nodes.

Plans carry *syntactic* expressions (AST) plus the schema each node
produces; binding to concrete column indices happens per-batch at execution
via :class:`repro.sql.expressions.Binder`, which keeps plan rewrites (filter
pushdown, join reordering, DPP) simple tree surgery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.data.types import DataType, Schema
from repro.metastore.catalog import TableInfo
from repro.metastore.constraints import ConstraintSet
from repro.sql import ast_nodes as ast


class PlanNode:
    """Base class; every node exposes ``schema`` and ``children()``."""

    schema: Schema

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self, indent: int = 0) -> str:
        """Human-readable plan tree (EXPLAIN output)."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Read one table through the Storage Read API.

    ``pushed_filters`` are conjuncts fully answerable by this relation,
    serialized into the session's row restriction. ``runtime_constraints``
    receive dynamic-partition-pruning IN-sets at execution time.
    """

    table: TableInfo
    schema: Schema
    columns: list[str]
    qualifier: str | None = None
    pushed_filters: list[ast.Expr] = field(default_factory=list)
    runtime_constraints: ConstraintSet = field(default_factory=ConstraintSet)
    snapshot_ms: float | None = None
    # Aggregate pushdown (§3.4 future work): (func, column|None, output).
    # When set, the scan returns one partial-aggregate row per stream and
    # ``schema`` describes the partial columns.
    pushed_aggregates: list[tuple[str, str | None, str]] = field(default_factory=list)

    def _label(self) -> str:
        filters = (
            " filter=[" + " AND ".join(str(f) for f in self.pushed_filters) + "]"
            if self.pushed_filters
            else ""
        )
        return f"Scan({self.table.table_id} cols={self.columns}{filters})"


@dataclass
class SystemTableNode(PlanNode):
    """Scan of an ``INFORMATION_SCHEMA`` virtual table.

    Rows are produced at execution time by the platform's
    :class:`~repro.obs.system_tables.SystemTables` provider under the
    querying principal — which is where per-principal visibility and the
    admin-only tables are enforced. ``base_schema`` keeps the unqualified
    column names the provider emits; ``schema`` may be alias-qualified
    when the table appears in a join.
    """

    name: str  # normalized table name, e.g. "JOBS"
    schema: Schema
    base_schema: Schema
    qualifier: str | None = None

    def _label(self) -> str:
        return f"SystemTable(INFORMATION_SCHEMA.{self.name})"


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: ast.Expr
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    items: list[tuple[ast.Expr, str]]  # (expression, output name)
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Project({', '.join(name for _, name in self.items)})"


@dataclass
class AggSpec:
    """One aggregate computation: ``func(arg)`` with an output name."""

    func: str  # COUNT, SUM, MIN, MAX, AVG
    arg: ast.Expr | None  # None for COUNT(*)
    output: str
    distinct: bool = False
    dtype: DataType = DataType.FLOAT64


@dataclass
class AggregateNode(PlanNode):
    child: PlanNode
    group_items: list[tuple[ast.Expr, str]]
    aggregates: list[AggSpec]
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        keys = ", ".join(name for _, name in self.group_items)
        aggs = ", ".join(f"{a.func}->{a.output}" for a in self.aggregates)
        return f"Aggregate(keys=[{keys}] aggs=[{aggs}])"


@dataclass
class JoinNode(PlanNode):
    kind: str  # INNER, LEFT, CROSS
    left: PlanNode
    right: PlanNode
    schema: Schema
    # Equi-join key pairs extracted from the condition (left_expr, right_expr).
    equi_keys: list[tuple[ast.Expr, ast.Expr]] = field(default_factory=list)
    # Residual non-equi condition applied after matching.
    residual: ast.Expr | None = None
    # Dynamic partition pruning: feed build-side keys into the probe scan.
    dpp_eligible: bool = False

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def _label(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in self.equi_keys)
        dpp = " +DPP" if self.dpp_eligible else ""
        return f"{self.kind}Join({keys}){dpp}"


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    keys: list[tuple[ast.Expr, bool]]  # (expr, ascending)
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def _label(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode
    schema: Schema

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class UnionAllNode(PlanNode):
    inputs: list[PlanNode]
    schema: Schema

    def children(self) -> list[PlanNode]:
        return list(self.inputs)


@dataclass
class TvfNode(PlanNode):
    """A table-valued function (ML.PREDICT / ML.PROCESS_DOCUMENT)."""

    name: str
    model: tuple[str, ...]
    input_plan: PlanNode | None
    input_table: TableInfo | None
    schema: Schema
    options: dict[str, Any] = field(default_factory=dict)

    def children(self) -> list[PlanNode]:
        return [self.input_plan] if self.input_plan is not None else []

    def _label(self) -> str:
        return f"Tvf({self.name} model={'.'.join(self.model)})"


@dataclass
class ValuesNode(PlanNode):
    """Literal rows (INSERT ... VALUES)."""

    rows: list[list[ast.Expr]]
    schema: Schema
