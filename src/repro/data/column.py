"""Null-aware column vectors backed by numpy, plus dictionary encoding.

Two concrete representations are used throughout the system:

* :class:`Column` — a flat vector of values with an optional validity mask.
* :class:`DictionaryColumn` — int32 codes into a (small) dictionary of
  distinct values. The vectorized Parquet reader emits these directly so
  filters and aggregations can run on codes without materializing values,
  which is the core of the paper's Superluminal throughput win (§3.4).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.data.types import DataType
from repro.errors import ExecutionError


def _coerce_values(dtype: DataType, values: Sequence[Any] | np.ndarray) -> np.ndarray:
    """Build the physical numpy array for ``values`` of logical ``dtype``.

    ``None`` entries are replaced by a type-appropriate placeholder; callers
    are responsible for passing a matching validity mask.
    """
    np_dtype = dtype.numpy_dtype()
    if isinstance(values, np.ndarray) and values.dtype == np_dtype:
        return values
    if np_dtype == np.dtype(object):
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        return arr
    placeholder: Any = 0
    cleaned = [placeholder if v is None else v for v in values]
    return np.asarray(cleaned, dtype=np_dtype)


class Column:
    """An immutable typed vector with an optional null (validity) mask.

    ``validity`` is a boolean array where ``True`` means "value present";
    ``None`` means every value is present. Values at null positions are
    unspecified placeholders and must not be observed.
    """

    __slots__ = ("dtype", "values", "validity")

    def __init__(
        self,
        dtype: DataType,
        values: Sequence[Any] | np.ndarray,
        validity: np.ndarray | None = None,
    ) -> None:
        self.dtype = dtype
        self.values = _coerce_values(dtype, values)
        if validity is not None:
            validity = np.asarray(validity, dtype=bool)
            if len(validity) != len(self.values):
                raise ExecutionError(
                    f"validity length {len(validity)} != values length {len(self.values)}"
                )
            if bool(validity.all()):
                validity = None
        self.validity = validity

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_pylist(dtype: DataType, items: Sequence[Any]) -> "Column":
        """Build a column from python values, treating ``None`` as null."""
        validity = np.array([v is not None for v in items], dtype=bool)
        return Column(dtype, items, validity if not validity.all() else None)

    @staticmethod
    def nulls(dtype: DataType, count: int) -> "Column":
        """A column of ``count`` nulls."""
        values = np.zeros(count, dtype=dtype.numpy_dtype())
        if dtype.numpy_dtype() == np.dtype(object):
            values = np.empty(count, dtype=object)
        return Column(dtype, values, np.zeros(count, dtype=bool))

    @staticmethod
    def repeat(dtype: DataType, value: Any, count: int) -> "Column":
        """A column repeating one value (or null) ``count`` times."""
        if value is None:
            return Column.nulls(dtype, count)
        if dtype.numpy_dtype() == np.dtype(object):
            values = np.empty(count, dtype=object)
            values[:] = value
        else:
            values = np.full(count, value, dtype=dtype.numpy_dtype())
        return Column(dtype, values)

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def is_valid(self) -> np.ndarray:
        """Boolean presence mask of length ``len(self)``."""
        if self.validity is None:
            return np.ones(len(self), dtype=bool)
        return self.validity

    def null_count(self) -> int:
        if self.validity is None:
            return 0
        return int((~self.validity).sum())

    def __getitem__(self, i: int) -> Any:
        if self.validity is not None and not self.validity[i]:
            return None
        v = self.values[i]
        if isinstance(v, np.generic):
            return v.item()
        return v

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def to_pylist(self) -> list[Any]:
        return list(self)

    # -- transformations ---------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is true."""
        validity = self.validity[mask] if self.validity is not None else None
        return Column(self.dtype, self.values[mask], validity)

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        validity = self.validity[indices] if self.validity is not None else None
        return Column(self.dtype, self.values[indices], validity)

    def slice(self, start: int, stop: int) -> "Column":
        validity = self.validity[start:stop] if self.validity is not None else None
        return Column(self.dtype, self.values[start:stop], validity)

    def min_max(self) -> tuple[Any, Any]:
        """(min, max) over present values, or (None, None) if all null.

        Used to compute the per-file column statistics that Big Metadata
        caches for pruning.
        """
        mask = self.is_valid()
        if not mask.any():
            return None, None
        present = self.values[mask]
        if self.dtype.is_variable_width:
            items = [v for v in present]
            return min(items), max(items)
        return present.min().item(), present.max().item()

    def nbytes(self) -> int:
        """Approximate in-memory footprint, used by memory accounting."""
        if self.dtype.is_variable_width:
            total = 0
            for v in self.values:
                if isinstance(v, (bytes, str)):
                    total += len(v)
                total += 8
            return total
        return int(self.values.nbytes)


class DictionaryColumn:
    """A column stored as int32 codes into a dictionary of distinct values.

    Code ``-1`` marks a null. ``dictionary`` is a plain :class:`Column`
    (always fully valid). Operating directly on codes lets the engine filter
    and group dictionary-encoded scans without decoding — the optimization
    the paper credits for the vectorized reader's CPU-efficiency gain.
    """

    __slots__ = ("dtype", "codes", "dictionary")

    def __init__(self, dtype: DataType, codes: np.ndarray, dictionary: Column) -> None:
        self.dtype = dtype
        self.codes = np.asarray(codes, dtype=np.int32)
        self.dictionary = dictionary

    @staticmethod
    def encode(column: Column) -> "DictionaryColumn":
        """Dictionary-encode a flat column."""
        valid = column.is_valid()
        codes = np.full(len(column), -1, dtype=np.int32)
        value_to_code: dict[Any, int] = {}
        dict_values: list[Any] = []
        for i in range(len(column)):
            if not valid[i]:
                continue
            v = column.values[i]
            key = v.item() if isinstance(v, np.generic) else v
            code = value_to_code.get(key)
            if code is None:
                code = len(dict_values)
                value_to_code[key] = code
                dict_values.append(key)
            codes[i] = code
        return DictionaryColumn(column.dtype, codes, Column(column.dtype, dict_values))

    def __len__(self) -> int:
        return len(self.codes)

    def null_count(self) -> int:
        return int((self.codes < 0).sum())

    def decode(self) -> Column:
        """Materialize the flat column."""
        valid = self.codes >= 0
        if len(self.dictionary) == 0:
            return Column.nulls(self.dtype, len(self.codes))
        safe_codes = np.where(valid, self.codes, 0)
        values = self.dictionary.values[safe_codes]
        # numpy fancy-indexing of object arrays keeps object dtype; numeric
        # arrays keep their dtype, so this is representation-preserving.
        validity = None if bool(valid.all()) else valid
        return Column(self.dtype, values, validity)

    def filter(self, mask: np.ndarray) -> "DictionaryColumn":
        return DictionaryColumn(self.dtype, self.codes[mask], self.dictionary)

    def take(self, indices: np.ndarray) -> "DictionaryColumn":
        return DictionaryColumn(self.dtype, self.codes[indices], self.dictionary)

    def codes_for_predicate(self, predicate) -> np.ndarray:
        """Codes whose dictionary value satisfies ``predicate`` (a callable).

        Evaluating the predicate once per *distinct* value instead of once
        per row is the dictionary-aware fast path.
        """
        hits = [
            code
            for code in range(len(self.dictionary))
            if predicate(self.dictionary[code])
        ]
        return np.asarray(hits, dtype=np.int32)

    def nbytes(self) -> int:
        return int(self.codes.nbytes) + self.dictionary.nbytes()
