"""RecordBatch: the unit of columnar data exchanged between subsystems."""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.data.column import Column, DictionaryColumn
from repro.data.types import Field, Schema
from repro.errors import ExecutionError

AnyColumn = Column | DictionaryColumn


class RecordBatch:
    """A schema plus one column vector per field, all of equal length.

    Columns may be flat (:class:`Column`) or dictionary-encoded
    (:class:`DictionaryColumn`); consumers that need flat data call
    :meth:`column` (which decodes transparently) or :meth:`decoded`.
    """

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(self, schema: Schema, columns: Sequence[AnyColumn]) -> None:
        if len(schema) != len(columns):
            raise ExecutionError(
                f"schema has {len(schema)} fields but {len(columns)} columns given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = list(columns)
        self.num_rows = lengths.pop() if lengths else 0

    # -- construction ------------------------------------------------------

    @staticmethod
    def empty(schema: Schema) -> "RecordBatch":
        return RecordBatch(schema, [Column(f.dtype, []) for f in schema])

    # -- access ------------------------------------------------------------

    def raw_column(self, name: str) -> AnyColumn:
        """The column as stored (possibly dictionary-encoded)."""
        return self.columns[self.schema.index_of(name)]

    def column(self, name: str) -> Column:
        """The column as a flat vector, decoding if necessary."""
        col = self.raw_column(name)
        if isinstance(col, DictionaryColumn):
            return col.decode()
        return col

    def column_at(self, index: int) -> Column:
        col = self.columns[index]
        if isinstance(col, DictionaryColumn):
            return col.decode()
        return col

    def decoded(self) -> "RecordBatch":
        """A batch with every dictionary column materialized."""
        cols = [
            c.decode() if isinstance(c, DictionaryColumn) else c for c in self.columns
        ]
        return RecordBatch(self.schema, cols)

    def __len__(self) -> int:
        return self.num_rows

    def nbytes(self) -> int:
        return sum(c.nbytes() for c in self.columns)

    # -- transformations ---------------------------------------------------

    def select(self, names: list[str]) -> "RecordBatch":
        """Project to the given columns, in order."""
        schema = self.schema.select(names)
        cols = [self.columns[self.schema.index_of(n)] for n in names]
        return RecordBatch(schema, cols)

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        return RecordBatch(self.schema, [c.filter(mask) for c in self.columns])

    def take(self, indices: np.ndarray) -> "RecordBatch":
        return RecordBatch(self.schema, [c.take(indices) for c in self.columns])

    def slice(self, start: int, stop: int) -> "RecordBatch":
        cols = []
        for c in self.columns:
            if isinstance(c, DictionaryColumn):
                cols.append(
                    DictionaryColumn(c.dtype, c.codes[start:stop], c.dictionary)
                )
            else:
                cols.append(c.slice(start, stop))
        return RecordBatch(self.schema, cols)

    def with_column(self, field: Field, column: AnyColumn) -> "RecordBatch":
        """Append (or replace) a column, returning a new batch."""
        if self.schema.has_field(field.name):
            idx = self.schema.index_of(field.name)
            fields = list(self.schema.fields)
            fields[idx] = field
            cols = list(self.columns)
            cols[idx] = column
            return RecordBatch(Schema(tuple(fields)), cols)
        return RecordBatch(
            Schema(self.schema.fields + (field,)), list(self.columns) + [column]
        )

    def rename(self, names: list[str]) -> "RecordBatch":
        if len(names) != len(self.schema):
            raise ExecutionError("rename arity mismatch")
        fields = tuple(
            Field(n, f.dtype, f.nullable) for n, f in zip(names, self.schema.fields)
        )
        return RecordBatch(Schema(fields), self.columns)

    # -- row views ----------------------------------------------------------

    def row(self, i: int) -> tuple:
        return tuple(self.column_at(j)[i] for j in range(len(self.schema)))

    def iter_rows(self) -> Iterator[tuple]:
        decoded = self.decoded()
        pylists = [c.to_pylist() for c in decoded.columns]
        for i in range(self.num_rows):
            yield tuple(col[i] for col in pylists)

    def to_pydict(self) -> dict[str, list[Any]]:
        return {
            f.name: self.column_at(i).to_pylist()
            for i, f in enumerate(self.schema.fields)
        }


def batch_from_pydict(schema: Schema, data: Mapping[str, Sequence[Any]]) -> RecordBatch:
    """Build a batch from ``{column_name: values}`` with ``None`` as null."""
    columns = []
    for f in schema:
        if f.name not in data:
            raise ExecutionError(f"missing column {f.name!r} in pydict")
        columns.append(Column.from_pylist(f.dtype, list(data[f.name])))
    return RecordBatch(schema, columns)


def batch_from_rows(schema: Schema, rows: Sequence[Sequence[Any]]) -> RecordBatch:
    """Build a batch from an iterable of row tuples."""
    columns = []
    for j, f in enumerate(schema):
        columns.append(Column.from_pylist(f.dtype, [row[j] for row in rows]))
    return RecordBatch(schema, columns)


def concat_batches(schema: Schema, batches: Sequence[RecordBatch]) -> RecordBatch:
    """Concatenate batches that share ``schema`` into one flat batch."""
    batches = [b for b in batches if b.num_rows > 0]
    if not batches:
        return RecordBatch.empty(schema)
    columns = []
    for j, f in enumerate(schema):
        parts = [b.column_at(j) for b in batches]
        values = np.concatenate([p.values for p in parts])
        if any(p.validity is not None for p in parts):
            validity = np.concatenate([p.is_valid() for p in parts])
        else:
            validity = None
        columns.append(Column(f.dtype, values, validity))
    return RecordBatch(schema, columns)
