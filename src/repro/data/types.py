"""Logical data types, fields, and schemas.

The type system intentionally mirrors the subset of BigQuery/Arrow types the
paper's workloads need: 64-bit integers and floats, booleans, strings, raw
bytes, microsecond timestamps, and day-precision dates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AnalysisError


class DataType(enum.Enum):
    """Logical column types supported throughout the library."""

    INT64 = "INT64"
    FLOAT64 = "FLOAT64"
    BOOL = "BOOL"
    STRING = "STRING"
    BYTES = "BYTES"
    TIMESTAMP = "TIMESTAMP"  # microseconds since epoch, stored as int64
    DATE = "DATE"  # days since epoch, stored as int64

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)

    @property
    def is_temporal(self) -> bool:
        return self in (DataType.TIMESTAMP, DataType.DATE)

    @property
    def is_variable_width(self) -> bool:
        return self in (DataType.STRING, DataType.BYTES)

    def numpy_dtype(self) -> np.dtype:
        """The numpy physical dtype used to store values of this type."""
        if self in (DataType.INT64, DataType.TIMESTAMP, DataType.DATE):
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        if self is DataType.BOOL:
            return np.dtype(np.bool_)
        # Variable-width values are stored as python objects.
        return np.dtype(object)


@dataclass(frozen=True)
class Field:
    """A named, typed, possibly nullable column slot in a schema."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.value}{null}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields with by-name lookup.

    Schemas are immutable; derived schemas (projections, renames) are new
    objects. Field names are case-insensitive for lookup, matching SQL
    identifier semantics, but preserve their declared casing.
    """

    fields: tuple[Field, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", tuple(self.fields))
        index: dict[str, int] = {}
        for i, f in enumerate(self.fields):
            key = f.name.lower()
            if key in index:
                raise AnalysisError(f"duplicate field name in schema: {f.name!r}")
            index[key] = i
        object.__setattr__(self, "_index", index)

    @staticmethod
    def of(*pairs: tuple[str, DataType]) -> "Schema":
        """Convenience constructor: ``Schema.of(("a", DataType.INT64), ...)``."""
        return Schema(tuple(Field(name, dtype) for name, dtype in pairs))

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def has_field(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Position of field ``name``; raises :class:`AnalysisError` if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"field {name!r} not found in schema [{', '.join(self.names())}]"
            ) from None

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def select(self, names: list[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(tuple(self.fields[self.index_of(n)] for n in names))

    def rename_all(self, prefix: str) -> "Schema":
        """A new schema with every field renamed to ``prefix.name``."""
        return Schema(
            tuple(Field(f"{prefix}.{f.name}", f.dtype, f.nullable) for f in self.fields)
        )

    def merge(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by joins)."""
        return Schema(self.fields + other.fields)

    def to_dict(self) -> list[dict]:
        """JSON-serializable description (used by file footers and catalogs)."""
        return [
            {"name": f.name, "type": f.dtype.value, "nullable": f.nullable}
            for f in self.fields
        ]

    @staticmethod
    def from_dict(data: list[dict]) -> "Schema":
        return Schema(
            tuple(
                Field(d["name"], DataType(d["type"]), d.get("nullable", True))
                for d in data
            )
        )

    def __str__(self) -> str:
        return "Schema(" + ", ".join(str(f) for f in self.fields) + ")"
