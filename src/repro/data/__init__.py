"""Arrow-like in-memory columnar data layer.

This package is the foundation every other subsystem builds on: a typed
:class:`Schema`, null-aware :class:`Column` vectors backed by numpy,
dictionary-encoded columns, and :class:`RecordBatch` — the unit of data
exchanged by the file format readers, the Superluminal evaluator, the query
engine, and the Storage Read API (which, like the paper's Arrow output,
returns columnar batches to external engines).
"""

from repro.data.types import DataType, Field, Schema
from repro.data.column import Column, DictionaryColumn
from repro.data.batch import (
    RecordBatch,
    batch_from_pydict,
    batch_from_rows,
    concat_batches,
)

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "Column",
    "DictionaryColumn",
    "RecordBatch",
    "batch_from_pydict",
    "batch_from_rows",
    "concat_batches",
]
