"""BigLake core: the paper's primary contribution, assembled.

* :mod:`repro.core.platform` — :class:`LakehousePlatform`, the deployment
  builder that wires clouds, stores, IAM, catalog, Big Metadata, the
  Storage APIs, and per-region engines into one lakehouse.
* :mod:`repro.core.tables` — table lifecycle (managed, BigLake, Object,
  BLMT) and the DML handler (CTAS / INSERT / UPDATE / DELETE / MERGE).
* :mod:`repro.core.blmt` — BigLake managed tables (§3.5): ACID DML through
  Big Metadata, background storage optimization (adaptive file sizing,
  reclustering, garbage collection), and Iceberg snapshot export.
"""

from repro.core.platform import LakehousePlatform
from repro.core.tables import TableManager
from repro.core.blmt import BlmtManager, BlmtTransaction

__all__ = ["LakehousePlatform", "TableManager", "BlmtManager", "BlmtTransaction"]
