"""BigLake managed tables (BLMT, §3.5).

BLMTs store Parquet-like data files in customer-owned buckets while Big
Metadata — a stateful service outside the bucket — is the source of truth
for the transaction log. That structure yields the paper's three claims:

* **Write throughput**: commits are memory-speed log appends, not
  object-store CAS swaps.
* **Multi-table transactions**: several tables commit atomically through
  one Big Metadata transaction.
* **Tamper-proof history**: bucket writers cannot rewrite the log.

Background storage optimization implements adaptive file sizing
(compaction), reclustering by the table's clustering key, and garbage
collection of unreferenced data files. ``export_iceberg_snapshot`` writes
an Iceberg-format snapshot of the current state so any Iceberg-capable
engine can read the table directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.batch import RecordBatch, concat_batches
from repro.errors import CatalogError
from repro.metastore.bigmeta import BigMetadataService, FileEntry, MetaTransaction
from repro.metastore.catalog import TableInfo, TableKind
from repro.metastore.constraints import ConstraintSet
from repro.objectstore.registry import StoreRegistry
from repro.simtime import SimContext
from repro.storageapi.fileutil import write_data_file
from repro.tableformats.iceberg import DataFileInfo, IcebergTable

# Adaptive file sizing: files smaller than half the target are compaction
# candidates; the target grows with total table size.
_MIN_TARGET_FILE_BYTES = 64 * 1024
_MAX_TARGET_FILE_BYTES = 64 * 1024 * 1024


@dataclass
class OptimizationReport:
    """What one background optimization pass did."""

    files_compacted: int = 0
    files_written: int = 0
    reclustered: bool = False
    garbage_collected: int = 0


@dataclass
class BlmtTransaction:
    """A multi-statement, multi-table BLMT transaction.

    Writes stage into one Big Metadata transaction; nothing is visible
    until :meth:`commit`. Data files are written eagerly (they are inert
    until referenced by a committed log record).
    """

    manager: "BlmtManager"
    txn: MetaTransaction
    staged_tables: dict[str, TableInfo] = field(default_factory=dict)

    def insert(self, table: TableInfo, batch: RecordBatch) -> None:
        entry = self.manager._write_file(table, [batch])
        self.txn.stage(table.table_id, added=[entry])
        self.staged_tables[table.table_id] = table

    def commit(self) -> int:
        commit_id = self.txn.commit()
        for table in self.staged_tables.values():
            self.manager.read_api.mark_cache_refreshed(table.table_id)
            self.manager._maybe_auto_export(table)
        return commit_id

    def abort(self) -> None:
        self.txn.abort()


class BlmtManager:
    """DML + maintenance for BigLake managed tables."""

    # Time-travel retention: data files stay reclaimable only after their
    # deleting commit ages out (BigQuery keeps 7 days of time travel).
    DEFAULT_RETENTION_MS = 7 * 24 * 3600 * 1000.0

    def __init__(
        self,
        bigmeta: BigMetadataService,
        stores: StoreRegistry,
        read_api,
        ctx: SimContext,
        retention_ms: float | None = None,
    ) -> None:
        self.bigmeta = bigmeta
        self.stores = stores
        self.read_api = read_api
        self.ctx = ctx
        self.retention_ms = (
            retention_ms if retention_ms is not None else self.DEFAULT_RETENTION_MS
        )
        self._file_counter = 0
        # TransactionCoordinator (repro.txn), wired when the platform's txn
        # coordinator is created. While it has an active transaction, DML
        # buffers into the transaction instead of committing.
        self.coordinator = None

    def _active_txn(self):
        coordinator = self.coordinator
        return coordinator.active if coordinator is not None else None

    # -- write paths ---------------------------------------------------------

    def insert(self, table: TableInfo, batches: list[RecordBatch]) -> int:
        """Append rows; returns the commit id (0 when buffered into an open
        multi-table transaction — commit ids are assigned at publish)."""
        txn = self._active_txn()
        entry = self._write_file(table, batches)
        if txn is not None:
            txn.stage_blmt(table, added=[entry])
            return 0
        commit_id = self.ctx.with_retry(
            "bigmeta.commit",
            lambda: self.bigmeta.commit(table.table_id, added=[entry]),
        )
        table.version += 1
        self.read_api.mark_cache_refreshed(table.table_id)
        self._maybe_auto_export(table)
        return commit_id

    def begin_transaction(self) -> BlmtTransaction:
        return BlmtTransaction(manager=self, txn=self.bigmeta.begin())

    def rewrite_rows(
        self,
        table: TableInfo,
        constraints: ConstraintSet,
        transform,
        principal=None,
    ) -> int:
        """Copy-on-write mutation: for every file that may contain affected
        rows, read it, apply ``transform(batch) -> (new_batch | None,
        affected_rows)`` (``new_batch is batch`` means untouched; ``None``
        drops the file), and atomically swap old files for new.

        Returns the total number of rows affected (changed or deleted).

        Inside an open multi-table transaction, candidate files are read at
        the transaction's begin snapshot and the rewrite is *buffered* —
        nothing publishes until the transaction's marker lands.
        """
        mt_txn = self._active_txn()
        as_of_ms = mt_txn.begin_ms if mt_txn is not None else None
        candidates = self.bigmeta.prune(table.table_id, constraints, as_of_ms=as_of_ms)
        if not candidates:
            return 0
        store = self.stores.store_for(table.storage.location)
        affected = 0
        removed: list[str] = []
        added: list[FileEntry] = []
        for entry in candidates:
            bucket, _, key = entry.file_path.partition("/")
            data = store.get_object(bucket, key)
            from repro.formats import pqs

            footer = pqs.read_footer(data)
            batches = [
                pqs.read_row_group(data, footer, i, keep_dictionary=False)
                for i in range(len(footer.row_groups))
            ]
            original = concat_batches(table.schema, batches)
            result, file_affected = transform(original)
            if result is original or file_affected == 0:
                continue  # untouched file
            affected += file_affected
            removed.append(entry.file_path)
            if result is not None and result.num_rows:
                added.append(self._write_file(table, [result], partition=entry.partition()))
        if not removed and not added:
            return 0
        if mt_txn is not None:
            mt_txn.stage_blmt(table, added=added, deleted=removed)
            return affected
        txn = self.bigmeta.begin()
        txn.stage(table.table_id, added=added, deleted=removed)
        txn.commit()
        table.version += 1
        self.read_api.mark_cache_refreshed(table.table_id)
        self._maybe_auto_export(table)
        return affected

    def _write_file(
        self,
        table: TableInfo,
        batches: list[RecordBatch],
        partition: dict[str, Any] | None = None,
    ) -> FileEntry:
        store = self.stores.store_for(table.storage.location)
        self._file_counter += 1
        key = f"{table.storage.prefix.rstrip('/')}/data/part-{self._file_counter:08d}.pqs"
        combined = concat_batches(table.schema, batches)
        if table.clustering_columns:
            combined = _sort_by(combined, table.clustering_columns)
        # Same-key PUT is idempotent, so transient faults are retried here;
        # injected (non-transient) StorageErrors still surface to callers.
        return self.ctx.with_retry(
            "objectstore.put",
            lambda: write_data_file(
                store, table.storage.bucket, key, table.schema, [combined],
                partition_values=partition,
            ),
        )

    # -- background storage optimization (§3.5) ---------------------------------

    def target_file_bytes(self, table: TableInfo) -> int:
        """Adaptive file sizing: target grows with table size."""
        stats = self.bigmeta.table_stats(table.table_id)
        total = stats["num_bytes"]
        return int(np.clip(total // 16 or _MIN_TARGET_FILE_BYTES,
                           _MIN_TARGET_FILE_BYTES, _MAX_TARGET_FILE_BYTES))

    def optimize_storage(self, table: TableInfo) -> OptimizationReport:
        """One background pass: compact small files (reclustering rows in
        the process) and garbage-collect unreferenced objects."""
        report = OptimizationReport()
        target = self.target_file_bytes(table)
        entries = self.bigmeta.snapshot(table.table_id)
        small = [e for e in entries if e.size_bytes < target // 2]
        if len(small) >= 2:
            store = self.stores.store_for(table.storage.location)
            from repro.formats import pqs

            batches = []
            for entry in small:
                bucket, _, key = entry.file_path.partition("/")
                data = store.get_object(bucket, key)
                footer = pqs.read_footer(data)
                for i in range(len(footer.row_groups)):
                    batches.append(pqs.read_row_group(data, footer, i, keep_dictionary=False))
            combined = concat_batches(table.schema, batches)
            if table.clustering_columns:
                combined = _sort_by(combined, table.clustering_columns)
                report.reclustered = True
            new_entries = []
            # Split the compacted data into files near the target size.
            if combined.num_rows:
                bytes_per_row = max(1, combined.nbytes() // combined.num_rows)
                rows_per_file = max(1, target // bytes_per_row)
                for start in range(0, combined.num_rows, rows_per_file):
                    chunk = combined.slice(start, min(start + rows_per_file, combined.num_rows))
                    new_entries.append(self._write_file(table, [chunk]))
            txn = self.bigmeta.begin()
            txn.stage(
                table.table_id,
                added=new_entries,
                deleted=[e.file_path for e in small],
            )
            txn.commit()
            table.version += 1
            report.files_compacted = len(small)
            report.files_written = len(new_entries)
        report.garbage_collected = self.garbage_collect(table)
        self.read_api.mark_cache_refreshed(table.table_id)
        self._maybe_auto_export(table)
        return report

    def garbage_collect(self, table: TableInfo) -> int:
        """Delete data objects no longer referenced by the live file set.

        Files removed by recent commits stay on disk for ``retention_ms``
        so ``FOR SYSTEM_TIME AS OF`` reads within the window keep working;
        only never-committed orphans and files whose deleting commit has
        aged out are reclaimed.
        """
        store = self.stores.store_for(table.storage.location)
        meta = self.bigmeta.table(table.table_id)
        live = {e.file_path for e in meta.live_entries().values()}
        cutoff = self.ctx.clock.now_ms - self.retention_ms
        retained = {
            path
            for record in meta.history
            if record.timestamp_ms >= cutoff
            for path in record.deleted
        }
        prefix = f"{table.storage.prefix.rstrip('/')}/data/"
        orphans = []
        for obj in store.list_objects(table.storage.bucket, prefix=prefix):
            path = f"{table.storage.bucket}/{obj.key}"
            if path not in live and path not in retained:
                orphans.append(obj.key)
        for key in orphans:
            store.delete_object(table.storage.bucket, key)
        return len(orphans)

    def _maybe_auto_export(self, table: TableInfo) -> None:
        """Asynchronous-snapshot future work (§3.5): when enabled, every
        commit also refreshes the table's Iceberg snapshot."""
        if table.options.get("auto_iceberg_snapshots"):
            self.export_iceberg_snapshot(table)

    # -- Iceberg snapshot export (§3.5) --------------------------------------------

    def export_iceberg_snapshot(self, table: TableInfo) -> IcebergTable:
        """Export the current BLMT state as an Iceberg snapshot in the same
        bucket, readable by any Iceberg-capable engine.

        Metadata remains owned by Big Metadata; the export is a one-way
        projection (triggered by SQL in the real product)."""
        if table.kind is not TableKind.BLMT:
            raise CatalogError("iceberg export applies to BLMT tables")
        store = self.stores.store_for(table.storage.location)
        prefix = f"{table.storage.prefix.rstrip('/')}/iceberg"
        pointer_key = f"{prefix}/metadata/version-hint.json"
        if store.object_exists(table.storage.bucket, pointer_key):
            iceberg = IcebergTable(store, table.storage.bucket, prefix)
        else:
            iceberg = IcebergTable.create(
                store, table.storage.bucket, prefix, table.schema,
                table.partition_columns,
            )
        entries = self.bigmeta.snapshot(table.table_id)
        files = [_entry_to_datafile(e) for e in entries]
        current = {f.path for f in iceberg.scan()}
        new_paths = {f.path for f in files}
        iceberg.commit_overwrite(
            added=[f for f in files if f.path not in current],
            removed_paths=[p for p in current if p not in new_paths],
        )
        return iceberg


def _entry_to_datafile(entry: FileEntry) -> DataFileInfo:
    bounds = tuple(
        (name, (stats.min_value, stats.max_value, stats.null_count))
        for name, stats in entry.column_stats
    )
    return DataFileInfo(
        path=entry.file_path,
        file_size=entry.size_bytes,
        record_count=entry.row_count,
        partition=entry.partition_values,
        bounds=bounds,
    )


def _sort_by(batch: RecordBatch, columns: list[str]) -> RecordBatch:
    """Sort rows by clustering columns (NULLs first)."""
    key_lists = [batch.column(c).to_pylist() for c in columns]

    def key(i: int):
        return tuple(
            (0, 0) if lst[i] is None else (1, lst[i]) for lst in key_lists
        )

    order = sorted(range(batch.num_rows), key=key)
    return batch.take(np.asarray(order, dtype=np.int64))
