"""LakehousePlatform: one-stop wiring of the whole deployment.

A platform owns the shared simulation context plus the control-plane
services (IAM, catalog, connections, Big Metadata, audit) and constructs
per-region data planes: object stores and query engines. This mirrors the
paper's architecture: a single control plane, engines colocated with data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache import CacheConfig, DataCache
from repro.cache.plan import QueryCache, QueryCacheConfig
from repro.cloud import Cloud, Region
from repro.engine.engine import QueryEngine
from repro.errors import CatalogError
from repro.metastore.bigmeta import BigMetadataService
from repro.metastore.catalog import Catalog
from repro.metastore.hivemeta import HiveMetastore
from repro.objectstore.registry import StoreRegistry
from repro.obs.history import JobHistory
from repro.obs.monitor import FleetMonitor, MonitorConfig
from repro.obs.system_tables import SystemTables
from repro.security.audit import AuditLog
from repro.security.connections import ConnectionManager
from repro.security.iam import IamService, Principal, Role
from repro.serving.jobs import JobQueue, JobsApi, ServingConfig
from repro.simtime import SimContext
from repro.sql.expressions import FunctionRegistry
from repro.storageapi.managed import ManagedStorage
from repro.storageapi.read_api import ReadApi
from repro.storageapi.write_api import WriteApi

GCP_US = Region(Cloud.GCP, "us-central1")


@dataclass
class PlatformConfig:
    project: str = "repro-project"
    home_region: Region = field(default_factory=lambda: GCP_US)
    engine_slots: int = 64
    # Ring-buffer bound on the queryable job history (INFORMATION_SCHEMA.JOBS).
    job_history_capacity: int = 256
    # Slot-local multi-tier data cache (footer/chunk/dictionary tiers);
    # CacheConfig(enabled=False) reproduces the always-cold baseline.
    data_cache: CacheConfig = field(default_factory=CacheConfig)
    # Plan + query-result caches (snapshot-keyed, coherent by keying).
    # Plan caching is on by default (invisible to results and timings);
    # result caching additionally needs use_query_cache=True per statement.
    query_cache: QueryCacheConfig = field(default_factory=QueryCacheConfig)
    # Concurrency policy for the shared slot pool / async jobs API
    # (admission control seats, inter-stage overlap, per-principal weights).
    serving: ServingConfig = field(default_factory=ServingConfig)
    # Fleet telemetry (TSDB scrapes, reservation timelines, SLO alerts);
    # MonitorConfig(enabled=False) is the no-telemetry baseline.
    monitoring: MonitorConfig = field(default_factory=MonitorConfig)


class LakehousePlatform:
    """The assembled multi-cloud lakehouse."""

    def __init__(self, config: PlatformConfig | None = None) -> None:
        self.config = config or PlatformConfig()
        self.ctx = SimContext()
        self.iam = IamService()
        self.audit = AuditLog(self.ctx)
        self.catalog = Catalog(self.config.project)
        self.bigmeta = BigMetadataService(self.ctx)
        self.hivemeta = HiveMetastore(self.ctx)
        self.stores = StoreRegistry(self.ctx)
        self.connections = ConnectionManager(self.iam, self.ctx)
        self.managed = ManagedStorage(self.ctx)
        self.functions = FunctionRegistry()
        self.data_cache = DataCache(self.ctx, self.config.data_cache)
        self.query_cache = QueryCache(
            self.ctx, self.catalog, self.config.query_cache, iam=self.iam
        )
        self.history = JobHistory(capacity=self.config.job_history_capacity)
        # One admission-control queue + shared slot pool per project: every
        # engine's execute()/submit() routes through it (the async jobs
        # API), and jobs_api is its REST-shaped facade.
        self.job_queue = JobQueue(history=self.history, config=self.config.serving)
        self.jobs_api = JobsApi(self.job_queue)
        # Fleet monitor: scrapes the registry onto the sim-time TSDB and
        # samples every shared-pool batch. A pure reader of the serving
        # layer — wiring it up never changes query results.
        self.monitor = FleetMonitor(self.ctx, self.config.monitoring)
        self.job_queue.monitor = self.monitor
        self.system_tables = SystemTables(
            project=self.config.project,
            history=self.history,
            iam=self.iam,
            audit=self.audit,
            catalog=self.catalog,
            bigmeta=self.bigmeta,
            managed=self.managed,
            metrics=self.ctx.metrics,
            cache=self.data_cache,
            monitor=self.monitor,
            query_cache=self.query_cache,
        )
        self.read_api = ReadApi(
            catalog=self.catalog,
            bigmeta=self.bigmeta,
            connections=self.connections,
            iam=self.iam,
            audit=self.audit,
            stores=self.stores,
            managed=self.managed,
            ctx=self.ctx,
            functions=self.functions,
            data_cache=self.data_cache,
        )
        self.write_api = WriteApi(
            bigmeta=self.bigmeta,
            managed=self.managed,
            stores=self.stores,
            iam=self.iam,
            audit=self.audit,
            ctx=self.ctx,
        )
        self._engines: dict[str, QueryEngine] = {}
        self.tables = None  # TableManager, set below
        self.ml = None  # InferenceRuntime, set below
        self._omni = None  # OmniDeployment, created on first use
        self._job_server = None  # JobServer, created on first use
        self._txn = None  # TransactionCoordinator, created on first use
        self.stores.add_region(self.config.home_region)
        self.home_engine = self.add_engine(self.config.home_region)

        # Table manager wires itself into every engine as the DML handler;
        # the inference runtime registers the ML TVFs and scalar functions.
        from repro.core.tables import TableManager
        from repro.ml.inference import InferenceRuntime

        self.tables = TableManager(self)
        self.ml = InferenceRuntime(self)
        for engine in self._engines.values():
            self._wire_engine(engine)

    # -- regions & engines ----------------------------------------------------

    def add_region(self, region: Region) -> None:
        """Bring up object storage for a region (data can now live there)."""
        self.stores.add_region(region)

    def add_engine(self, region: Region, name: str | None = None, **flags) -> QueryEngine:
        """Deploy a query engine into a region (on GCP this is a native
        deployment; on AWS/Azure it is what Omni automates, §5)."""
        self.stores.add_region(region)
        engine = QueryEngine(
            read_api=self.read_api,
            catalog=self.catalog,
            location=region.location,
            name=name or f"dremel-{region.location.replace('/', '-')}",
            slots=self.config.engine_slots,
            functions=self.functions,
            **flags,
        )
        self._engines[engine.name] = engine
        self._wire_engine(engine)
        return engine

    def _wire_engine(self, engine: QueryEngine) -> None:
        """Attach the platform services an engine depends on. A no-op for
        the home engine built during ``__init__`` (the services do not
        exist yet); ``__init__`` re-wires every engine once they do."""
        if self.tables is not None:
            engine.set_dml_handler(self.tables)
        if self.ml is not None:
            self.ml.attach(engine)
        engine.history = self.history
        engine.system_tables = self.system_tables
        engine.job_queue = self.job_queue
        engine.query_cache = self.query_cache
        if self.job_queue.default_engine is None:
            self.job_queue.default_engine = engine

    def engine(self, name: str) -> QueryEngine:
        try:
            return self._engines[name]
        except KeyError:
            raise CatalogError(f"no engine named {name!r}") from None

    def engines(self) -> list[QueryEngine]:
        return list(self._engines.values())

    def engine_in(self, location: str) -> QueryEngine:
        """The engine colocated with ``location`` (cloud/region)."""
        for engine in self._engines.values():
            if engine.location == location:
                return engine
        raise CatalogError(f"no engine deployed in {location!r}")

    # -- Omni ---------------------------------------------------------------------

    @property
    def omni(self):
        """The Omni deployment for this platform (created on first use)."""
        if self._omni is None:
            from repro.omni.deployment import OmniDeployment

            self._omni = OmniDeployment(platform=self)
        return self._omni

    @property
    def job_server(self):
        """The control-plane Job Server (created on first use)."""
        if self._job_server is None:
            from repro.omni.control_plane import JobServer

            self._job_server = JobServer(self, self.omni)
        return self._job_server

    # -- transactions -------------------------------------------------------------

    @property
    def txn(self):
        """The multi-table transaction coordinator (created on first use).

        Creation wires marker resolution into Big Metadata and every object
        store, and runs a crash-recovery sweep over the transaction log —
        the "recovery at platform start" half of the protocol.
        """
        if self._txn is None:
            from repro.txn.coordinator import TransactionCoordinator

            self._txn = TransactionCoordinator(self)
        return self._txn

    def begin(self, principal: Principal):
        """Open a multi-table ACID transaction for ``principal``."""
        return self.txn.begin(principal)

    # -- observability ------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, dict[str, float]]:
        """All platform metrics as ``{name: {series: value}}``."""
        return self.ctx.metrics.snapshot()

    def metrics_text(self) -> str:
        """The Prometheus text exposition of every platform metric."""
        return self.ctx.metrics.render()

    # -- serving -----------------------------------------------------------------

    def submit(self, sql: str, principal: Principal, *, engine: QueryEngine | None = None, snapshot_ms: float | None = None, use_query_cache: bool = False):
        """``jobs.insert``: enqueue a statement on the shared slot pool and
        return its :class:`~repro.serving.jobs.QueryJob` handle. The job
        stays PENDING (visible in ``INFORMATION_SCHEMA.JOBS``) until a
        ``wait()``/``drain()`` runs the queued batch."""
        return self.job_queue.submit(
            sql, principal, engine=engine or self.home_engine, snapshot_ms=snapshot_ms,
            use_query_cache=use_query_cache,
        )

    def drain(self) -> None:
        """Run every queued job to a terminal state (shared-pool batch)."""
        self.job_queue.drain()

    def job(self, job_id: str):
        """Look up one job record from the platform history."""
        return self.history.get(job_id)

    def jobs(self):
        """All retained job records, oldest first."""
        return self.history.jobs()

    # -- convenience -------------------------------------------------------------

    def create_user(self, name: str, roles: list[Role] | None = None) -> Principal:
        """Create a user and grant project-level roles."""
        user = Principal.user(name)
        for role in roles or []:
            self.iam.grant(f"projects/{self.config.project}", role, user)
        return user

    def admin_user(self, name: str = "admin") -> Principal:
        return self.create_user(
            name,
            [
                Role.ADMIN,
                Role.DATA_EDITOR,
                Role.JOB_USER,
                Role.CONNECTION_USER,
                Role.ML_USER,
            ],
        )
