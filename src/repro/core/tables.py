"""Table lifecycle and the DML handler.

Creation paths cover every table kind in the paper; DML (CTAS, INSERT,
UPDATE, DELETE, MERGE) executes against managed storage directly and
against BLMTs via copy-on-write file rewrites committed through Big
Metadata transactions (§3.5).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.data.batch import RecordBatch, batch_from_pydict, concat_batches
from repro.data.column import Column
from repro.data.types import Schema
from repro.errors import AnalysisError, QueryError
from repro.metastore.catalog import (
    MetadataCacheConfig,
    MetadataCacheMode,
    StorageDescriptor,
    TableInfo,
    TableKind,
)
from repro.metastore.constraints import ConstraintSet
from repro.security.iam import Permission, Principal
from repro.sql import ast_nodes as ast
from repro.sql.analysis import extract_constraints
from repro.sql.expressions import Binder, evaluate, evaluate_predicate
from repro.storageapi.read_api import OBJECT_TABLE_SCHEMA

from repro.core.blmt import BlmtManager


class TableManager:
    """Creates tables and executes DML for a platform."""

    def __init__(self, platform) -> None:
        self.platform = platform
        self.blmt = BlmtManager(
            bigmeta=platform.bigmeta,
            stores=platform.stores,
            read_api=platform.read_api,
            ctx=platform.ctx,
        )

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def create_managed_table(
        self, dataset: str, name: str, schema: Schema, replace: bool = False
    ) -> TableInfo:
        table = TableInfo(
            project=self.platform.config.project,
            dataset=dataset,
            name=name,
            kind=TableKind.MANAGED,
            schema=schema,
        )
        self.platform.catalog.create_table(table, replace=replace)
        self.platform.managed.create(table.table_id, schema, replace=replace)
        return table

    def create_biglake_table(
        self,
        principal: Principal,
        dataset: str,
        name: str,
        schema: Schema,
        bucket: str,
        prefix: str,
        connection_name: str,
        partition_columns: list[str] | None = None,
        cache_mode: MetadataCacheMode = MetadataCacheMode.DISABLED,
        max_staleness_ms: float = 3_600_000.0,
    ) -> TableInfo:
        """Create a BigLake table over existing lake files (§3).

        The creating user must be authorized to *use* the connection; the
        connection's service account — not the user — must hold bucket
        access (delegated access, §3.1).
        """
        conn = self.platform.connections.get_connection(connection_name)
        self.platform.connections.authorize_use(principal, conn)
        location = self.platform.stores.find_bucket(bucket).region.location
        table = TableInfo(
            project=self.platform.config.project,
            dataset=dataset,
            name=name,
            kind=TableKind.BIGLAKE,
            schema=schema,
            storage=StorageDescriptor(bucket=bucket, prefix=prefix, location=location),
            connection_name=connection_name,
            partition_columns=partition_columns or [],
            cache_config=MetadataCacheConfig(
                mode=cache_mode, max_staleness_ms=max_staleness_ms
            ),
        )
        self.platform.catalog.create_table(table)
        if cache_mode is not MetadataCacheMode.DISABLED:
            self.platform.bigmeta.register_table(table.table_id)
        return table

    def create_object_table(
        self,
        principal: Principal,
        dataset: str,
        name: str,
        bucket: str,
        prefix: str,
        connection_name: str,
        max_staleness_ms: float = 3_600_000.0,
    ) -> TableInfo:
        """Create an Object table over unstructured objects (§4.1)."""
        conn = self.platform.connections.get_connection(connection_name)
        self.platform.connections.authorize_use(principal, conn)
        location = self.platform.stores.find_bucket(bucket).region.location
        table = TableInfo(
            project=self.platform.config.project,
            dataset=dataset,
            name=name,
            kind=TableKind.OBJECT,
            schema=OBJECT_TABLE_SCHEMA,
            storage=StorageDescriptor(bucket=bucket, prefix=prefix, location=location),
            connection_name=connection_name,
            cache_config=MetadataCacheConfig(
                mode=MetadataCacheMode.AUTOMATIC, max_staleness_ms=max_staleness_ms
            ),
        )
        self.platform.catalog.create_table(table)
        self.platform.bigmeta.register_table(table.table_id)
        return table

    def create_blmt(
        self,
        principal: Principal,
        dataset: str,
        name: str,
        schema: Schema,
        bucket: str,
        prefix: str,
        connection_name: str,
        clustering_columns: list[str] | None = None,
        auto_iceberg_snapshots: bool = False,
    ) -> TableInfo:
        """Create a BigLake managed table (§3.5): data in the customer
        bucket, metadata owned by Big Metadata.

        ``auto_iceberg_snapshots=True`` enables the paper's future-work
        behaviour: an Iceberg snapshot is exported as part of every table
        commit instead of on explicit request."""
        conn = self.platform.connections.get_connection(connection_name)
        self.platform.connections.authorize_use(principal, conn)
        # BLMT writes require a connection with write access to the bucket.
        self.platform.iam.require(
            conn.service_account, Permission.STORAGE_OBJECTS_CREATE, f"buckets/{bucket}"
        )
        location = self.platform.stores.find_bucket(bucket).region.location
        table = TableInfo(
            project=self.platform.config.project,
            dataset=dataset,
            name=name,
            kind=TableKind.BLMT,
            schema=schema,
            storage=StorageDescriptor(bucket=bucket, prefix=prefix, location=location),
            connection_name=connection_name,
            clustering_columns=clustering_columns or [],
            options={"auto_iceberg_snapshots": auto_iceberg_snapshots},
        )
        self.platform.catalog.create_table(table)
        self.platform.bigmeta.register_table(table.table_id)
        return table

    # ------------------------------------------------------------------
    # DML dispatch (engine callback)
    # ------------------------------------------------------------------

    def execute_dml(self, statement: ast.Statement, engine, principal: Principal):
        from repro.engine.engine import QueryResult, QueryStats

        if isinstance(statement, ast.CreateTableAsSelect):
            return self._ctas(statement, engine, principal)
        if isinstance(statement, ast.InsertValues):
            return self._insert_values(statement, engine, principal)
        if isinstance(statement, ast.InsertSelect):
            return self._insert_select(statement, engine, principal)
        if isinstance(statement, ast.Update):
            return self._update(statement, engine, principal)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, engine, principal)
        if isinstance(statement, ast.Merge):
            return self._merge(statement, engine, principal)
        if isinstance(statement, ast.CreateModel):
            self.platform.ml.create_model_from_sql(statement)
            return self._dml_result(0)
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    def _dml_result(self, rows_affected: int):
        from repro.engine.engine import QueryResult, QueryStats

        return QueryResult(
            schema=Schema(()),
            batches=[],
            stats=QueryStats(),
            rows_affected=rows_affected,
        )

    def _require_write(self, principal: Principal, table: TableInfo) -> None:
        self.platform.iam.require(
            principal, Permission.TABLES_UPDATE_DATA, table.resource_name
        )

    # -- CTAS -----------------------------------------------------------------

    def _ctas(self, statement: ast.CreateTableAsSelect, engine, principal: Principal):
        result = engine.execute(statement.query, principal)
        if len(statement.table) < 2:
            raise AnalysisError("CTAS target must be dataset.table")
        dataset, name = statement.table[-2], statement.table[-1]
        table = self.create_managed_table(dataset, name, result.schema, replace=statement.replace)
        if statement.replace:
            self.platform.managed.truncate(table.table_id)
        for batch in result.batches:
            self.platform.managed.append(table.table_id, batch)
        out = self._dml_result(result.num_rows)
        out.stats = result.stats
        return out

    # -- INSERT ----------------------------------------------------------------

    def _insert_values(self, statement: ast.InsertValues, engine, principal: Principal):
        table = self.platform.catalog.resolve(statement.table)
        self._require_write(principal, table)
        binder = Binder(Schema(()), engine.functions)
        one_row = _placeholder_batch()
        columns = statement.columns or table.schema.names()
        data: dict[str, list[Any]] = {name: [] for name in table.schema.names()}
        for row in statement.rows:
            if len(row) != len(columns):
                raise AnalysisError("INSERT arity mismatch")
            values = {
                col: evaluate(binder.bind(expr), one_row)[0]
                for col, expr in zip(columns, row)
            }
            for name in data:
                data[name].append(values.get(name))
        batch = batch_from_pydict(table.schema, data)
        self._append(table, batch)
        return self._dml_result(batch.num_rows)

    def _insert_select(self, statement: ast.InsertSelect, engine, principal: Principal):
        table = self.platform.catalog.resolve(statement.table)
        self._require_write(principal, table)
        result = engine.execute(statement.query, principal)
        columns = statement.columns or table.schema.names()
        if len(result.schema) != len(columns):
            raise AnalysisError("INSERT SELECT arity mismatch")
        combined = concat_batches(result.schema, result.batches)
        data: dict[str, list[Any]] = {}
        by_position = combined.to_pydict()
        source_names = list(by_position)
        for name in table.schema.names():
            if name in columns:
                data[name] = by_position[source_names[columns.index(name)]]
            else:
                data[name] = [None] * combined.num_rows
        batch = batch_from_pydict(table.schema, data)
        self._append(table, batch)
        return self._dml_result(batch.num_rows)

    def _append(self, table: TableInfo, batch: RecordBatch) -> None:
        if table.kind is TableKind.MANAGED:
            self._reject_in_txn(table)
            self.platform.managed.append(table.table_id, batch)
            table.version += 1
        elif table.kind is TableKind.BLMT:
            self.blmt.insert(table, [batch])
        else:
            raise QueryError(f"cannot INSERT into {table.kind.value} table")

    # -- UPDATE / DELETE ------------------------------------------------------------

    def _update(self, statement: ast.Update, engine, principal: Principal):
        table = self.platform.catalog.resolve(statement.table)
        self._require_write(principal, table)
        binder = Binder(table.schema, engine.functions)
        predicate = binder.bind(statement.where) if statement.where is not None else None
        assignments = [
            (table.schema.field(col).name, binder.bind(expr))
            for col, expr in statement.assignments
        ]

        def transform(batch: RecordBatch):
            mask = (
                evaluate_predicate(predicate, batch)
                if predicate is not None
                else np.ones(batch.num_rows, dtype=bool)
            )
            affected = int(mask.sum())
            if affected == 0:
                return batch, 0
            out = batch
            for name, bound in assignments:
                new_col = evaluate(bound, batch)
                old_col = batch.column(name)
                merged_values = np.where(mask, new_col.values, old_col.values)
                merged_valid = np.where(mask, new_col.is_valid(), old_col.is_valid())
                field = table.schema.field(name)
                merged = Column(
                    field.dtype, merged_values,
                    None if bool(merged_valid.all()) else merged_valid,
                )
                out = out.with_column(field, merged)
            return out, affected

        return self._dml_result(self._mutate(table, statement.where, transform))

    def _delete(self, statement: ast.Delete, engine, principal: Principal):
        table = self.platform.catalog.resolve(statement.table)
        self._require_write(principal, table)
        binder = Binder(table.schema, engine.functions)
        predicate = binder.bind(statement.where) if statement.where is not None else None

        def transform(batch: RecordBatch):
            if predicate is None:
                return None, batch.num_rows
            mask = evaluate_predicate(predicate, batch)
            affected = int(mask.sum())
            if affected == 0:
                return batch, 0
            remaining = batch.filter(~mask)
            if remaining.num_rows == 0:
                return None, affected
            return remaining, affected

        return self._dml_result(self._mutate(table, statement.where, transform))

    def _reject_in_txn(self, table: TableInfo) -> None:
        """Managed tables apply DML in place (no buffered commit protocol),
        so letting one slip inside a multi-table transaction would silently
        break atomicity — fail loudly instead."""
        if self.blmt._active_txn() is not None:
            raise QueryError(
                f"cannot write {table.kind.value} table {table.table_id} inside "
                "a multi-table transaction (BLMT tables only)"
            )

    def _mutate(self, table: TableInfo, where: ast.Expr | None, transform) -> int:
        if table.kind is TableKind.MANAGED:
            self._reject_in_txn(table)
            batches = self.platform.managed.read(table.table_id)
            affected = 0
            new_batches = []
            for batch in batches:
                result, n = transform(batch)
                affected += n
                if result is not None and result.num_rows:
                    new_batches.append(result)
            self.platform.managed.replace_contents(table.table_id, new_batches)
            table.version += 1
            return affected
        if table.kind is TableKind.BLMT:
            constraints = extract_constraints(where)
            return self.blmt.rewrite_rows(table, constraints, transform)
        raise QueryError(f"cannot mutate {table.kind.value} table")

    # -- MERGE ----------------------------------------------------------------------

    def _merge(self, statement: ast.Merge, engine, principal: Principal):
        """MERGE: hash the source on the equi-keys of the ON clause, then
        rewrite matching target rows / insert unmatched source rows."""
        table = self.platform.catalog.resolve(statement.target)
        self._require_write(principal, table)
        target_alias = statement.target_alias or statement.target[-1]

        # Materialize the source with qualified column names.
        source_select = ast.Select(items=[ast.SelectItem(ast.Star())], from_item=statement.source)
        source_result = engine.execute(source_select, principal)
        source_alias = getattr(statement.source, "alias", None) or "source"
        source = concat_batches(source_result.schema, source_result.batches)
        source_schema = Schema(
            tuple(
                type(f)(f"{source_alias}.{f.name.rsplit('.', 1)[-1]}", f.dtype, f.nullable)
                for f in source.schema
            )
        )
        source = RecordBatch(source_schema, source.columns)

        # Split the ON condition into target/source key expressions.
        target_schema = table.schema.rename_all(target_alias)
        from repro.engine.planner import _split_join_condition

        equi, residual = _split_join_condition(statement.on)
        if not equi or residual is not None:
            raise AnalysisError("MERGE requires a pure equi-join ON clause")
        target_binder = Binder(target_schema, engine.functions)
        source_binder = Binder(source_schema, engine.functions)
        target_keys: list = []
        source_keys: list = []
        for left, right in equi:
            if _binds_in(target_binder, left) and _binds_in(source_binder, right):
                target_keys.append(left)
                source_keys.append(right)
            elif _binds_in(target_binder, right) and _binds_in(source_binder, left):
                target_keys.append(right)
                source_keys.append(left)
            else:
                raise AnalysisError("MERGE ON must compare target and source columns")

        source_key_cols = [evaluate(source_binder.bind(k), source) for k in source_keys]
        source_key_lists = [c.to_pylist() for c in source_key_cols]
        source_index: dict[tuple, int] = {}
        for i in range(source.num_rows):
            key = tuple(lst[i] for lst in source_key_lists)
            if key in source_index:
                raise QueryError("MERGE source has duplicate join keys")
            source_index[key] = i

        combined_schema = target_schema.merge(source_schema)
        combined_binder = Binder(combined_schema, engine.functions)
        matched_source_rows: set[int] = set()

        def transform(batch: RecordBatch):
            qualified = batch.rename(target_schema.names())
            key_cols = [evaluate(target_binder.bind(k), qualified) for k in target_keys]
            key_lists = [c.to_pylist() for c in key_cols]
            match_idx = np.full(batch.num_rows, -1, dtype=np.int64)
            for i in range(batch.num_rows):
                j = source_index.get(tuple(lst[i] for lst in key_lists))
                if j is not None:
                    match_idx[i] = j
                    matched_source_rows.add(j)
            matched_mask = match_idx >= 0
            if not matched_mask.any():
                return batch, 0
            source_rows = source.take(np.where(matched_mask, match_idx, 0))
            combined = RecordBatch(
                combined_schema, list(qualified.columns) + list(source_rows.columns)
            )
            keep = np.ones(batch.num_rows, dtype=bool)
            out = batch
            decided = np.zeros(batch.num_rows, dtype=bool)
            affected = 0
            for when in statement.whens:
                if not when.matched:
                    continue
                applies = matched_mask & ~decided
                if when.condition is not None:
                    cond = evaluate_predicate(
                        combined_binder.bind(when.condition), combined
                    )
                    applies = applies & cond
                if not applies.any():
                    continue
                decided |= applies
                affected += int(applies.sum())
                if when.action == "DELETE":
                    keep &= ~applies
                elif when.action == "UPDATE":
                    for col, expr in when.assignments:
                        field = table.schema.field(col)
                        new_col = evaluate(combined_binder.bind(expr), combined)
                        old_col = out.column(field.name)
                        merged_values = np.where(applies, new_col.values, old_col.values)
                        merged_valid = np.where(
                            applies, new_col.is_valid(), old_col.is_valid()
                        )
                        out = out.with_column(
                            field,
                            Column(
                                field.dtype, merged_values,
                                None if bool(merged_valid.all()) else merged_valid,
                            ),
                        )
            if affected == 0:
                return batch, 0
            result = out.filter(keep)
            if result.num_rows == 0:
                return None, affected
            return result, affected

        affected = self._mutate_all_files(table, transform)

        # WHEN NOT MATCHED: insert source rows no target row matched.
        insert_whens = [w for w in statement.whens if not w.matched and w.action == "INSERT"]
        inserted = 0
        if insert_whens:
            unmatched = [i for i in range(source.num_rows) if i not in matched_source_rows]
            if unmatched:
                when = insert_whens[0]
                rows_batch = source.take(np.asarray(unmatched, dtype=np.int64))
                cond_mask = np.ones(rows_batch.num_rows, dtype=bool)
                if when.condition is not None:
                    cond_mask = evaluate_predicate(
                        source_binder.bind(when.condition), rows_batch
                    )
                rows_batch = rows_batch.filter(cond_mask)
                if rows_batch.num_rows:
                    columns = when.insert_columns or table.schema.names()
                    data: dict[str, list[Any]] = {}
                    for name in table.schema.names():
                        if name in columns:
                            expr = when.insert_values[columns.index(name)]
                            col = evaluate(source_binder.bind(expr), rows_batch)
                            data[name] = col.to_pylist()
                        else:
                            data[name] = [None] * rows_batch.num_rows
                    batch = batch_from_pydict(table.schema, data)
                    self._append(table, batch)
                    inserted = batch.num_rows
        return self._dml_result(affected + inserted)

    def _mutate_all_files(self, table: TableInfo, transform) -> int:
        """Run a transform over every file/batch of the target (MERGE must
        see all rows to find matches)."""
        if table.kind is TableKind.MANAGED:
            batches = self.platform.managed.read(table.table_id)
            affected = 0
            new_batches = []
            for batch in batches:
                result, n = transform(batch)
                affected += n
                if result is not None and result.num_rows:
                    new_batches.append(result)
            self.platform.managed.replace_contents(table.table_id, new_batches)
            table.version += 1
            return affected
        if table.kind is TableKind.BLMT:
            return self.blmt.rewrite_rows(table, ConstraintSet(), transform)
        raise QueryError(f"cannot MERGE into {table.kind.value} table")


def _binds_in(binder: Binder, expr: ast.Expr) -> bool:
    try:
        binder.bind(expr)
        return True
    except AnalysisError:
        return False


def _placeholder_batch() -> RecordBatch:
    from repro.data.types import DataType

    schema = Schema.of(("$dummy", DataType.INT64))
    return RecordBatch(schema, [Column(DataType.INT64, [0])])
