"""Prometheus-style metrics: counters, gauges, histograms, registry.

Metric names follow the Prometheus convention (``snake_case`` with a
``_total`` suffix for counters, base units in the name, e.g.
``objectstore_ops_total`` / ``query_elapsed_ms``). Labels are passed as
keyword arguments at observation time::

    ctx.metrics.counter("objectstore_ops_total").inc(op="get", region="gcp/us-central1")
    ctx.metrics.histogram("query_elapsed_ms").observe(stats.elapsed_ms)

:meth:`MetricsRegistry.render` emits the text exposition format, sorted
for deterministic output.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping: backslash, double-quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing per-label-set counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def get(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def samples(self) -> Iterable[tuple[str, LabelKey, float]]:
        for key in sorted(self._values):
            yield self.name, key, self._values[key]


class Gauge:
    """A value that can go up or down (per label set).

    A label set that stops being meaningful (a principal with no queued
    jobs, a drained pool) must be :meth:`remove`-d, not left at its last
    value: the scraper (:class:`~repro.obs.tsdb.MetricsScraper`) turns a
    vanished series into a staleness marker instead of repeating a value
    that no longer describes anything.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def inc(self, delta: float = 1.0, **labels: Any) -> None:
        self.add(delta, **labels)

    def dec(self, delta: float = 1.0, **labels: Any) -> None:
        self.add(-delta, **labels)

    def get(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def remove(self, **labels: Any) -> bool:
        """Drop one label series entirely (it stops being exported; the
        next scrape records a staleness marker for it). Returns whether
        the series existed."""
        return self._values.pop(_label_key(labels), None) is not None

    def label_sets(self) -> list[LabelKey]:
        """The currently live label series, sorted (for samplers that
        need to diff consecutive scrapes)."""
        return sorted(self._values)

    def samples(self) -> Iterable[tuple[str, LabelKey, float]]:
        for key in sorted(self._values):
            yield self.name, key, self._values[key]


DEFAULT_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, math.inf,
)


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if self.buckets[-1] != math.inf:
            self.buckets = self.buckets + (math.inf,)
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the q-quantile from the cumulative buckets, following
        Prometheus ``histogram_quantile``:

        * the containing bucket is the *first* one whose cumulative count
          reaches ``rank = q * total`` (so a rank landing exactly on a
          bucket boundary resolves to that bucket's upper bound);
        * linear interpolation within the containing bucket, whose lower
          bound is the previous bucket's upper bound (0 for the first
          bucket with a positive upper bound);
        * a first bucket with a non-positive upper bound returns that
          upper bound (no interpolation down from 0);
        * the +Inf bucket returns the previous finite bound.

        One documented deviation: ``q=0.0`` with empty leading buckets
        returns the lower bound of the first populated bucket (the
        minimum's bucket edge) where strict Prometheus divides 0/0 into
        NaN. Returns NaN with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        key = _label_key(labels)
        total = self._totals.get(key, 0)
        if total == 0:
            return math.nan
        counts = self._counts[key]
        rank = q * total
        cumulative = 0
        b = len(self.buckets) - 1
        for i in range(len(self.buckets)):
            cumulative += counts[i]
            if cumulative >= rank:
                b = i
                break
        if self.buckets[b] == math.inf:
            return self.buckets[b - 1] if b > 0 else math.nan
        if b == 0 and self.buckets[0] <= 0:
            return self.buckets[0]
        lower = 0.0 if b == 0 else self.buckets[b - 1]
        upper = self.buckets[b]
        count = counts[b]
        if count == 0:
            # Only reachable at rank 0 (q=0 with empty leading buckets):
            # report the first populated bucket's lower edge.
            for i in range(b, len(self.buckets)):
                if counts[i] > 0:
                    if self.buckets[i] == math.inf:
                        return self.buckets[i - 1] if i > 0 else math.nan
                    return 0.0 if i == 0 else self.buckets[i - 1]
            return math.nan
        below = cumulative - count
        fraction = (rank - below) / count
        return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)

    def samples(self) -> Iterable[tuple[str, LabelKey, float]]:
        for key in sorted(self._totals):
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += self._counts[key][i]
                yield (
                    f"{self.name}_bucket",
                    key + (("le", _fmt_value(bound)),),
                    float(cumulative),
                )
            yield f"{self.name}_sum", key, self._sums[key]
            yield f"{self.name}_count", key, float(self._totals[key])


class MetricsRegistry:
    """Get-or-create home for every metric of one platform."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, name: str, cls, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} already registered as {metric.kind}")
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def has(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """{metric_name: {rendered_labels: value}} for programmatic reads."""
        out: dict[str, dict[str, float]] = {}
        for name in self.names():
            metric = self._metrics[name]
            series: dict[str, float] = {}
            for sample_name, key, value in metric.samples():
                series[f"{sample_name}{_render_labels(key)}"] = value
            out[name] = series
        return out

    def render(self) -> str:
        """The Prometheus text exposition format (sorted, deterministic)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, key, value in metric.samples():
                lines.append(f"{sample_name}{_render_labels(key)} {_fmt_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")
