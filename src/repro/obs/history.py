"""Persistent job history: the record behind ``INFORMATION_SCHEMA.JOBS``.

Every :meth:`~repro.engine.engine.QueryEngine.execute` call — SELECT or
DML, succeeded or failed — lands one :class:`JobRecord` in the platform's
:class:`JobHistory`, a bounded ring buffer keyed by a monotonically
assigned ``job_id``. Records carry the paper-relevant execution facts
(principal, SQL text, terminal state, byte/row/file counters, slot and
parallelism info, per-layer self-time breakdown) plus the full span tree,
so the timeline view (``INFORMATION_SCHEMA.JOBS_TIMELINE``) and the trace
exporters (:mod:`repro.obs.export`) can be derived from history alone —
observability you can SELECT, long after the ``QueryResult`` is gone.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NotFoundError
from repro.obs.trace import Span, layer_breakdown

#: Job lifecycle states (mirrors the BigQuery job lifecycle). BigQuery
#: reports one ``DONE`` state plus an error result; we disaggregate the
#: terminal state into SUCCEEDED / FAILED / CANCELLED so history queries
#: need no error-presence join.
PENDING = "PENDING"
RUNNING = "RUNNING"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: States a job can never leave.
DONE_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

#: Span-id floor for synthetic scheduler.task timeline rows (real span ids
#: are small monotonically assigned ints; this keeps the ranges disjoint).
_TASK_SPAN_BASE = 1_000_000


@dataclass
class JobRecord:
    """One completed (or failed) statement execution."""

    job_id: str
    principal: str  # "user:alice" — the str() of the Principal
    sql: str
    kind: str  # select / insertvalues / delete / ... (statement kind)
    engine: str
    state: str  # PENDING | RUNNING | SUCCEEDED | FAILED | CANCELLED
    error: str = ""
    # Stable machine-readable code for the terminal error ("" on success);
    # see repro.errors.error_code. Dashboards and abort budgets key off
    # this instead of parsing free-text error strings.
    error_code: str = ""
    # Multi-table transaction this statement ran inside ("" when none).
    transaction_id: str = ""
    # Lifecycle timestamps (sim-clock ms): creation_ms is stamped at
    # submit time by the job queue, start_ms at admission onto the slot
    # pool, end_ms at the terminal transition. queue_wait_ms is the
    # admission delay (start - creation) the serving benchmarks report.
    creation_ms: float = 0.0
    start_ms: float = 0.0
    end_ms: float = 0.0
    queue_wait_ms: float = 0.0
    # Modeled slot-limited latency for successes; sim wall time for failures.
    total_ms: float = 0.0
    slot_ms: float = 0.0
    bytes_scanned: int = 0
    rows_scanned: int = 0
    rows_produced: int = 0
    files_read: int = 0
    files_total: int = 0
    shuffle_partitions: int = 0
    compute_parallelism: int = 0
    # Object-store traffic attributable to this job (metering delta).
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_egressed: int = 0
    # Chaos/recovery accounting: transient-failure retries charged to this
    # job and whether any degraded (fallback) path served it.
    retry_count: int = 0
    degraded: bool = False
    # Variance attribution (derived from the span tree): time parked in
    # retry backoff, object-store self-time (cold reads the cache missed),
    # and time inside spans a degraded fallback path served.
    backoff_ms: float = 0.0
    cold_read_ms: float = 0.0
    degraded_ms: float = 0.0
    # Data-cache accounting: source bytes served from the slot-local cache
    # and the fraction of all source bytes they represent.
    cache_hit_bytes: int = 0
    cache_hit_ratio: float = 0.0
    # True when the query-result cache served the whole statement (no scan
    # ran and no bytes were charged).
    cache_hit: bool = False
    # Scheduler verdict: max/mean winner task duration, speculative backups
    # launched, and the full per-task timeline (repro.engine.scheduler.
    # TaskRun), which JOBS_TIMELINE exposes as synthetic scheduler rows.
    task_skew: float = 1.0
    speculative_count: int = 0
    task_timeline: list[Any] = field(default_factory=list)
    # Self-time per layer over the job's span tree (empty if tracing off).
    layers_ms: dict[str, float] = field(default_factory=dict)
    trace: Span | None = None

    @property
    def succeeded(self) -> bool:
        return self.state == SUCCEEDED

    @property
    def done(self) -> bool:
        return self.state in DONE_STATES


def timeline_rows(record: JobRecord) -> list[tuple]:
    """Flatten a job's span tree into ``JOBS_TIMELINE`` rows.

    One row per span, depth-first in start order: (job_id, span_id,
    parent_span_id, name, layer, start_ms, duration_ms, self_ms, tags).
    The root's parent_span_id is 0; tags render as sorted ``k=v`` pairs so
    rows stay scalar and deterministic.

    After the span rows, every scheduler task attempt appends one synthetic
    ``scheduler.task`` row (layer ``scheduler``). Task times are *model*
    offsets within the job's elapsed_ms budget, not sim-clock timestamps,
    and their span ids live in a reserved high range so they never collide
    with real spans. These rows appear even when tracing was off — the
    scheduler always runs.
    """
    rows: list[tuple] = []
    if record.trace is not None:
        for span in record.trace.walk():
            tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
            rows.append(
                (
                    record.job_id,
                    span.span_id,
                    span.parent_id or 0,
                    span.name,
                    span.layer or "other",
                    span.start_ms,
                    span.duration_ms,
                    span.self_time_ms(),
                    tags,
                )
            )
    for i, run in enumerate(record.task_timeline):
        tags = " ".join(
            f"{k}={v}"
            for k, v in sorted(
                {
                    "slot": run.slot,
                    "task": run.task,
                    "stage": run.stage,
                    "slow_factor": f"{run.slow_factor:g}",
                    "speculative": run.speculative,
                    "winner": run.winner,
                    "cancelled": run.cancelled,
                }.items()
            )
        )
        rows.append(
            (
                record.job_id,
                _TASK_SPAN_BASE + i,
                0,
                "scheduler.task",
                "scheduler",
                run.start_ms,
                run.end_ms - run.start_ms,
                run.end_ms - run.start_ms,
                tags,
            )
        )
    return rows


class JobHistory:
    """A bounded, append-only ring buffer of job records.

    Owned by the platform (one history across all of its engines, like the
    project-scoped ``INFORMATION_SCHEMA.JOBS``). The ring bound keeps long
    benchmark runs from growing memory without limit; evicted jobs simply
    age out of the queryable window, oldest first.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"history capacity must be positive (got {capacity})")
        self.capacity = capacity
        self._records: deque[JobRecord] = deque(maxlen=capacity)
        self._ids = itertools.count(1)

    def next_job_id(self) -> str:
        """Reserve the next job id (assigned before execution starts, so
        failed jobs burn an id too — matching real job-server behavior)."""
        return f"job_{next(self._ids):06d}"

    def record(self, record: JobRecord) -> JobRecord:
        self._records.append(record)
        return record

    def jobs(self) -> list[JobRecord]:
        """All retained records, oldest first."""
        return list(self._records)

    def get(self, job_id: str) -> JobRecord:
        for record in self._records:
            if record.job_id == job_id:
                return record
        raise NotFoundError(f"job {job_id!r} not in history (evicted or never ran)")

    def has(self, job_id: str) -> bool:
        return any(r.job_id == job_id for r in self._records)

    @property
    def last(self) -> JobRecord | None:
        return self._records[-1] if self._records else None

    def for_principal(self, principal: str) -> list[JobRecord]:
        return [r for r in self._records if r.principal == principal]

    def __len__(self) -> int:
        return len(self._records)


def record_from_trace(record: JobRecord) -> JobRecord:
    """Fill the per-layer breakdown and variance attribution from the
    record's own span tree."""
    if record.trace is not None:
        record.layers_ms = {
            layer: round(ms, 6) for layer, ms in layer_breakdown(record.trace).items()
        }
        backoff = 0.0
        degraded = 0.0
        for span in record.trace.walk():
            if span.name == "retry.backoff":
                backoff += span.duration_ms
            if "degraded" in span.tags:
                degraded += span.duration_ms
        record.backoff_ms = round(backoff, 6)
        record.degraded_ms = round(degraded, 6)
        record.cold_read_ms = record.layers_ms.get("objectstore", 0.0)
    return record


def job_summary(record: JobRecord) -> dict[str, Any]:
    """A compact dict view (used by the CLI and benchmarks)."""
    return {
        "job_id": record.job_id,
        "user": record.principal,
        "state": record.state,
        "kind": record.kind,
        "total_ms": round(record.total_ms, 3),
        "queue_wait_ms": round(record.queue_wait_ms, 3),
        "bytes_scanned": record.bytes_scanned,
        "layers_ms": dict(record.layers_ms),
    }
