"""Sim-time time-series store + metrics scraper (the fleet TSDB).

``INFORMATION_SCHEMA.METRICS`` answers "what is the counter *now*"; this
module answers "what was it *over time*". A :class:`TimeSeriesStore`
keeps append-only ``(t_ms, value)`` points per ``(name, labels)`` series
on the simulated clock, with the Prometheus-shaped window functions the
SLO engine (:mod:`repro.obs.alerts`) evaluates: ``rate()``,
``avg_over_time()``, ``quantile_over_time()`` and friends.

A :class:`MetricsScraper` populates the store from the platform's
:class:`~repro.obs.metrics.MetricsRegistry` on a fixed interval grid:
``maybe_scrape(now_ms)`` is called from the serving layer at submit and
drain points, and catches up every elapsed grid instant — so scrape
timestamps are multiples of the interval regardless of call sites, and a
seeded run produces a byte-identical scrape history.

Staleness: a label series that was present in one scrape and absent from
the next (a :meth:`~repro.obs.metrics.Gauge.remove`-d gauge series) gets
one ``NaN`` *staleness marker* sample, exactly like Prometheus. Window
functions skip markers; ``last()`` returns NaN when the newest sample in
range is a marker — a vanished series never ghosts its final value
forward through ``METRICS_HISTORY``.

Everything here only *reads* the registry and the clock: enabling
scraping can never change query results, fault draws, or job records
(the observer-effect-zero property pinned in tests).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections import deque
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import LabelKey, _label_key, _render_labels

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


def _is_stale(value: float) -> bool:
    return isinstance(value, float) and math.isnan(value)


class _Series:
    """One append-only series: parallel (sorted) time and value arrays."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t_ms: float, value: float) -> None:
        if self.times and t_ms < self.times[-1]:
            raise ValueError(
                f"time-series samples must be appended in time order "
                f"(got {t_ms} after {self.times[-1]})"
            )
        self.times.append(t_ms)
        self.values.append(float(value))


class TimeSeriesStore:
    """Append-only sim-time series keyed by ``(metric name, labels)``.

    Window queries take an evaluation instant ``at_ms`` and a
    ``window_ms`` and operate over the half-open lookback ``(at_ms -
    window_ms, at_ms]`` — Prometheus range-vector semantics. Staleness
    markers (NaN samples) are excluded from every aggregate.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelKey], _Series] = {}

    # -- writes -------------------------------------------------------------

    def record(self, name: str, t_ms: float, value: float, **labels: Any) -> None:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series()
        series.append(t_ms, value)

    def record_stale(self, name: str, t_ms: float, **labels: Any) -> None:
        """Append a staleness marker: the series stopped existing here."""
        self.record(name, t_ms, math.nan, **labels)

    # -- introspection ------------------------------------------------------

    def series_names(self) -> list[str]:
        return sorted({name for name, _ in self._series})

    def series_keys(self, name: str) -> list[LabelKey]:
        return sorted(key for n, key in self._series if n == name)

    def points(self, name: str, **labels: Any) -> list[tuple[float, float]]:
        series = self._series.get((name, _label_key(labels)))
        if series is None:
            return []
        return list(zip(series.times, series.values))

    def __len__(self) -> int:
        return len(self._series)

    def sample_count(self) -> int:
        return sum(len(s.times) for s in self._series.values())

    # -- window queries ------------------------------------------------------

    def _window_values(
        self, name: str, labels: dict[str, Any], at_ms: float, window_ms: float
    ) -> list[float]:
        series = self._series.get((name, _label_key(labels)))
        if series is None:
            return []
        lo = bisect_right(series.times, at_ms - window_ms)
        hi = bisect_right(series.times, at_ms)
        return [v for v in series.values[lo:hi] if not _is_stale(v)]

    def avg_over_time(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        values = self._window_values(name, labels, at_ms, window_ms)
        return sum(values) / len(values) if values else math.nan

    def sum_over_time(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        values = self._window_values(name, labels, at_ms, window_ms)
        return sum(values) if values else math.nan

    def max_over_time(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        values = self._window_values(name, labels, at_ms, window_ms)
        return max(values) if values else math.nan

    def min_over_time(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        values = self._window_values(name, labels, at_ms, window_ms)
        return min(values) if values else math.nan

    def count_over_time(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> int:
        return len(self._window_values(name, labels, at_ms, window_ms))

    def quantile_over_time(
        self, name: str, q: float, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        """Nearest-rank quantile of the raw samples in the window (the
        same convention as :func:`repro.engine.scheduler.duration_quantile`)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1] (got {q})")
        values = sorted(self._window_values(name, labels, at_ms, window_ms))
        if not values:
            return math.nan
        rank = max(0, min(len(values) - 1, math.ceil(q * len(values)) - 1))
        return values[rank]

    def last(self, name: str, at_ms: float, **labels: Any) -> float:
        """The newest sample at or before ``at_ms``. NaN when the series
        has no samples yet — or when the newest one is a staleness marker
        (the series is dead; its old value must not ghost forward)."""
        series = self._series.get((name, _label_key(labels)))
        if series is None:
            return math.nan
        hi = bisect_right(series.times, at_ms)
        if hi == 0:
            return math.nan
        return series.values[hi - 1]

    def rate(
        self, name: str, at_ms: float, window_ms: float, **labels: Any
    ) -> float:
        """Per-second increase of a (monotone) counter series over the
        window: ``(last - first) / window_s``. Our counters never reset,
        so no reset detection is needed; fewer than two live samples in
        the window yields 0.0 (no observable increase)."""
        values = self._window_values(name, labels, at_ms, window_ms)
        if len(values) < 2 or window_ms <= 0:
            return 0.0
        return (values[-1] - values[0]) / (window_ms / 1000.0)


class MetricsScraper:
    """Periodically snapshot a :class:`MetricsRegistry` into the store.

    Scrapes land on the fixed grid ``0, interval_ms, 2*interval_ms, ...``
    of the sim clock: :meth:`maybe_scrape` catches up every grid instant
    ``<= now_ms`` in one pass, so *when* the caller checks does not move
    the scrape timestamps (only which clock state they observe — and the
    serving layer checks at deterministic points). Each scrape also
    appends ``METRICS_HISTORY`` rows ``(scrape_ms, metric, kind, sample,
    value, stale)`` into a bounded ring.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        store: TimeSeriesStore,
        interval_ms: float = 100.0,
        history_rows: int = 50_000,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"scrape interval must be positive (got {interval_ms})")
        self.registry = registry
        self.store = store
        self.interval_ms = interval_ms
        self.rows: deque[tuple] = deque(maxlen=history_rows)
        self.scrape_count = 0
        self._next_ms = 0.0
        # (sample_name, labels) -> kind, as of the previous scrape; used
        # to emit staleness markers for series that vanish.
        self._live: dict[tuple[str, LabelKey], str] = {}

    def maybe_scrape(self, now_ms: float) -> int:
        """Scrape every due grid instant ``<= now_ms``; returns how many
        scrapes ran. Pure reader: never touches the clock or any RNG."""
        ran = 0
        while self._next_ms <= now_ms:
            self._scrape(self._next_ms)
            self._next_ms += self.interval_ms
            ran += 1
        return ran

    def _scrape(self, t_ms: float) -> None:
        self.scrape_count += 1
        seen: dict[tuple[str, LabelKey], str] = {}
        for metric_name in self.registry.names():
            metric = self.registry.get(metric_name)
            for sample_name, key, value in metric.samples():
                seen[(sample_name, key)] = metric.kind
                self.store.record(sample_name, t_ms, value, **dict(key))
                self.rows.append(
                    (
                        t_ms,
                        metric_name,
                        metric.kind,
                        f"{sample_name}{_render_labels(key)}",
                        float(value),
                        False,
                    )
                )
        for (sample_name, key), kind in self._live.items():
            if (sample_name, key) in seen:
                continue
            # The series existed last scrape and is gone now: one
            # staleness marker, then it drops out of the scrape entirely.
            self.store.record_stale(sample_name, t_ms, **dict(key))
            self.rows.append(
                (t_ms, sample_name, kind, f"{sample_name}{_render_labels(key)}",
                 math.nan, True)
            )
        self._live = seen

    def history_rows(self) -> Iterable[tuple]:
        return list(self.rows)
