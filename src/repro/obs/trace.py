"""Span-tree tracing over simulated time.

A :class:`Span` covers one unit of work (an object-store GET, a Big
Metadata prune, a join operator). Spans nest: whatever span is open when
a new one starts becomes its parent, so a query produces a tree whose
root is the engine's ``query`` span. Durations are measured on the
simulation clock, which means a span's duration is *exactly* the
simulated latency charged inside it — the property the observability
tests lean on (object-store span time equals the cost model's charges).

Tags are free-form ``key=value`` annotations (``bytes_scanned``,
``cache_hit``, ``egress_bytes``); the ``layer`` field names the subsystem
(``engine``, ``storageapi``, ``metastore``, ``objectstore``, ``formats``,
``ml``, ``omni``) so renderers and benchmarks can aggregate per layer.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One timed unit of work in a trace tree."""

    span_id: int
    name: str
    layer: str
    start_ms: float
    duration_ms: float = 0.0
    parent_id: int | None = None
    tags: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def add_tag(self, key: str, delta: float) -> None:
        """Accumulate a numeric tag (for per-span byte/row counters)."""
        self.tags[key] = self.tags.get(key, 0) + delta

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All spans in this subtree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def self_time_ms(self) -> float:
        """Duration not covered by child spans (this span's own work)."""
        return max(0.0, self.duration_ms - sum(c.duration_ms for c in self.children))


class _NoopSpan:
    """Shared do-nothing span/context-manager for disabled tracers."""

    __slots__ = ()

    span_id = 0
    name = ""
    layer = ""
    start_ms = 0.0
    duration_ms = 0.0
    parent_id = None
    tags: dict[str, Any] = {}
    children: list[Span] = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def add_tag(self, key: str, delta: float) -> None:
        pass

    def walk(self) -> Iterator[Span]:
        return iter(())


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that closes one span against its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        # A span whose body raises still closes (with the correct sim-time
        # duration) and is marked so failed work is visible in timelines.
        if exc_type is not None:
            self._span.set_tag("error", True)
            self._span.set_tag("error_type", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Produces span trees against a simulation clock.

    One tracer per :class:`~repro.simtime.SimContext`. Completed root
    spans (traces) are retained in a bounded deque so long benchmark
    runs cannot grow memory without bound.
    """

    def __init__(self, clock, enabled: bool = True, max_traces: int = 64) -> None:
        self.clock = clock
        self.enabled = enabled
        self.traces: deque[Span] = deque(maxlen=max_traces)
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def span(self, name: str, layer: str = "", **tags: Any) -> _SpanHandle | _NoopSpan:
        """Open a span as a context manager: ``with tracer.span(...) as s:``."""
        if not self.enabled:
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=next(self._ids),
            name=name,
            layer=layer,
            start_ms=self.clock.now_ms,
            parent_id=parent.span_id if parent is not None else None,
            tags=tags,
        )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _finish(self, span: Span) -> None:
        # Pop back to this span: defensive against a leaked inner span.
        while self._stack:
            top = self._stack.pop()
            top.duration_ms = self.clock.now_ms - top.start_ms
            if top is span:
                break
        if not self._stack:
            self.traces.append(span)

    @property
    def current(self) -> Span | _NoopSpan | None:
        """The innermost open span (None when idle or disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        return self._stack[-1] if self._stack else None

    @property
    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def reset(self) -> None:
        self.traces.clear()
        self._stack.clear()


class _NoopClock:
    now_ms = 0.0


#: A permanently-disabled tracer for components constructed without one.
NOOP_TRACER = Tracer(clock=_NoopClock(), enabled=False)


# --------------------------------------------------------------------------
# Trace analysis & rendering
# --------------------------------------------------------------------------


def layer_breakdown(root: Span) -> dict[str, float]:
    """Self-time per layer across a trace, in simulated milliseconds.

    Each span contributes its *self* time (duration minus child
    durations) to its own layer, so the values sum to the root span's
    duration with no double counting across nested layers.
    """
    totals: dict[str, float] = {}
    for span in root.walk():
        layer = span.layer or "other"
        totals[layer] = totals.get(layer, 0.0) + span.self_time_ms()
    return totals


def layer_time_ms(root: Span, layer: str) -> float:
    """Total span time attributed to one layer (self-time aggregation)."""
    return layer_breakdown(root).get(layer, 0.0)


def render_trace(root: Span, max_spans: int = 2000) -> str:
    """Render a span tree as indented text, deterministically.

    Start offsets are relative to the root (so two identical runs on
    fresh platforms render identically); span ids are omitted for the
    same reason. Trees larger than ``max_spans`` are truncated with a
    trailing note rather than flooding the terminal.
    """
    lines: list[str] = []
    count = 0
    truncated = 0

    def visit(span: Span, depth: int) -> None:
        nonlocal count, truncated
        if count >= max_spans:
            truncated += 1 + sum(1 for _ in span.walk()) - 1
            return
        count += 1
        indent = "  " * depth
        offset = span.start_ms - root.start_ms
        tags = " ".join(
            f"{key}={_fmt_tag(value)}" for key, value in sorted(span.tags.items())
        )
        line = f"{indent}{span.name} [{span.layer or '-'}] +{offset:.3f}ms {span.duration_ms:.3f}ms"
        if tags:
            line += f"  {tags}"
        lines.append(line)
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    if truncated:
        lines.append(f"... {truncated} more spans truncated ...")
    return "\n".join(lines)


def summarize_trace(root: Span) -> dict[str, Any]:
    """Compact per-trace summary benchmarks attach to their results."""
    breakdown = layer_breakdown(root)
    return {
        "total_ms": round(root.duration_ms, 3),
        "span_count": sum(1 for _ in root.walk()),
        "layers_ms": {k: round(v, 3) for k, v in sorted(breakdown.items())},
    }


def _fmt_tag(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
