"""Fleet telemetry: the monitor that watches the serving layer.

One :class:`FleetMonitor` per platform bridges three clocks' worth of
telemetry into the sim-time TSDB (:mod:`repro.obs.tsdb`):

* **Registry scrapes** (clock timeline) — :meth:`FleetMonitor.tick` is
  called from the job queue at submit and drain points and lets the
  :class:`~repro.obs.tsdb.MetricsScraper` catch up its fixed grid; the
  result is ``INFORMATION_SCHEMA.METRICS_HISTORY``.
* **Reservation timelines** (serving timeline) — after every shared-pool
  batch, :meth:`observe_batch` derives per-interval, per-principal rows
  (slot-ms split scan/compute, queue-depth and running averages,
  admissions/completions, fair-share attainment vs. configured weights)
  purely from the pool verdicts — the same
  :class:`~repro.engine.scheduler.TaskRun` attempts that feed
  ``JOBS_TIMELINE``, which is why the two tables tie out by
  construction. The result is ``INFORMATION_SCHEMA.RESERVATION_TIMELINE``.
* **Per-job SLO events** (serving timeline) — each settled job lands
  event samples (queue wait, retried?, degraded?, cache-bypassed?) the
  alert rules window over.

The *serving timeline* is the concatenation of batch model timelines:
when a batch's modeled makespan outruns the real-work clock, the next
batch is re-based at the previous batch's end, so fleet time is
monotone and every TSDB append stays in order.

Naming convention: series scraped from the registry keep their metric
names (``repro_*``); serving-timeline series derived here use bare names
(``pool_slot_busy_ratio``, ``job_queue_wait_ms``, ...) so the two
timelines never interleave one series.

The monitor is a pure *reader* of the serving layer: it never advances
the clock, never draws randomness, and runs strictly after each batch's
verdicts are final — enabling it cannot change query results, fault
draws, or JOBS rows (the observer-effect-zero property test).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.tsdb import MetricsScraper, TimeSeriesStore

if TYPE_CHECKING:
    from repro.simtime import SimContext


def default_alert_rules() -> list[AlertRule]:
    """The stock SLO rule set the serve workload is monitored under.

    Thresholds are sized so a healthy seeded serve run stays quiet and a
    chaos run (transient faults + stragglers + cache bypasses) burns
    deterministically.
    """
    return [
        AlertRule(
            name="queue-wait-p99",
            kind="threshold",
            series="job_queue_wait_ms",
            fn="quantile",
            q=0.99,
            threshold=2000.0,
            comparator=">",
            window_ms=1600.0,
            for_ms=200.0,
            severity="warning",
        ),
        AlertRule(
            name="pool-saturated",
            kind="threshold",
            series="pool_slot_busy_ratio",
            fn="avg",
            threshold=0.95,
            comparator=">",
            window_ms=800.0,
            severity="warning",
        ),
        AlertRule(
            name="retry-budget-burn",
            kind="burn_rate",
            series="job_retried",
            window_ms=1600.0,
            short_window_ms=400.0,
            error_budget=0.2,
            burn_factor=1.0,
            severity="page",
        ),
        AlertRule(
            name="cache-bypass-burn",
            kind="burn_rate",
            series="job_cache_bypass",
            window_ms=1600.0,
            short_window_ms=400.0,
            error_budget=0.25,
            burn_factor=1.0,
            severity="page",
        ),
    ]


@dataclass
class MonitorConfig:
    """Fleet-telemetry policy (off by default: zero observer effect is a
    property we *prove*, but no telemetry is still the cheapest)."""

    enabled: bool = False
    # Registry scrape grid (clock timeline) -> METRICS_HISTORY.
    scrape_interval_ms: float = 100.0
    # Reservation-timeline bucket width (serving timeline).
    timeline_interval_ms: float = 100.0
    # Ring bounds, like the job-history capacity.
    reservation_capacity: int = 8192
    metrics_history_rows: int = 50_000
    # None -> default_alert_rules().
    rules: list[AlertRule] | None = None


@dataclass
class ReservationRow:
    """One (interval, principal) cell of RESERVATION_TIMELINE."""

    period_start_ms: float
    period_end_ms: float
    principal: str
    slot_ms: float = 0.0
    scan_slot_ms: float = 0.0
    compute_slot_ms: float = 0.0
    queue_ms: float = 0.0
    queue_depth_avg: float = 0.0
    running_avg: float = 0.0
    jobs_admitted: int = 0
    jobs_completed: int = 0
    weight: float = 1.0
    attainment: float = 1.0

    def to_row(self) -> tuple:
        return (
            self.period_start_ms, self.period_end_ms, self.principal,
            self.slot_ms, self.scan_slot_ms, self.compute_slot_ms,
            self.queue_ms, self.queue_depth_avg, self.running_avg,
            self.jobs_admitted, self.jobs_completed, self.weight,
            self.attainment,
        )


@dataclass
class _Cell:
    slot_ms: float = 0.0
    scan_ms: float = 0.0
    compute_ms: float = 0.0
    queue_ms: float = 0.0
    running_ms: float = 0.0
    admitted: int = 0
    completed: int = 0


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


class FleetMonitor:
    """Scrapes, samples, and alerts over one platform's serving layer."""

    def __init__(self, ctx: "SimContext", config: MonitorConfig | None = None) -> None:
        self.ctx = ctx
        self.config = config or MonitorConfig()
        self.enabled = self.config.enabled
        self.store = TimeSeriesStore()
        self.scraper = MetricsScraper(
            ctx.metrics,
            self.store,
            interval_ms=self.config.scrape_interval_ms,
            history_rows=self.config.metrics_history_rows,
        )
        self.rules = (
            list(self.config.rules)
            if self.config.rules is not None
            else default_alert_rules()
        )
        self.alerts = AlertEngine(self.rules, self.store, metrics=ctx.metrics)
        self.reservation: deque[ReservationRow] = deque(
            maxlen=self.config.reservation_capacity
        )
        self.batches_observed = 0
        # High-water mark of the serving timeline (see module docstring).
        self._timeline_ms = 0.0
        # Principals with a live queue-depth gauge series (diffed per
        # batch so vanished principals get staleness markers, not ghosts).
        self._gauged: set[str] = set()

    # -- clock-timeline scraping ---------------------------------------------

    def tick(self, now_ms: float | None = None) -> int:
        """Catch the scraper up to ``now_ms`` (defaults to the clock)."""
        if not self.enabled:
            return 0
        if now_ms is None:
            now_ms = self.ctx.clock.now_ms
        return self.scraper.maybe_scrape(now_ms)

    # -- serving-timeline observation ----------------------------------------

    def observe_batch(
        self,
        anchor_ms: float,
        entries: list[dict[str, Any]],
        slots: int,
        weights: dict[str, float] | None = None,
    ) -> None:
        """Derive telemetry for one settled shared-pool batch.

        ``entries`` is one dict per job: ``principal``, ``verdict`` (the
        :class:`~repro.serving.pool.JobVerdict`), plus the per-job SLO
        facts the queue observed around the real work (``retried``,
        ``degraded``, ``cache_bypass``). Times inside a verdict are
        batch-model offsets; they are re-based onto the monotone serving
        timeline here.
        """
        if not self.enabled or not entries:
            return
        self.batches_observed += 1
        weights = dict(weights or {})
        step = self.config.timeline_interval_ms
        base = max(anchor_ms, self._timeline_ms)
        batch_end = max(e["verdict"].end_ms for e in entries)
        n_buckets = max(1, math.ceil(max(batch_end, 1e-9) / step))
        cells: dict[tuple[int, str], _Cell] = {}

        def cell(b: int, principal: str) -> _Cell:
            got = cells.get((b, principal))
            if got is None:
                got = cells[(b, principal)] = _Cell()
            return got

        def spread(p: str, t0: float, t1: float, attr: str) -> None:
            if t1 <= t0:
                return
            b = max(0, int(t0 // step))
            while b < n_buckets and b * step < t1:
                part = _overlap(t0, t1, b * step, (b + 1) * step)
                if part > 0:
                    c = cell(b, p)
                    setattr(c, attr, getattr(c, attr) + part)
                b += 1

        events: list[tuple[float, str, dict[str, str], float]] = []
        for entry in sorted(entries, key=lambda e: e["verdict"].key):
            v = entry["verdict"]
            p = entry["principal"]
            queued_until = v.admitted_ms if v.admitted else v.end_ms
            spread(p, v.arrival_ms, queued_until, "queue_ms")
            if v.admitted:
                spread(p, v.admitted_ms, v.end_ms, "running_ms")
                b = min(n_buckets - 1, int(v.admitted_ms // step))
                cell(b, p).admitted += 1
            b = min(n_buckets - 1, int(v.end_ms // step))
            cell(b, p).completed += 1
            for run in v.runs:
                t0 = v.admitted_ms + run.start_ms
                t1 = v.admitted_ms + run.end_ms
                spread(p, t0, t1, "slot_ms")
                spread(
                    p, t0, t1,
                    "compute_ms" if run.stage == "compute" else "scan_ms",
                )
            events.append(
                (v.end_ms, "job_queue_wait_ms", {"principal": p}, v.queue_wait_ms)
            )
            events.append(
                (v.end_ms, "job_retried", {}, 1.0 if entry.get("retried") else 0.0)
            )
            events.append(
                (v.end_ms, "job_degraded", {}, 1.0 if entry.get("degraded") else 0.0)
            )
            events.append(
                (
                    v.end_ms, "job_cache_bypass", {},
                    1.0 if entry.get("cache_bypass") else 0.0,
                )
            )

        # Reservation rows + bucket series, bucket order (time-ordered).
        batch_principals = sorted({e["principal"] for e in entries})
        depth_sum: dict[str, float] = {}
        for b in range(n_buckets):
            active = sorted(p for (bb, p) in cells if bb == b)
            if not active:
                continue
            total_slot = sum(cells[(b, p)].slot_ms for p in active)
            weight_sum = sum(max(weights.get(p, 1.0), 1e-9) for p in active)
            t_end = base + (b + 1) * step
            self.store.record(
                "pool_slot_busy_ratio", t_end, total_slot / (max(1, slots) * step)
            )
            for p in active:
                c = cells[(b, p)]
                weight = weights.get(p, 1.0)
                fair = max(weight, 1e-9) / weight_sum
                attainment = (
                    (c.slot_ms / total_slot) / fair if total_slot > 0 else 1.0
                )
                row = ReservationRow(
                    period_start_ms=base + b * step,
                    period_end_ms=t_end,
                    principal=p,
                    slot_ms=c.slot_ms,
                    scan_slot_ms=c.scan_ms,
                    compute_slot_ms=c.compute_ms,
                    queue_ms=c.queue_ms,
                    queue_depth_avg=c.queue_ms / step,
                    running_avg=c.running_ms / step,
                    jobs_admitted=c.admitted,
                    jobs_completed=c.completed,
                    weight=weight,
                    attainment=attainment,
                )
                self.reservation.append(row)
                self.store.record(
                    "pool_queue_depth", t_end, row.queue_depth_avg, principal=p
                )
                self.store.record(
                    "pool_attainment", t_end, attainment, principal=p
                )
                depth_sum[p] = depth_sum.get(p, 0.0) + row.queue_depth_avg

        # Per-job SLO event samples, time-sorted per the append contract.
        for t, name, labels, value in sorted(
            events, key=lambda e: (e[0], e[1], sorted(e[2].items()))
        ):
            self.store.record(name, base + t, value, **labels)

        # Deterministic alert sweep over the batch's grid instants.
        for b in range(1, n_buckets + 1):
            self.alerts.evaluate(base + b * step)

        self._timeline_ms = base + n_buckets * step
        self._update_gauges(batch_principals, depth_sum, n_buckets)

    def _update_gauges(
        self, batch_principals: list[str], depth_sum: dict[str, float], buckets: int
    ) -> None:
        """Live-registry view of the last batch; vanished principals are
        remove()-d so the next scrape emits staleness markers instead of
        repeating their final values forever."""
        metrics = self.ctx.metrics
        depth = metrics.gauge(
            "repro_pool_queue_depth", "avg queued jobs per principal, last batch"
        )
        for p in batch_principals:
            depth.set(depth_sum.get(p, 0.0) / max(1, buckets), principal=p)
        for p in sorted(self._gauged - set(batch_principals)):
            depth.remove(principal=p)
        self._gauged = set(batch_principals)
        metrics.counter(
            "repro_monitor_batches_total", "shared-pool batches observed"
        ).inc()
        gauge = metrics.gauge(
            "repro_monitor_observing", "1 while a batch observation is open"
        )
        gauge.inc()
        gauge.dec()
        metrics.gauge(
            "repro_monitor_reservation_rows", "retained RESERVATION_TIMELINE rows"
        ).set(float(len(self.reservation)))

    # -- system-table views ---------------------------------------------------

    def reservation_rows(self) -> list[tuple]:
        return [row.to_row() for row in self.reservation]

    def metrics_history_rows(self) -> list[tuple]:
        return list(self.scraper.rows)

    def alert_rows(self) -> list[tuple]:
        return [event.to_row() for event in self.alerts.events]

    def summary(self) -> dict[str, Any]:
        """A compact JSON-able view (used by the monitor CLI report)."""
        return {
            "enabled": self.enabled,
            "batches_observed": self.batches_observed,
            "scrapes": self.scraper.scrape_count,
            "metrics_history_rows": len(self.scraper.rows),
            "reservation_rows": len(self.reservation),
            "tsdb_series": len(self.store),
            "tsdb_samples": self.store.sample_count(),
            "alerts": [event.to_dict() for event in self.alerts.events],
            "alerts_firing": self.alerts.firing(),
            "rules": [rule.name for rule in self.rules],
        }


__all__ = [
    "FleetMonitor",
    "MonitorConfig",
    "ReservationRow",
    "default_alert_rules",
]
