"""repro.obs — zero-dependency tracing + metrics ("Dapper-lite").

The paper's production claims all rest on *measured* internals; this
package is how the reproduction measures its own:

* :mod:`repro.obs.trace` — per-query span trees over simulated time. A
  :class:`Tracer` lives on the shared :class:`~repro.simtime.SimContext`
  and every layer (object store, Big Metadata, Read API, Superluminal,
  engine operators, ML, Omni networking) opens spans around its work, so
  a query's simulated latency decomposes exactly into per-layer time.
* :mod:`repro.obs.metrics` — a Prometheus-style registry of counters,
  gauges, and histograms with a text exposition dump, also hanging off
  the ``SimContext`` so one platform reads one set of meters.
* :mod:`repro.obs.history` — the persistent :class:`JobHistory` ring
  buffer every ``execute()`` records into, keeping per-job stats and span
  trees queryable after the ``QueryResult`` is gone.
* :mod:`repro.obs.system_tables` — ``INFORMATION_SCHEMA`` virtual tables
  (JOBS, JOBS_TIMELINE, TABLE_STORAGE, DATA_ACCESS, METRICS, plus the
  fleet-telemetry RESERVATION_TIMELINE / METRICS_HISTORY / ALERTS) the
  planner resolves like ordinary relations, governed by the platform IAM.
* :mod:`repro.obs.tsdb` — the sim-time time-series store and the metrics
  scraper behind ``METRICS_HISTORY`` (Prometheus-shaped window queries,
  staleness markers).
* :mod:`repro.obs.alerts` — the declarative SLO alert engine (threshold
  and multi-window burn-rate rules) evaluated deterministically on the
  sim clock.
* :mod:`repro.obs.monitor` — the :class:`FleetMonitor` that wires the
  scraper, reservation timelines, and alert engine onto one platform's
  serving layer as a pure reader.
* :mod:`repro.obs.export` — Chrome-trace and OTLP-style JSON exporters
  for any retained span tree, plus whole-serve-run exports with
  per-principal lanes.

Tracing is always-on but cheap to disable: ``ctx.tracer.enabled = False``
turns every ``span()`` call into a shared no-op context manager.
"""

from repro.obs.alerts import AlertEngine, AlertEvent, AlertRule
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    otlp_spans,
    otlp_spans_json,
    serve_chrome_trace,
    serve_chrome_trace_json,
    serve_otlp_spans,
    serve_otlp_spans_json,
)
from repro.obs.history import JobHistory, JobRecord, job_summary, timeline_rows
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.monitor import FleetMonitor, MonitorConfig, default_alert_rules
from repro.obs.system_tables import SystemTables
from repro.obs.tsdb import MetricsScraper, TimeSeriesStore
from repro.obs.trace import (
    NOOP_TRACER,
    Span,
    Tracer,
    layer_breakdown,
    layer_time_ms,
    render_trace,
    summarize_trace,
)

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "Counter",
    "FleetMonitor",
    "Gauge",
    "Histogram",
    "JobHistory",
    "JobRecord",
    "MetricsRegistry",
    "MetricsScraper",
    "MonitorConfig",
    "NOOP_TRACER",
    "Span",
    "SystemTables",
    "TimeSeriesStore",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "default_alert_rules",
    "job_summary",
    "layer_breakdown",
    "layer_time_ms",
    "otlp_spans",
    "otlp_spans_json",
    "render_trace",
    "serve_chrome_trace",
    "serve_chrome_trace_json",
    "serve_otlp_spans",
    "serve_otlp_spans_json",
    "summarize_trace",
    "timeline_rows",
]
