"""repro.obs — zero-dependency tracing + metrics ("Dapper-lite").

The paper's production claims all rest on *measured* internals; this
package is how the reproduction measures its own. Two halves:

* :mod:`repro.obs.trace` — per-query span trees over simulated time. A
  :class:`Tracer` lives on the shared :class:`~repro.simtime.SimContext`
  and every layer (object store, Big Metadata, Read API, Superluminal,
  engine operators, ML, Omni networking) opens spans around its work, so
  a query's simulated latency decomposes exactly into per-layer time.
* :mod:`repro.obs.metrics` — a Prometheus-style registry of counters,
  gauges, and histograms with a text exposition dump, also hanging off
  the ``SimContext`` so one platform reads one set of meters.

Both are always-on but cheap to disable: ``ctx.tracer.enabled = False``
turns every ``span()`` call into a shared no-op context manager.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NOOP_TRACER,
    Span,
    Tracer,
    layer_breakdown,
    layer_time_ms,
    render_trace,
    summarize_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "Span",
    "Tracer",
    "layer_breakdown",
    "layer_time_ms",
    "render_trace",
    "summarize_trace",
]
