"""``INFORMATION_SCHEMA`` virtual tables: observability you can SELECT.

The paper's lakehouse argument (§3.2–§3.4) is that one governed SQL
surface subsumes side-channel tooling. This module applies that argument
to the platform's *own* telemetry: job history, span timelines, storage
metadata, the data-access audit log, and the metrics registry are exposed
as virtual tables the planner resolves like any other relation, so
filters, joins, and aggregates compose over them — and access is governed
by the same IAM service that guards the data.

Tables (all under the ``INFORMATION_SCHEMA`` pseudo-dataset):

* ``JOBS`` — one row per executed statement (from :class:`JobHistory`).
  Principals see their own jobs; ``bigquery.jobs.listAll`` (the admin
  role) widens the view to everyone's.
* ``JOBS_TIMELINE`` — one row per span of each job's trace tree, same
  visibility rule as ``JOBS``.
* ``TABLE_STORAGE`` — per-table file/row/byte/commit counts from Big
  Metadata (or managed storage), filtered to tables the principal can
  ``bigquery.tables.get``.
* ``DATA_ACCESS`` — the security audit log with job-id correlation.
  Admin-only (``bigquery.auditLogs.read``); a denied read is itself
  audited.
* ``METRICS`` — the current metrics-registry snapshot.
* ``CACHE_STATS`` — one row per cache tier (the data cache's footer /
  chunk / dictionary plus the query cache's plan / result): residency,
  capacity, hit/miss/eviction counters.
* ``RESERVATION_TIMELINE`` — per-interval, per-principal slot occupancy
  from the fleet monitor (slot-ms split scan/compute, queue depth,
  fair-share attainment). Same visibility rule as ``JOBS``: principals
  see their own rows unless they hold ``bigquery.jobs.listAll``.
* ``METRICS_HISTORY`` — the scraped metric samples over sim time, with
  staleness markers. Requires ``monitoring.timeSeries.list`` (admin);
  a denied read is audited.
* ``ALERTS`` — the SLO alert log (state transitions from the alert
  engine). Same governance as ``METRICS_HISTORY``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.data.types import DataType, Schema
from repro.errors import AccessDeniedError, NotFoundError
from repro.obs.history import JobHistory, JobRecord, timeline_rows
from repro.security.iam import IamService, Permission, Principal

if TYPE_CHECKING:
    from repro.metastore.bigmeta import BigMetadataService
    from repro.metastore.catalog import Catalog
    from repro.obs.metrics import MetricsRegistry
    from repro.security.audit import AuditLog
    from repro.storageapi.managed import ManagedStorage

INFORMATION_SCHEMA = "INFORMATION_SCHEMA"

JOBS_SCHEMA = Schema.of(
    ("job_id", DataType.STRING),
    ("user", DataType.STRING),
    ("sql", DataType.STRING),
    ("kind", DataType.STRING),
    ("state", DataType.STRING),
    ("error", DataType.STRING),
    ("engine", DataType.STRING),
    ("start_ms", DataType.FLOAT64),
    ("end_ms", DataType.FLOAT64),
    ("total_ms", DataType.FLOAT64),
    ("slot_ms", DataType.FLOAT64),
    ("bytes_scanned", DataType.INT64),
    ("rows_scanned", DataType.INT64),
    ("rows_produced", DataType.INT64),
    ("files_read", DataType.INT64),
    ("files_total", DataType.INT64),
    ("shuffle_partitions", DataType.INT64),
    ("compute_parallelism", DataType.INT64),
    ("bytes_read", DataType.INT64),
    ("bytes_written", DataType.INT64),
    ("bytes_egressed", DataType.INT64),
    ("retry_count", DataType.INT64),
    ("degraded", DataType.BOOL),
    ("cache_hit_bytes", DataType.INT64),
    ("cache_hit_ratio", DataType.FLOAT64),
    ("task_skew", DataType.FLOAT64),
    ("speculative_count", DataType.INT64),
    ("creation_ms", DataType.FLOAT64),
    ("queue_wait_ms", DataType.FLOAT64),
    ("backoff_ms", DataType.FLOAT64),
    ("cold_read_ms", DataType.FLOAT64),
    ("degraded_ms", DataType.FLOAT64),
    # Appended (not inserted) so positional readers of older columns keep
    # working: the multi-table transaction the statement ran inside ("" if
    # none) and the stable machine-readable terminal error code.
    ("transaction_id", DataType.STRING),
    ("error_code", DataType.STRING),
    # Appended: whether the query-result cache served the whole statement.
    ("cache_hit", DataType.BOOL),
)

JOBS_TIMELINE_SCHEMA = Schema.of(
    ("job_id", DataType.STRING),
    ("span_id", DataType.INT64),
    ("parent_span_id", DataType.INT64),
    ("name", DataType.STRING),
    ("layer", DataType.STRING),
    ("start_ms", DataType.FLOAT64),
    ("duration_ms", DataType.FLOAT64),
    ("self_ms", DataType.FLOAT64),
    ("tags", DataType.STRING),
)

TABLE_STORAGE_SCHEMA = Schema.of(
    ("table_catalog", DataType.STRING),
    ("table_schema", DataType.STRING),
    ("table_name", DataType.STRING),
    ("kind", DataType.STRING),
    ("total_files", DataType.INT64),
    ("total_rows", DataType.INT64),
    ("total_bytes", DataType.INT64),
    ("commit_count", DataType.INT64),
    ("version", DataType.INT64),
)

DATA_ACCESS_SCHEMA = Schema.of(
    ("timestamp_ms", DataType.FLOAT64),
    ("principal", DataType.STRING),
    ("action", DataType.STRING),
    ("resource", DataType.STRING),
    ("allowed", DataType.BOOL),
    ("detail", DataType.STRING),
    ("job_id", DataType.STRING),
)

METRICS_SCHEMA = Schema.of(
    ("name", DataType.STRING),
    ("kind", DataType.STRING),
    ("sample", DataType.STRING),
    ("value", DataType.FLOAT64),
)

CACHE_STATS_SCHEMA = Schema.of(
    ("tier", DataType.STRING),
    ("entries", DataType.INT64),
    ("resident_bytes", DataType.INT64),
    ("capacity_bytes", DataType.INT64),
    ("hits", DataType.INT64),
    ("misses", DataType.INT64),
    ("evictions", DataType.INT64),
    ("admission_rejects", DataType.INT64),
    ("hit_bytes", DataType.INT64),
    ("hit_ratio", DataType.FLOAT64),
)

RESERVATION_TIMELINE_SCHEMA = Schema.of(
    ("period_start_ms", DataType.FLOAT64),
    ("period_end_ms", DataType.FLOAT64),
    ("principal", DataType.STRING),
    ("slot_ms", DataType.FLOAT64),
    ("scan_slot_ms", DataType.FLOAT64),
    ("compute_slot_ms", DataType.FLOAT64),
    ("queue_ms", DataType.FLOAT64),
    ("queue_depth_avg", DataType.FLOAT64),
    ("running_avg", DataType.FLOAT64),
    ("jobs_admitted", DataType.INT64),
    ("jobs_completed", DataType.INT64),
    ("weight", DataType.FLOAT64),
    ("attainment", DataType.FLOAT64),
)

METRICS_HISTORY_SCHEMA = Schema.of(
    ("scrape_ms", DataType.FLOAT64),
    ("name", DataType.STRING),
    ("kind", DataType.STRING),
    ("sample", DataType.STRING),
    ("value", DataType.FLOAT64),
    ("stale", DataType.BOOL),
)

TRANSACTIONS_SCHEMA = Schema.of(
    ("transaction_id", DataType.STRING),
    ("state", DataType.STRING),
    ("writer", DataType.STRING),
    ("begin_ms", DataType.FLOAT64),
    ("commit_ms", DataType.FLOAT64),
    ("finalized", DataType.BOOL),
    ("table_count", DataType.INT64),
    ("tables", DataType.STRING),
)

ALERTS_SCHEMA = Schema.of(
    ("at_ms", DataType.FLOAT64),
    ("rule", DataType.STRING),
    ("severity", DataType.STRING),
    ("state", DataType.STRING),
    ("value", DataType.FLOAT64),
    ("threshold", DataType.FLOAT64),
    ("window_ms", DataType.FLOAT64),
    ("series", DataType.STRING),
    ("detail", DataType.STRING),
)

_SCHEMAS: dict[str, Schema] = {
    "JOBS": JOBS_SCHEMA,
    "JOBS_TIMELINE": JOBS_TIMELINE_SCHEMA,
    "TABLE_STORAGE": TABLE_STORAGE_SCHEMA,
    "DATA_ACCESS": DATA_ACCESS_SCHEMA,
    "METRICS": METRICS_SCHEMA,
    "CACHE_STATS": CACHE_STATS_SCHEMA,
    "RESERVATION_TIMELINE": RESERVATION_TIMELINE_SCHEMA,
    "METRICS_HISTORY": METRICS_HISTORY_SCHEMA,
    "ALERTS": ALERTS_SCHEMA,
    "TRANSACTIONS": TRANSACTIONS_SCHEMA,
}


class SystemTables:
    """Resolver + row producer for the ``INFORMATION_SCHEMA`` tables.

    One instance per platform, sharing the platform's control-plane
    services. The planner asks :meth:`resolves`/:meth:`schema` at plan
    time; the executor calls :meth:`scan` with the querying principal at
    run time, which is where governance is enforced.
    """

    def __init__(
        self,
        project: str,
        history: JobHistory,
        iam: IamService,
        audit: "AuditLog",
        catalog: "Catalog",
        bigmeta: "BigMetadataService",
        managed: "ManagedStorage",
        metrics: "MetricsRegistry",
        cache=None,
        monitor=None,
        query_cache=None,
    ) -> None:
        self.project = project
        self.history = history
        self.iam = iam
        self.audit = audit
        self.catalog = catalog
        self.bigmeta = bigmeta
        self.managed = managed
        self.metrics = metrics
        # repro.cache.DataCache; None renders CACHE_STATS as empty.
        self.cache = cache
        # repro.cache.plan.QueryCache; contributes plan/result tier rows
        # to CACHE_STATS when present.
        self.query_cache = query_cache
        # repro.obs.monitor.FleetMonitor; None (or disabled) renders the
        # telemetry tables as empty — governance still applies.
        self.monitor = monitor
        # repro.txn.TransactionLog (set by the txn coordinator); None
        # renders TRANSACTIONS as empty.
        self.txn_log = None

    # -- name resolution ----------------------------------------------------

    def resolves(self, path: tuple[str, ...]) -> bool:
        """Whether a dotted table path names a system table
        (``INFORMATION_SCHEMA.X`` or ``project.INFORMATION_SCHEMA.X``)."""
        if len(path) == 3 and path[0] != self.project:
            return False
        if len(path) not in (2, 3):
            return False
        return path[-2].upper() == INFORMATION_SCHEMA

    def normalize(self, path: tuple[str, ...]) -> str:
        name = path[-1].upper()
        if name not in _SCHEMAS:
            raise NotFoundError(
                f"system table INFORMATION_SCHEMA.{path[-1]} not found "
                f"(available: {', '.join(sorted(_SCHEMAS))})"
            )
        return name

    def schema(self, name: str) -> Schema:
        return _SCHEMAS[name.upper()]

    def table_names(self) -> list[str]:
        return sorted(_SCHEMAS)

    # -- governance ---------------------------------------------------------

    @property
    def _project_resource(self) -> str:
        return f"projects/{self.project}"

    def _sees_all_jobs(self, principal: Principal) -> bool:
        return self.iam.is_allowed(
            principal, Permission.JOBS_LIST_ALL, self._project_resource
        ).allowed

    def _visible_jobs(self, principal: Principal) -> list[JobRecord]:
        records = self.history.jobs()
        if self._sees_all_jobs(principal):
            return records
        me = str(principal)
        return [r for r in records if r.principal == me]

    # -- scans --------------------------------------------------------------

    def scan(self, name: str, principal: Principal) -> list[tuple]:
        """Produce the rows of one system table as seen by ``principal``."""
        name = name.upper()
        if name == "JOBS":
            rows = self._jobs_rows(principal)
        elif name == "JOBS_TIMELINE":
            rows = self._timeline_rows(principal)
        elif name == "TABLE_STORAGE":
            rows = self._table_storage_rows(principal)
        elif name == "DATA_ACCESS":
            rows = self._data_access_rows(principal)
        elif name == "METRICS":
            rows = self._metrics_rows()
        elif name == "CACHE_STATS":
            rows = self.cache.stats_rows() if self.cache is not None else []
            if self.query_cache is not None:
                rows = rows + self.query_cache.stats_rows()
        elif name == "RESERVATION_TIMELINE":
            rows = self._reservation_rows(principal)
        elif name == "METRICS_HISTORY":
            rows = self._monitoring_rows(principal, name, "metrics_history_rows")
        elif name == "ALERTS":
            rows = self._monitoring_rows(principal, name, "alert_rows")
        elif name == "TRANSACTIONS":
            rows = self._transactions_rows(principal)
        else:
            raise NotFoundError(f"system table INFORMATION_SCHEMA.{name} not found")
        self.audit.record(
            principal,
            "system_tables.read",
            f"{self._project_resource}/informationSchema/{name}",
            True,
            detail=f"{len(rows)} rows",
        )
        return rows

    def _reservation_rows(self, principal: Principal) -> list[tuple]:
        """Per-interval slot occupancy, scoped like JOBS: principals see
        their own intervals unless they can list everyone's jobs."""
        if self.monitor is None:
            return []
        rows = self.monitor.reservation_rows()
        if self._sees_all_jobs(principal):
            return rows
        me = str(principal)
        return [row for row in rows if row[2] == me]

    def _monitoring_rows(
        self, principal: Principal, name: str, accessor: str
    ) -> list[tuple]:
        """METRICS_HISTORY / ALERTS: fleet-wide telemetry, admin-only
        (``monitoring.timeSeries.list``); a denied read is itself audited,
        like DATA_ACCESS."""
        decision = self.iam.is_allowed(
            principal, Permission.MONITORING_READ, self._project_resource
        )
        if not decision.allowed:
            self.audit.record(
                principal,
                "system_tables.read",
                f"{self._project_resource}/informationSchema/{name}",
                False,
                detail=decision.reason,
            )
            raise AccessDeniedError(
                f"{principal} lacks {Permission.MONITORING_READ.value} on "
                f"{self._project_resource}: INFORMATION_SCHEMA.{name} is admin-only"
            )
        if self.monitor is None:
            return []
        return list(getattr(self.monitor, accessor)())

    def _jobs_rows(self, principal: Principal) -> list[tuple]:
        return [
            (
                r.job_id,
                r.principal,
                r.sql,
                r.kind,
                r.state,
                r.error,
                r.engine,
                r.start_ms,
                r.end_ms,
                r.total_ms,
                r.slot_ms,
                r.bytes_scanned,
                r.rows_scanned,
                r.rows_produced,
                r.files_read,
                r.files_total,
                r.shuffle_partitions,
                r.compute_parallelism,
                r.bytes_read,
                r.bytes_written,
                r.bytes_egressed,
                r.retry_count,
                r.degraded,
                r.cache_hit_bytes,
                r.cache_hit_ratio,
                r.task_skew,
                r.speculative_count,
                r.creation_ms,
                r.queue_wait_ms,
                r.backoff_ms,
                r.cold_read_ms,
                r.degraded_ms,
                r.transaction_id,
                r.error_code,
                r.cache_hit,
            )
            for r in self._visible_jobs(principal)
        ]

    def _transactions_rows(self, principal: Principal) -> list[tuple]:
        if self.txn_log is None:
            return []
        sees_all = self._sees_all_jobs(principal)
        rows: list[tuple] = []
        for r in self.txn_log.entries():
            if not sees_all and r.writer != str(principal):
                continue
            rows.append(
                (
                    r.txn_id,
                    r.state,
                    r.writer,
                    r.begin_ms,
                    r.commit_ms,
                    r.finalized,
                    len(r.tables),
                    ",".join(tc.table_id for tc in r.tables),
                )
            )
        return rows

    def _timeline_rows(self, principal: Principal) -> list[tuple]:
        rows: list[tuple] = []
        for record in self._visible_jobs(principal):
            rows.extend(timeline_rows(record))
        return rows

    def _table_storage_rows(self, principal: Principal) -> list[tuple]:
        rows: list[tuple] = []
        for dataset_name in self.catalog.dataset_names():
            for table in self.catalog.list_tables(dataset_name):
                decision = self.iam.is_allowed(
                    principal, Permission.TABLES_GET, table.resource_name
                )
                if not decision.allowed:
                    continue
                files = rows_total = size = commits = 0
                if self.bigmeta.has_table(table.table_id):
                    stats = self.bigmeta.table_stats(table.table_id)
                    files = stats["num_files"]
                    rows_total = stats["num_rows"]
                    size = stats["num_bytes"]
                    commits = len(self.bigmeta.history(table.table_id))
                elif self.managed.exists(table.table_id):
                    rows_total = self.managed.row_count(table.table_id)
                rows.append(
                    (
                        table.project,
                        table.dataset,
                        table.name,
                        table.kind.value,
                        files,
                        rows_total,
                        size,
                        commits,
                        table.version,
                    )
                )
        return rows

    def _data_access_rows(self, principal: Principal) -> list[tuple]:
        decision = self.iam.is_allowed(
            principal, Permission.AUDIT_READ, self._project_resource
        )
        if not decision.allowed:
            self.audit.record(
                principal,
                "system_tables.read",
                f"{self._project_resource}/informationSchema/DATA_ACCESS",
                False,
                detail=decision.reason,
            )
            raise AccessDeniedError(
                f"{principal} lacks {Permission.AUDIT_READ.value} on "
                f"{self._project_resource}: INFORMATION_SCHEMA.DATA_ACCESS is admin-only"
            )
        # Snapshot first: recording this very read must not mutate the list
        # mid-iteration (the access audit lands after the scan returns).
        return [
            (
                e.timestamp_ms,
                str(e.principal),
                e.action,
                e.resource,
                e.allowed,
                e.detail,
                e.job_id,
            )
            for e in list(self.audit.events)
        ]

    def _metrics_rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for metric_name in self.metrics.names():
            metric = self.metrics.get(metric_name)
            for sample_name, key, value in metric.samples():
                labels = ",".join(f'{k}="{v}"' for k, v in key)
                sample = f"{sample_name}{{{labels}}}" if labels else sample_name
                rows.append((metric_name, metric.kind, sample, float(value)))
        return rows
