"""Declarative SLO alerting over the sim-time TSDB.

Two rule kinds, modeled on the Prometheus/Google-SRE alerting canon:

* **threshold** — a window aggregate of one series (``avg`` / ``max`` /
  ``rate`` / ``quantile`` / ``last``) compared against a bound, with an
  optional ``for_ms`` sustain period before the alert fires (PENDING
  until the breach has held that long, exactly like a ``for:`` clause).
* **burn_rate** — the multi-window error-budget burn test: the
  bad-event fraction of a 0/1 series, divided by the error budget, must
  reach the burn ``factor`` in BOTH a long and a short window. The long
  window establishes the trend, the short one proves it is still
  happening — the standard trick that keeps burn alerts from flapping
  on old spikes.

The engine is evaluated deterministically on the serving-timeline grid
(the monitor calls :meth:`AlertEngine.evaluate` at fixed model-time
steps), so a seeded run produces a byte-identical alert log. Every state
transition appends an :class:`AlertEvent` and bumps
``repro_alerts_total{rule,state}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.tsdb import TimeSeriesStore

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Alert states (the Prometheus lifecycle, plus an explicit RESOLVED
#: transition event so the log shows when a condition cleared).
INACTIVE = "INACTIVE"
PENDING = "PENDING"
FIRING = "FIRING"
RESOLVED = "RESOLVED"

_THRESHOLD_FNS = ("avg", "max", "min", "sum", "rate", "quantile", "last")
_COMPARATORS = (">", ">=", "<", "<=")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule. ``kind`` selects which fields matter."""

    name: str
    kind: str  # "threshold" | "burn_rate"
    series: str
    labels: tuple[tuple[str, str], ...] = ()
    severity: str = "warning"
    # threshold rules:
    fn: str = "avg"  # avg | max | min | sum | rate | quantile | last
    q: float = 0.99  # for fn == "quantile"
    threshold: float = 0.0
    comparator: str = ">"
    window_ms: float = 500.0
    for_ms: float = 0.0  # sustain period before PENDING -> FIRING
    # burn_rate rules (window_ms doubles as the long window):
    short_window_ms: float = 0.0
    error_budget: float = 0.1  # tolerated bad-event fraction
    burn_factor: float = 1.0  # fire at burn >= factor in both windows

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "burn_rate"):
            raise ValueError(f"unknown alert-rule kind {self.kind!r}")
        if self.kind == "threshold" and self.fn not in _THRESHOLD_FNS:
            raise ValueError(
                f"rule {self.name}: fn must be one of {_THRESHOLD_FNS}"
            )
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"rule {self.name}: comparator must be one of {_COMPARATORS}"
            )
        if self.kind == "burn_rate" and self.error_budget <= 0:
            raise ValueError(f"rule {self.name}: error budget must be positive")


@dataclass
class AlertEvent:
    """One state transition in the alert log (an ``ALERTS`` row)."""

    at_ms: float
    rule: str
    severity: str
    state: str  # PENDING | FIRING | RESOLVED
    value: float
    threshold: float
    window_ms: float
    series: str
    detail: str = ""

    def to_row(self) -> tuple:
        return (
            self.at_ms, self.rule, self.severity, self.state,
            self.value, self.threshold, self.window_ms, self.series,
            self.detail,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "at_ms": round(self.at_ms, 6),
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "value": round(self.value, 6),
            "threshold": round(self.threshold, 6),
            "window_ms": round(self.window_ms, 6),
            "series": self.series,
            "detail": self.detail,
        }


class _RuleState:
    __slots__ = ("state", "pending_since")

    def __init__(self) -> None:
        self.state = INACTIVE
        self.pending_since = 0.0


class AlertEngine:
    """Evaluate a rule set against the store at fixed model instants."""

    def __init__(
        self,
        rules: list[AlertRule],
        store: TimeSeriesStore,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert-rule names in {names}")
        self.rules = list(rules)
        self.store = store
        self.metrics = metrics
        self.events: list[AlertEvent] = []
        self._states: dict[str, _RuleState] = {r.name: _RuleState() for r in rules}

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, at_ms: float) -> list[AlertEvent]:
        """Evaluate every rule at one instant; returns the transitions."""
        out: list[AlertEvent] = []
        for rule in self.rules:
            event = self._evaluate_rule(rule, at_ms)
            if event is not None:
                out.append(event)
        return out

    def _evaluate_rule(self, rule: AlertRule, at_ms: float) -> AlertEvent | None:
        value, bound, detail = self._measure(rule, at_ms)
        breach = (not math.isnan(value)) and self._compare(
            value, rule.comparator, bound
        )
        state = self._states[rule.name]
        if breach:
            if state.state == INACTIVE:
                state.pending_since = at_ms
                if rule.for_ms > 0 and rule.kind == "threshold":
                    state.state = PENDING
                    return self._transition(rule, at_ms, PENDING, value, detail)
                state.state = FIRING
                return self._transition(rule, at_ms, FIRING, value, detail)
            if (
                state.state == PENDING
                and at_ms - state.pending_since >= rule.for_ms
            ):
                state.state = FIRING
                return self._transition(rule, at_ms, FIRING, value, detail)
            return None
        if state.state in (PENDING, FIRING):
            resolved = state.state == FIRING
            state.state = INACTIVE
            if resolved:
                return self._transition(rule, at_ms, RESOLVED, value, detail)
        return None

    def _measure(self, rule: AlertRule, at_ms: float) -> tuple[float, float, str]:
        labels = dict(rule.labels)
        if rule.kind == "burn_rate":
            long_frac = self.store.avg_over_time(
                rule.series, at_ms, rule.window_ms, **labels
            )
            short_ms = rule.short_window_ms or rule.window_ms
            short_frac = self.store.avg_over_time(
                rule.series, at_ms, short_ms, **labels
            )
            if math.isnan(long_frac) or math.isnan(short_frac):
                return math.nan, rule.burn_factor, ""
            long_burn = long_frac / rule.error_budget
            short_burn = short_frac / rule.error_budget
            detail = (
                f"burn long={long_burn:.3f}x/{rule.window_ms:g}ms "
                f"short={short_burn:.3f}x/{short_ms:g}ms "
                f"budget={rule.error_budget:g}"
            )
            # Both windows must burn: min() is the operative value.
            return min(long_burn, short_burn), rule.burn_factor, detail
        s = self.store
        if rule.fn == "avg":
            value = s.avg_over_time(rule.series, at_ms, rule.window_ms, **labels)
        elif rule.fn == "max":
            value = s.max_over_time(rule.series, at_ms, rule.window_ms, **labels)
        elif rule.fn == "min":
            value = s.min_over_time(rule.series, at_ms, rule.window_ms, **labels)
        elif rule.fn == "sum":
            value = s.sum_over_time(rule.series, at_ms, rule.window_ms, **labels)
        elif rule.fn == "rate":
            value = s.rate(rule.series, at_ms, rule.window_ms, **labels)
        elif rule.fn == "quantile":
            value = s.quantile_over_time(
                rule.series, rule.q, at_ms, rule.window_ms, **labels
            )
        else:  # "last"
            value = s.last(rule.series, at_ms, **labels)
        fn = f"quantile(q={rule.q:g})" if rule.fn == "quantile" else rule.fn
        return value, rule.threshold, f"{fn}/{rule.window_ms:g}ms"

    @staticmethod
    def _compare(value: float, comparator: str, bound: float) -> bool:
        if comparator == ">":
            return value > bound
        if comparator == ">=":
            return value >= bound
        if comparator == "<":
            return value < bound
        return value <= bound

    def _transition(
        self, rule: AlertRule, at_ms: float, state: str, value: float, detail: str
    ) -> AlertEvent:
        bound = rule.burn_factor if rule.kind == "burn_rate" else rule.threshold
        event = AlertEvent(
            at_ms=at_ms, rule=rule.name, severity=rule.severity, state=state,
            value=value, threshold=bound, window_ms=rule.window_ms,
            series=rule.series, detail=detail,
        )
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_alerts_total", "alert state transitions by rule"
            ).inc(rule=rule.name, state=state)
        return event

    # -- views ---------------------------------------------------------------

    def state_of(self, rule_name: str) -> str:
        return self._states[rule_name].state

    def firing(self) -> list[str]:
        return sorted(
            name for name, st in self._states.items() if st.state == FIRING
        )

    def fired_ever(self, kind: str | None = None) -> list[str]:
        """Rules that reached FIRING at least once (optionally by kind)."""
        kinds = {r.name: r.kind for r in self.rules}
        return sorted(
            {
                e.rule
                for e in self.events
                if e.state == FIRING and (kind is None or kinds[e.rule] == kind)
            }
        )
