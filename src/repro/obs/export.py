"""Trace exporters: Chrome-trace JSON and OTLP-style span JSON.

Both operate on the :class:`~repro.obs.trace.Span` tree a job retains in
history, so any job still in the ring buffer can be exported after the
fact — load the Chrome format in ``chrome://tracing`` / Perfetto, or feed
the OTLP shape to anything speaking the OpenTelemetry JSON encoding.
Timestamps are simulated milliseconds converted to the target unit
(microseconds for Chrome, nanoseconds for OTLP), so exports are
deterministic across runs like everything else in the simulation.

Beyond single jobs, :func:`serve_chrome_trace` / :func:`serve_otlp_spans`
export a whole *serve run* — every job still in history — onto one
timeline with per-principal lanes (Chrome: one pid per principal, one tid
per job; OTLP: one trace, one root span per job), so a multi-principal
workload's queueing, overlap, and per-task slot occupancy are visible in
a single Perfetto load.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.obs.trace import Span


def _json_tag(value: Any) -> Any:
    """Tags may hold arbitrary objects; keep JSON-native values, stringify
    the rest."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# --------------------------------------------------------------------------
# Chrome trace event format
# --------------------------------------------------------------------------


def chrome_trace(root: Span, *, process_name: str = "repro") -> dict[str, Any]:
    """The span tree as a Chrome trace-event document.

    Each span becomes one complete ("ph": "X") event; ``ts``/``dur`` are in
    microseconds per the format. Nesting is positional in the viewer (same
    pid/tid, containment by time range), which holds by construction: a
    child span's sim-time interval lies inside its parent's. ``span_id`` /
    ``parent_id`` ride along in ``args`` so the hierarchy survives
    round-tripping even outside the viewer.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in root.walk():
        args: dict[str, Any] = {k: _json_tag(v) for k, v in sorted(span.tags.items())}
        args["span_id"] = span.span_id
        args["parent_id"] = span.parent_id or 0
        args["self_ms"] = round(span.self_time_ms(), 6)
        events.append(
            {
                "name": span.name,
                "cat": span.layer or "other",
                "ph": "X",
                "ts": round(span.start_ms * 1000.0, 3),
                "dur": round(span.duration_ms * 1000.0, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(root: Span, *, process_name: str = "repro") -> str:
    return json.dumps(chrome_trace(root, process_name=process_name), indent=2)


# --------------------------------------------------------------------------
# OTLP-style span JSON
# --------------------------------------------------------------------------


def _trace_id(seed: str) -> str:
    """A deterministic 128-bit trace id derived from the job id."""
    return hashlib.sha256(seed.encode()).hexdigest()[:32]


def _span_id(span_id: int) -> str:
    return f"{span_id:016x}"


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def otlp_spans(root: Span, *, trace_name: str = "query") -> dict[str, Any]:
    """The span tree in the OpenTelemetry OTLP/JSON shape.

    ``resourceSpans -> scopeSpans -> spans``, with hex trace/span ids and
    nanosecond epoch times. The trace id is a stable hash of ``trace_name``
    (pass the job id), so exporting the same job twice yields byte-equal
    documents.
    """
    trace_id = _trace_id(trace_name)
    spans: list[dict[str, Any]] = []
    for span in root.walk():
        attributes = [
            {"key": "layer", "value": {"stringValue": span.layer or "other"}}
        ] + [
            {"key": key, "value": _otlp_value(value)}
            for key, value in sorted(span.tags.items())
        ]
        spans.append(
            {
                "traceId": trace_id,
                "spanId": _span_id(span.span_id),
                "parentSpanId": _span_id(span.parent_id) if span.parent_id else "",
                "name": span.name,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(int(span.start_ms * 1_000_000)),
                "endTimeUnixNano": str(int(span.end_ms * 1_000_000)),
                "attributes": attributes,
            }
        )
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {"key": "service.name", "value": {"stringValue": "repro"}}
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs", "version": "1"}, "spans": spans}
                ],
            }
        ]
    }


def otlp_spans_json(root: Span, *, trace_name: str = "query") -> str:
    return json.dumps(otlp_spans(root, trace_name=trace_name), indent=2)


# --------------------------------------------------------------------------
# Whole-serve-run exports (per-principal lanes)
# --------------------------------------------------------------------------


def serve_chrome_trace(
    records: list[Any], *, process_prefix: str = "repro serve"
) -> dict[str, Any]:
    """A whole serve run as one Chrome trace document.

    One *process* per principal (lanes group naturally in Perfetto), one
    *thread* per job. Each job contributes a ``queued`` event (creation →
    admission), a job event (admission → end) carrying the serving facts,
    and one event per scheduler task attempt (``task_timeline`` offsets
    are admission-relative, so they land inside the job event). History
    order is deterministic, hence so is the document.
    """
    done = [r for r in records if r.done]
    principals = sorted({r.principal for r in done})
    pid_of = {p: i + 1 for i, p in enumerate(principals)}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid_of[p],
            "tid": 0,
            "args": {"name": f"{process_prefix}: {p}"},
        }
        for p in principals
    ]
    tids: dict[int, int] = {}
    for record in done:
        pid = pid_of[record.principal]
        tid = tids.get(pid, 0) + 1
        tids[pid] = tid
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{record.job_id} ({record.kind})"},
            }
        )
        if record.start_ms > record.creation_ms:
            events.append(
                {
                    "name": "queued",
                    "cat": "serving",
                    "ph": "X",
                    "ts": round(record.creation_ms * 1000.0, 3),
                    "dur": round(
                        (record.start_ms - record.creation_ms) * 1000.0, 3
                    ),
                    "pid": pid,
                    "tid": tid,
                    "args": {"queue_wait_ms": round(record.queue_wait_ms, 6)},
                }
            )
        events.append(
            {
                "name": record.job_id,
                "cat": "serving",
                "ph": "X",
                "ts": round(record.start_ms * 1000.0, 3),
                "dur": round(max(record.end_ms - record.start_ms, 0.0) * 1000.0, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "state": record.state,
                    "kind": record.kind,
                    "retry_count": record.retry_count,
                    "degraded": record.degraded,
                    "backoff_ms": round(record.backoff_ms, 6),
                    "cold_read_ms": round(record.cold_read_ms, 6),
                    "degraded_ms": round(record.degraded_ms, 6),
                    "task_skew": round(record.task_skew, 6),
                },
            }
        )
        for run in record.task_timeline:
            events.append(
                {
                    "name": f"{run.stage}[{run.task}]",
                    "cat": "scheduler",
                    "ph": "X",
                    "ts": round((record.start_ms + run.start_ms) * 1000.0, 3),
                    "dur": round((run.end_ms - run.start_ms) * 1000.0, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "slot": run.slot,
                        "speculative": run.speculative,
                        "winner": run.winner,
                        "cancelled": run.cancelled,
                        "slow_factor": round(run.slow_factor, 6),
                    },
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def serve_chrome_trace_json(
    records: list[Any], *, process_prefix: str = "repro serve"
) -> str:
    return json.dumps(
        serve_chrome_trace(records, process_prefix=process_prefix), indent=2
    )


def serve_otlp_spans(
    records: list[Any], *, trace_name: str = "serve"
) -> dict[str, Any]:
    """A whole serve run as one OTLP trace: one root span per job (the
    principal lane lives in the ``principal`` attribute), one child span
    per scheduler task attempt. Span ids are assigned sequentially in
    history order, so same history ⇒ byte-equal document."""
    trace_id = _trace_id(trace_name)
    spans: list[dict[str, Any]] = []
    next_span = 1
    for record in [r for r in records if r.done]:
        root_id = next_span
        next_span += 1
        spans.append(
            {
                "traceId": trace_id,
                "spanId": _span_id(root_id),
                "parentSpanId": "",
                "name": record.job_id,
                "kind": "SPAN_KIND_SERVER",
                "startTimeUnixNano": str(int(record.creation_ms * 1_000_000)),
                "endTimeUnixNano": str(int(record.end_ms * 1_000_000)),
                "attributes": [
                    {"key": "principal", "value": {"stringValue": record.principal}},
                    {"key": "state", "value": {"stringValue": record.state}},
                    {"key": "kind", "value": {"stringValue": record.kind}},
                    {
                        "key": "queue_wait_ms",
                        "value": _otlp_value(round(record.queue_wait_ms, 6)),
                    },
                ],
            }
        )
        for run in record.task_timeline:
            spans.append(
                {
                    "traceId": trace_id,
                    "spanId": _span_id(next_span),
                    "parentSpanId": _span_id(root_id),
                    "name": f"{run.stage}[{run.task}]",
                    "kind": "SPAN_KIND_INTERNAL",
                    "startTimeUnixNano": str(
                        int((record.start_ms + run.start_ms) * 1_000_000)
                    ),
                    "endTimeUnixNano": str(
                        int((record.start_ms + run.end_ms) * 1_000_000)
                    ),
                    "attributes": [
                        {"key": "slot", "value": _otlp_value(run.slot)},
                        {"key": "winner", "value": _otlp_value(run.winner)},
                        {
                            "key": "speculative",
                            "value": _otlp_value(run.speculative),
                        },
                    ],
                }
            )
            next_span += 1
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {"key": "service.name", "value": {"stringValue": "repro"}}
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs", "version": "1"}, "spans": spans}
                ],
            }
        ]
    }


def serve_otlp_spans_json(records: list[Any], *, trace_name: str = "serve") -> str:
    return json.dumps(serve_otlp_spans(records, trace_name=trace_name), indent=2)
