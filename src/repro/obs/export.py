"""Trace exporters: Chrome-trace JSON and OTLP-style span JSON.

Both operate on the :class:`~repro.obs.trace.Span` tree a job retains in
history, so any job still in the ring buffer can be exported after the
fact — load the Chrome format in ``chrome://tracing`` / Perfetto, or feed
the OTLP shape to anything speaking the OpenTelemetry JSON encoding.
Timestamps are simulated milliseconds converted to the target unit
(microseconds for Chrome, nanoseconds for OTLP), so exports are
deterministic across runs like everything else in the simulation.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.obs.trace import Span


def _json_tag(value: Any) -> Any:
    """Tags may hold arbitrary objects; keep JSON-native values, stringify
    the rest."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# --------------------------------------------------------------------------
# Chrome trace event format
# --------------------------------------------------------------------------


def chrome_trace(root: Span, *, process_name: str = "repro") -> dict[str, Any]:
    """The span tree as a Chrome trace-event document.

    Each span becomes one complete ("ph": "X") event; ``ts``/``dur`` are in
    microseconds per the format. Nesting is positional in the viewer (same
    pid/tid, containment by time range), which holds by construction: a
    child span's sim-time interval lies inside its parent's. ``span_id`` /
    ``parent_id`` ride along in ``args`` so the hierarchy survives
    round-tripping even outside the viewer.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in root.walk():
        args: dict[str, Any] = {k: _json_tag(v) for k, v in sorted(span.tags.items())}
        args["span_id"] = span.span_id
        args["parent_id"] = span.parent_id or 0
        args["self_ms"] = round(span.self_time_ms(), 6)
        events.append(
            {
                "name": span.name,
                "cat": span.layer or "other",
                "ph": "X",
                "ts": round(span.start_ms * 1000.0, 3),
                "dur": round(span.duration_ms * 1000.0, 3),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(root: Span, *, process_name: str = "repro") -> str:
    return json.dumps(chrome_trace(root, process_name=process_name), indent=2)


# --------------------------------------------------------------------------
# OTLP-style span JSON
# --------------------------------------------------------------------------


def _trace_id(seed: str) -> str:
    """A deterministic 128-bit trace id derived from the job id."""
    return hashlib.sha256(seed.encode()).hexdigest()[:32]


def _span_id(span_id: int) -> str:
    return f"{span_id:016x}"


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def otlp_spans(root: Span, *, trace_name: str = "query") -> dict[str, Any]:
    """The span tree in the OpenTelemetry OTLP/JSON shape.

    ``resourceSpans -> scopeSpans -> spans``, with hex trace/span ids and
    nanosecond epoch times. The trace id is a stable hash of ``trace_name``
    (pass the job id), so exporting the same job twice yields byte-equal
    documents.
    """
    trace_id = _trace_id(trace_name)
    spans: list[dict[str, Any]] = []
    for span in root.walk():
        attributes = [
            {"key": "layer", "value": {"stringValue": span.layer or "other"}}
        ] + [
            {"key": key, "value": _otlp_value(value)}
            for key, value in sorted(span.tags.items())
        ]
        spans.append(
            {
                "traceId": trace_id,
                "spanId": _span_id(span.span_id),
                "parentSpanId": _span_id(span.parent_id) if span.parent_id else "",
                "name": span.name,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(int(span.start_ms * 1_000_000)),
                "endTimeUnixNano": str(int(span.end_ms * 1_000_000)),
                "attributes": attributes,
            }
        )
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {"key": "service.name", "value": {"stringValue": "repro"}}
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs", "version": "1"}, "spans": spans}
                ],
            }
        ]
    }


def otlp_spans_json(root: Span, *, trace_name: str = "query") -> str:
    return json.dumps(otlp_spans(root, trace_name=trace_name), indent=2)
