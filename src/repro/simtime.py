"""Deterministic simulated time, cost model, and metering.

The real BigLake runs against cloud object stores, cross-cloud VPNs, and a
slot-scheduled Dremel fleet. This reproduction performs the *work* for real
(bytes are encoded, filters are evaluated, joins are joined) but charges
*time* to a deterministic :class:`SimClock` through a :class:`CostModel`, so
experiments report stable, machine-independent latencies whose shape matches
the paper's claims.

Three pieces:

* :class:`SimClock` — a monotonically advancing logical clock (milliseconds).
* :class:`CostModel` — constants describing how long simulated operations
  take (LIST page latency, GET first-byte latency, per-MiB transfer time,
  VPN round trips, slot think-time, ...). Experiments may override any
  constant.
* :class:`Metering` — counters for operations, bytes, and money-shaped
  quantities (egress bytes per cloud pair), used by the benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from typing import Callable, TypeVar

    from repro.faults import FaultInjector, RetryPolicy
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    _T = TypeVar("_T")

MIB = 1024.0 * 1024.0


class SimClock:
    """A logical millisecond clock advanced explicitly by simulated work.

    The clock is thread-safe: the distributed-execution simulator advances
    per-worker timelines independently and merges them via :meth:`advance_to`.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)
        self._lock = threading.Lock()

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds (read under the lock, so
        cross-thread reads during distributed execution are consistent)."""
        with self._lock:
            return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ms}")
        with self._lock:
            self._now_ms += delta_ms
            return self._now_ms

    def advance_to(self, timestamp_ms: float) -> float:
        """Move the clock forward to ``timestamp_ms`` if it is in the future."""
        with self._lock:
            if timestamp_ms > self._now_ms:
                self._now_ms = timestamp_ms
            return self._now_ms


@dataclass
class CostModel:
    """Latency/cost constants for simulated infrastructure operations.

    Defaults are order-of-magnitude realistic for public-cloud object
    stores and cross-region networking circa the paper's publication; the
    absolute values matter less than their ratios (e.g. LIST pages are slow
    relative to metadata-cache lookups; cross-cloud bytes are expensive
    relative to in-region bytes).
    """

    # Object store.
    list_page_latency_ms: float = 60.0
    list_page_size: int = 1000
    get_first_byte_ms: float = 12.0
    get_per_mib_ms: float = 8.0
    put_first_byte_ms: float = 20.0
    put_per_mib_ms: float = 10.0
    delete_latency_ms: float = 10.0
    head_latency_ms: float = 8.0
    # Conditional pointer updates (open-table-format commits) are limited to
    # roughly this many mutations per second per object.
    cas_mutations_per_sec: float = 2.0

    # Metadata services.
    bigmeta_lookup_ms: float = 4.0
    bigmeta_commit_ms: float = 1.5
    hive_partition_lookup_ms: float = 15.0

    # Networking.
    in_region_rtt_ms: float = 0.5
    cross_region_rtt_ms: float = 30.0
    cross_cloud_rtt_ms: float = 45.0
    vpn_overhead_ms: float = 2.0
    in_region_per_mib_ms: float = 0.8
    cross_region_per_mib_ms: float = 9.0
    cross_cloud_per_mib_ms: float = 12.0
    # Egress price (USD per GiB) used for cost-shaped reporting.
    cross_cloud_egress_usd_per_gib: float = 0.09

    # Engine.
    slot_startup_ms: float = 2.0
    shuffle_write_per_mib_ms: float = 1.2
    shuffle_read_per_mib_ms: float = 1.0
    scan_per_mib_ms: float = 2.5
    row_scan_overhead_per_row_us: float = 1.2
    join_cpu_us_per_row: float = 1.5
    aggregate_cpu_us_per_row: float = 0.8
    # Client-side TLS decryption of ReadRows payloads (§3.4 future work).
    tls_decrypt_per_mib_ms: float = 1.5
    # Slot-local data cache (§3.3): a hit is a hash probe plus a memory
    # copy — orders of magnitude under GET first-byte + per-MiB decode.
    cache_lookup_ms: float = 0.02
    cache_hit_per_mib_ms: float = 0.05

    # Inference.
    remote_call_overhead_ms: float = 25.0
    remote_autoscale_step_ms: float = 15000.0

    def transfer_ms(self, num_bytes: int, per_mib_ms: float, rtt_ms: float) -> float:
        """Time to move ``num_bytes`` over a link with given RTT and rate."""
        return rtt_ms + (num_bytes / MIB) * per_mib_ms


@dataclass
class Metering:
    """Aggregated counters for simulated infrastructure usage."""

    op_counts: dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    # (source, destination) -> bytes, where each end is "cloud/region".
    egress_bytes: dict[tuple[str, str], int] = field(default_factory=dict)

    def count(self, op: str, n: int = 1) -> None:
        """Increment the counter for operation ``op`` by ``n``."""
        self.op_counts[op] = self.op_counts.get(op, 0) + n

    def add_read(self, num_bytes: int) -> None:
        self.bytes_read += num_bytes

    def add_write(self, num_bytes: int) -> None:
        self.bytes_written += num_bytes

    def add_egress(self, source: str, destination: str, num_bytes: int) -> None:
        """Record ``num_bytes`` leaving ``source`` toward ``destination``."""
        key = (source, destination)
        self.egress_bytes[key] = self.egress_bytes.get(key, 0) + num_bytes

    def total_egress(self) -> int:
        """Total bytes that crossed any location boundary."""
        return sum(self.egress_bytes.values())

    def snapshot(self) -> "Metering":
        """Return an independent copy (for before/after deltas)."""
        copy = Metering()
        copy.op_counts = dict(self.op_counts)
        copy.bytes_read = self.bytes_read
        copy.bytes_written = self.bytes_written
        copy.egress_bytes = dict(self.egress_bytes)
        return copy

    def delta_since(self, earlier: "Metering") -> "Metering":
        """Counters accumulated since ``earlier`` was snapshotted."""
        delta = Metering()
        for op, n in self.op_counts.items():
            prev = earlier.op_counts.get(op, 0)
            if n - prev:
                delta.op_counts[op] = n - prev
        delta.bytes_read = self.bytes_read - earlier.bytes_read
        delta.bytes_written = self.bytes_written - earlier.bytes_written
        for key, n in self.egress_bytes.items():
            prev = earlier.egress_bytes.get(key, 0)
            if n - prev:
                delta.egress_bytes[key] = n - prev
        return delta


@dataclass
class SimContext:
    """Bundle of clock + cost model + metering + observability shared by a
    simulation.

    Every stateful component (object stores, metadata services, engines,
    networks) takes a ``SimContext`` so an experiment controls one clock and
    reads one set of meters. The :class:`~repro.obs.Tracer` and
    :class:`~repro.obs.MetricsRegistry` ride along so every layer can open
    spans and bump counters without extra wiring; set
    ``ctx.tracer.enabled = False`` to turn tracing into no-ops.
    """

    clock: SimClock = field(default_factory=SimClock)
    costs: CostModel = field(default_factory=CostModel)
    metering: Metering = field(default_factory=Metering)
    tracer: "Tracer | None" = None
    metrics: "MetricsRegistry | None" = None
    faults: "FaultInjector | None" = None
    retry: "RetryPolicy | None" = None

    def __post_init__(self) -> None:
        from repro.faults import FaultInjector, RetryPolicy
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        if self.tracer is None:
            self.tracer = Tracer(self.clock)
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        if self.faults is None:
            self.faults = FaultInjector(self)
        if self.retry is None:
            self.retry = RetryPolicy()

    def charge(self, op: str, latency_ms: float) -> None:
        """Record operation ``op`` and advance the clock by its latency."""
        self.metering.count(op)
        self.clock.advance(latency_ms)

    def with_retry(self, op: str, fn: "Callable[[], _T]") -> "_T":
        """Run ``fn`` under this context's :class:`RetryPolicy`."""
        return self.retry.call(self, op, fn)
