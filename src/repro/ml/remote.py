"""Remote inference services (§4.2.2).

* :class:`VertexEndpoint` — a customer-owned model behind a serving
  endpoint: fixed per-replica throughput, autoscaling with a lag, and a
  per-call network overhead. Captures the paper's trade-off: specialized
  capacity and no model-size limit, but slower scaling agility than
  Dremel's and an extra communication cost.
* :class:`DocumentAiProcessor` — a first-party model behind a dedicated
  API: Dremel passes URIs + access tokens, the service reads the objects
  itself (bytes never flow through the engine) and returns flattened
  entities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MlError
from repro.ml.media import parse_document
from repro.ml.models import ImageModel
from repro.objectstore.registry import StoreRegistry
from repro.security.connections import ConnectionManager, ScopedCredential
from repro.simtime import SimContext


@dataclass
class EndpointStats:
    calls: int = 0
    samples: int = 0
    queued_ms_total: float = 0.0
    scale_ups: int = 0


class VertexEndpoint:
    """A Vertex-AI-style model serving endpoint.

    Each replica serves ``per_replica_qps`` samples per second. Replica
    count starts at ``min_replicas`` and grows toward ``max_replicas``
    when the queue backs up, but each step takes ``autoscale_step_ms`` —
    the "limited auto scaling agility" of §4.2.
    """

    def __init__(
        self,
        model: ImageModel,
        ctx: SimContext,
        per_replica_qps: float = 50.0,
        min_replicas: int = 1,
        max_replicas: int = 8,
    ) -> None:
        self.model = model
        self.ctx = ctx
        self.per_replica_qps = per_replica_qps
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.replicas = min_replicas
        self.stats = EndpointStats()
        # Simulated time at which current in-flight work drains.
        self._backlog_clear_ms = 0.0
        self._next_scale_ready_ms = 0.0

    def predict(self, tensors: np.ndarray) -> tuple[list[str], np.ndarray]:
        """Serve one batch, charging call overhead + queue + service time."""
        now = self.ctx.clock.now_ms
        n = len(tensors)
        self.stats.calls += 1
        self.stats.samples += n
        self.ctx.charge("vertex.call", self.ctx.costs.remote_call_overhead_ms)

        service_ms = (n / (self.replicas * self.per_replica_qps)) * 1000.0
        queue_ms = max(0.0, self._backlog_clear_ms - now)
        self.stats.queued_ms_total += queue_ms
        # Autoscale when work backs up — either a queue has formed or a
        # single batch exceeds a second of service time (demand > capacity).
        overloaded = queue_ms > 1000.0 or service_ms > 1000.0
        if overloaded and self.replicas < self.max_replicas:
            if now >= self._next_scale_ready_ms:
                self.replicas += 1
                self.stats.scale_ups += 1
                self._next_scale_ready_ms = now + self.ctx.costs.remote_autoscale_step_ms
        self._backlog_clear_ms = max(self._backlog_clear_ms, now) + service_ms
        self.ctx.clock.advance(queue_ms + service_ms)
        return self.model.predict(tensors)


class DocumentAiProcessor:
    """A first-party Document AI processor (Listing 2).

    ``process`` takes object references plus a scoped credential; the
    processor fetches bytes directly from the object store (validating the
    token for every access) and returns flattened invoice entities.
    """

    def __init__(
        self,
        name: str,
        ctx: SimContext,
        stores: StoreRegistry,
        connections: ConnectionManager,
        per_document_ms: float = 40.0,
    ) -> None:
        self.name = name
        self.ctx = ctx
        self.stores = stores
        self.connections = connections
        self.per_document_ms = per_document_ms
        self.documents_processed = 0

    def process(
        self,
        references: list[tuple[str, str]],  # (bucket, key)
        credential: ScopedCredential,
    ) -> list[dict]:
        """Fetch + parse each referenced document; returns entity dicts."""
        results = []
        for bucket, key in references:
            self.connections.validate(credential, bucket, key)
            store = self.stores.find_bucket(bucket)
            data = store.get_object(bucket, key)
            self.ctx.charge("documentai.process", self.per_document_ms)
            try:
                payload = parse_document(data)
            except MlError:
                results.append(
                    {"uri": f"store://{bucket}/{key}", "error": "unparseable document"}
                )
                continue
            self.documents_processed += 1
            results.append(
                {
                    "uri": f"store://{bucket}/{key}",
                    "doc_id": payload["doc_id"],
                    "vendor": payload["vendor"],
                    "invoice_date": payload["invoice_date"],
                    "total": float(payload["total"]),
                    "num_line_items": len(payload.get("line_items", [])),
                    "error": None,
                }
            )
        return results
