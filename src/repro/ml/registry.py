"""Model registry: imported (local) and remote models.

Mirrors BQML's model catalog: ``CREATE MODEL ... OPTIONS(model_path=...)``
imports a model into the dataset (runs in-engine), while ``CREATE MODEL
... REMOTE WITH CONNECTION`` (Listing 2) registers an endpoint reference —
a Vertex-style serving endpoint or a first-party processor like Document
AI — that inference calls out to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import NotFoundError
from repro.ml.models import ImageModel, load_model, peek_model_size


@dataclass
class LocalModel:
    """An imported model: bytes loadable into engine workers (§4.2.1)."""

    name: str  # dataset.model
    data: bytes

    def size_bytes(self) -> int:
        return peek_model_size(self.data)

    def load(self, memory_limit_bytes: int) -> ImageModel:
        return load_model(self.data, memory_limit_bytes)


@dataclass
class RemoteModel:
    """A remote model reference: endpoint + connection (§4.2.2)."""

    name: str
    connection_name: str
    remote_service_type: str  # "vertex" | "cloud_ai_document" | ...
    endpoint: Any  # VertexEndpoint or DocumentAiProcessor
    options: dict[str, Any] = field(default_factory=dict)


class ModelRegistry:
    """dataset.model -> model lookup for one deployment."""

    def __init__(self) -> None:
        self._models: dict[str, LocalModel | RemoteModel] = {}

    def register_local(self, name: str, data: bytes) -> LocalModel:
        model = LocalModel(name=name, data=data)
        self._models[name.lower()] = model
        return model

    def register_remote(
        self,
        name: str,
        connection_name: str,
        remote_service_type: str,
        endpoint: Any,
        **options: Any,
    ) -> RemoteModel:
        model = RemoteModel(
            name=name,
            connection_name=connection_name,
            remote_service_type=remote_service_type,
            endpoint=endpoint,
            options=options,
        )
        self._models[name.lower()] = model
        return model

    def get(self, path: tuple[str, ...] | str) -> LocalModel | RemoteModel:
        name = path if isinstance(path, str) else ".".join(path)
        try:
            return self._models[name.lower()]
        except KeyError:
            raise NotFoundError(f"model {name!r} not found") from None

    def has(self, path: tuple[str, ...] | str) -> bool:
        name = path if isinstance(path, str) else ".".join(path)
        return name.lower() in self._models
