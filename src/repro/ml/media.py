"""Synthetic unstructured media: SIMG images, SDOC documents, tensors.

The paper's object tables hold JPEGs and PDFs; offline we use two
self-describing binary formats that exercise the same code paths — a real
decode step with real bytes and sizes for images, and a text-extraction
step for documents.

SIMG layout: ``b"SIMG"`` + uint16 height/width/channels + uint8 pixels.
SDOC: UTF-8 JSON with an invoice-like payload and free-text body.
Tensors: ``b"TNSR"`` + uint8 ndim + uint32 dims + float32 data.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import MlError

_SIMG_MAGIC = b"SIMG"
_TENSOR_MAGIC = b"TNSR"


def encode_image(pixels: np.ndarray) -> bytes:
    """Serialize an HxWxC uint8 image to SIMG bytes."""
    if pixels.ndim == 2:
        pixels = pixels[:, :, None]
    if pixels.ndim != 3:
        raise MlError(f"image must be HxWxC, got shape {pixels.shape}")
    h, w, c = pixels.shape
    header = _SIMG_MAGIC + struct.pack("<HHH", h, w, c)
    return header + pixels.astype(np.uint8).tobytes()


def decode_image(data: bytes) -> np.ndarray:
    """Decode SIMG bytes to an HxWxC uint8 array."""
    if len(data) < 10 or data[:4] != _SIMG_MAGIC:
        raise MlError("not a SIMG image (bad magic)")
    h, w, c = struct.unpack_from("<HHH", data, 4)
    expected = h * w * c
    if len(data) - 10 < expected:
        raise MlError("truncated SIMG image")
    pixels = np.frombuffer(data, dtype=np.uint8, count=expected, offset=10)
    return pixels.reshape(h, w, c).copy()


def resize_image(pixels: np.ndarray, target_h: int, target_w: int) -> np.ndarray:
    """Nearest-neighbour resize (the preprocessing resize of §4.2.1)."""
    h, w, _ = pixels.shape
    row_idx = (np.arange(target_h) * h // target_h).clip(0, h - 1)
    col_idx = (np.arange(target_w) * w // target_w).clip(0, w - 1)
    return pixels[row_idx][:, col_idx]


def preprocess_image(data: bytes, target_h: int, target_w: int) -> np.ndarray:
    """Decode + resize + normalize to float32 in [0, 1] — the full
    preprocessing pipeline run before inference."""
    pixels = decode_image(data)
    resized = resize_image(pixels, target_h, target_w)
    return resized.astype(np.float32) / 255.0


def encode_tensor(tensor: np.ndarray) -> bytes:
    """Serialize a float tensor (the unit exchanged between preprocessing
    and inference workers in Fig. 7 — much smaller than the raw image)."""
    tensor = np.asarray(tensor, dtype=np.float32)
    header = _TENSOR_MAGIC + struct.pack("<B", tensor.ndim)
    dims = struct.pack(f"<{tensor.ndim}I", *tensor.shape)
    return header + dims + tensor.tobytes()


def decode_tensor(data: bytes) -> np.ndarray:
    if len(data) < 5 or data[:4] != _TENSOR_MAGIC:
        raise MlError("not a tensor (bad magic)")
    (ndim,) = struct.unpack_from("<B", data, 4)
    dims = struct.unpack_from(f"<{ndim}I", data, 5)
    offset = 5 + 4 * ndim
    count = int(np.prod(dims)) if ndim else 1
    values = np.frombuffer(data, dtype=np.float32, count=count, offset=offset)
    return values.reshape(dims).copy()


# --------------------------------------------------------------------------
# Documents
# --------------------------------------------------------------------------


def make_document(
    doc_id: str,
    vendor: str,
    invoice_date: str,
    total: float,
    line_items: list[tuple[str, float]] | None = None,
) -> bytes:
    """Build an SDOC invoice document."""
    lines = line_items or []
    text = "\n".join(
        [
            f"INVOICE #{doc_id}",
            f"Vendor: {vendor}",
            f"Date: {invoice_date}",
        ]
        + [f"  {name}: ${amount:.2f}" for name, amount in lines]
        + [f"TOTAL DUE: ${total:.2f}"]
    )
    payload = {
        "format": "sdoc/v1",
        "doc_id": doc_id,
        "vendor": vendor,
        "invoice_date": invoice_date,
        "total": total,
        "line_items": [[n, a] for n, a in lines],
        "text": text,
    }
    return json.dumps(payload).encode("utf-8")


def parse_document(data: bytes) -> dict:
    """Parse SDOC bytes; raises :class:`MlError` on anything else."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MlError(f"not an SDOC document: {exc}") from None
    if payload.get("format") != "sdoc/v1":
        raise MlError("not an SDOC document (wrong format tag)")
    return payload
