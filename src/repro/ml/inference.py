"""In-engine and external inference runtime (§4.2, Fig. 7).

``ML.PREDICT`` over a *local* model runs inside the engine: images are
preprocessed into tensors and classified by numpy models, with simulated
per-worker memory accounting. The paper's key scheduling idea is
reproduced exactly: preprocessing and inference run on *different*
workers, exchanging (small) tensors, so the raw image and the model are
never resident in the same worker — bounding peak worker memory at the
cost of an exchange.

``ML.PREDICT`` over a *remote* model preprocesses in-engine and calls a
Vertex-style endpoint. ``ML.PROCESS_DOCUMENT`` passes URIs and a scoped
access token to a first-party Document AI processor which reads the
objects itself (§4.2.2) — document bytes never flow through the engine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.data.batch import RecordBatch, batch_from_pydict, concat_batches
from repro.data.column import Column
from repro.data.types import DataType, Field, Schema
from repro.errors import AnalysisError, MlError
from repro.ml import media
from repro.ml.models import IN_ENGINE_MODEL_LIMIT_BYTES
from repro.ml.registry import LocalModel, ModelRegistry, RemoteModel
from repro.ml.remote import DocumentAiProcessor, VertexEndpoint
from repro.simtime import MIB
from repro.sql.expressions import ScalarFunction

PROCESS_DOCUMENT_SCHEMA = Schema.of(
    ("uri", DataType.STRING),
    ("doc_id", DataType.STRING),
    ("vendor", DataType.STRING),
    ("invoice_date", DataType.STRING),
    ("total", DataType.FLOAT64),
    ("num_line_items", DataType.INT64),
    ("error", DataType.STRING),
)

_PREDICTION_FIELDS = (
    Field("predicted_label", DataType.STRING),
    Field("predicted_score", DataType.FLOAT64),
    Field("predictions", DataType.STRING),
)


@dataclass
class WorkerProfile:
    """Simulated Dremel worker characteristics (§4.2.1: workers have a
    relatively small amount of working memory; sandboxes add overhead)."""

    memory_bytes: int = 256 * 1024 * 1024
    sandbox_overhead_bytes: int = 48 * 1024 * 1024
    flops_per_ms: float = 5.0e6
    inference_batch_size: int = 32


@dataclass
class InferenceStats:
    """Counters across one runtime's lifetime."""

    images_processed: int = 0
    documents_processed: int = 0
    remote_calls: int = 0
    peak_worker_memory_bytes: int = 0
    oom_events: int = 0
    preprocess_ms: float = 0.0
    inference_ms: float = 0.0
    exchange_bytes: int = 0
    exchange_ms: float = 0.0

    def observe_memory(self, peak: int) -> None:
        self.peak_worker_memory_bytes = max(self.peak_worker_memory_bytes, peak)


class InferenceRuntime:
    """Owns the model registry and the ML TVF/scalar implementations."""

    def __init__(
        self,
        platform,
        registry: ModelRegistry | None = None,
        worker_profile: WorkerProfile | None = None,
        split_preprocess: bool = True,
        enforce_memory: bool = True,
    ) -> None:
        self.platform = platform
        self.registry = registry or ModelRegistry()
        self.profile = worker_profile or WorkerProfile()
        self.split_preprocess = split_preprocess
        self.enforce_memory = enforce_memory
        self.stats = InferenceStats()
        self._register_scalar_functions()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def attach(self, engine) -> None:
        """Register the ML TVFs on an engine."""
        engine.register_tvf("ML.PREDICT", _PredictHandler(self))
        engine.register_tvf("ML.PROCESS_DOCUMENT", _ProcessDocumentHandler(self))

    def _register_scalar_functions(self) -> None:
        """``ML.DECODE_IMAGE`` decodes SIMG bytes into normalized tensors."""

        def decode(args: list[Column]) -> Column:
            source = args[0]
            valid = source.is_valid()
            out = np.empty(len(source), dtype=object)
            for i in range(len(source)):
                if not valid[i]:
                    continue
                pixels = media.decode_image(source.values[i])
                tensor = pixels.astype(np.float32) / 255.0
                out[i] = media.encode_tensor(tensor)
            return Column(DataType.BYTES, out, None if bool(valid.all()) else valid)

        self.platform.functions.register(
            ScalarFunction(
                "ML.DECODE_IMAGE", decode,
                lambda dtypes: DataType.BYTES, min_args=1, max_args=1,
            )
        )

    # ------------------------------------------------------------------
    # Model management (the CREATE MODEL equivalents)
    # ------------------------------------------------------------------

    def import_model(self, name: str, model_bytes: bytes) -> LocalModel:
        """``CREATE MODEL name OPTIONS(model_path=...)`` — in-engine."""
        return self.registry.register_local(name, model_bytes)

    def register_endpoint(self, name: str, endpoint) -> None:
        """Register a serving endpoint so SQL ``OPTIONS(endpoint='name')``
        can reference it."""
        if not hasattr(self, "_endpoints"):
            self._endpoints: dict[str, object] = {}
        self._endpoints[name] = endpoint

    def create_model_from_sql(self, statement) -> LocalModel | RemoteModel:
        """Execute a ``CREATE [OR REPLACE] MODEL`` statement (Listing 2)."""
        from repro.errors import AlreadyExistsError

        name = ".".join(statement.name)
        if self.registry.has(name) and not statement.replace:
            raise AlreadyExistsError(f"model {name!r} already exists")
        options = statement.options
        if statement.remote_connection is not None:
            connection_name = ".".join(statement.remote_connection)
            service_type = options.get("remote_service_type", "vertex_ai")
            if service_type == "cloud_ai_document":
                processor_name = options.get("document_processor")
                if not processor_name:
                    raise AnalysisError(
                        "cloud_ai_document models require OPTIONS(document_processor=...)"
                    )
                processor = DocumentAiProcessor(
                    processor_name, self.platform.ctx,
                    self.platform.stores, self.platform.connections,
                )
                return self.create_document_processor_model(
                    name, connection_name, processor
                )
            endpoint_name = options.get("endpoint")
            endpoints = getattr(self, "_endpoints", {})
            if endpoint_name not in endpoints:
                raise AnalysisError(
                    f"OPTIONS(endpoint={endpoint_name!r}) does not reference a "
                    "registered endpoint (use runtime.register_endpoint)"
                )
            return self.create_remote_vertex_model(
                name, connection_name, endpoints[endpoint_name]
            )
        model_path = options.get("model_path")
        if not model_path:
            raise AnalysisError("local models require OPTIONS(model_path='store://...')")
        trimmed = str(model_path).removeprefix("store://")
        bucket, _, key = trimmed.partition("/")
        store = self.platform.stores.find_bucket(bucket)
        return self.import_model(name, store.get_object(bucket, key))

    def create_remote_vertex_model(
        self, name: str, connection_name: str, endpoint: VertexEndpoint
    ) -> RemoteModel:
        """``CREATE MODEL ... REMOTE WITH CONNECTION`` — Vertex serving."""
        self.platform.connections.get_connection(connection_name)
        return self.registry.register_remote(name, connection_name, "vertex", endpoint)

    def create_document_processor_model(
        self, name: str, connection_name: str, processor: DocumentAiProcessor
    ) -> RemoteModel:
        """Listing 2's invoice parser: remote_service_type='cloud_ai_document'."""
        self.platform.connections.get_connection(connection_name)
        return self.registry.register_remote(
            name, connection_name, "cloud_ai_document", processor
        )

    # ------------------------------------------------------------------
    # ML.PREDICT
    # ------------------------------------------------------------------

    def predict_schema(self, model: tuple[str, ...], input_schema: Schema | None) -> Schema:
        if input_schema is None:
            raise AnalysisError("ML.PREDICT requires an input query")
        return Schema(tuple(input_schema.fields) + _PREDICTION_FIELDS)

    def run_predict(
        self, model_path: tuple[str, ...], input_batches: list[RecordBatch], ctx
    ) -> list[RecordBatch]:
        entry = self.registry.get(model_path)
        if not input_batches:
            return []
        input_schema = input_batches[0].schema
        combined = concat_batches(input_schema, input_batches)
        tensor_column = _find_tensor_column(combined)
        with self.platform.ctx.tracer.span(
            "ml.predict", layer="ml",
            model=".".join(model_path), rows=combined.num_rows,
            mode="local" if isinstance(entry, LocalModel) else "remote",
        ):
            tensors, raw_sizes = self._materialize_tensors(combined, tensor_column, entry)
            if isinstance(entry, LocalModel):
                labels, scores = self._in_engine_predict(entry, tensors, raw_sizes, ctx)
            else:
                labels, scores = self._remote_predict(entry, tensors, ctx)
        self.stats.images_processed += len(labels)
        out_schema = self.predict_schema(model_path, input_schema)
        predictions_json = [
            json.dumps({"label": label, "score": round(float(score), 6)})
            for label, score in zip(labels, scores)
        ]
        columns = list(combined.columns) + [
            Column.from_pylist(DataType.STRING, labels),
            Column(DataType.FLOAT64, np.asarray(scores, dtype=np.float64)),
            Column.from_pylist(DataType.STRING, predictions_json),
        ]
        return [RecordBatch(out_schema, columns)]

    def _materialize_tensors(
        self, batch: RecordBatch, column_name: str, entry
    ) -> tuple[np.ndarray, list[int]]:
        """Decode the tensor/image column to a stacked [N, H, W, C] array
        resized to the model's input signature."""
        model = self._peek_model(entry)
        target_h, target_w = model.input_height, model.input_width
        column = batch.column(column_name)
        tensors = []
        raw_sizes = []
        for i in range(len(column)):
            payload = column[i]
            if payload is None:
                raise MlError(f"NULL value in tensor column {column_name!r}")
            raw_sizes.append(len(payload))
            if payload[:4] == b"TNSR":
                tensor = media.decode_tensor(payload)
            else:
                tensor = media.decode_image(payload).astype(np.float32) / 255.0
            resized = media.resize_image(tensor, target_h, target_w)
            tensors.append(resized)
        return np.stack(tensors), raw_sizes

    def _peek_model(self, entry):
        if isinstance(entry, LocalModel):
            return entry.load(IN_ENGINE_MODEL_LIMIT_BYTES)
        if isinstance(entry, RemoteModel) and isinstance(entry.endpoint, VertexEndpoint):
            return entry.endpoint.model
        raise MlError(f"model {entry.name!r} cannot serve ML.PREDICT")

    def _in_engine_predict(
        self, entry: LocalModel, tensors: np.ndarray, raw_sizes: list[int], ctx
    ) -> tuple[list[str], np.ndarray]:
        """The Fig. 7 path: preprocess and inference on separate workers."""
        model = entry.load(IN_ENGINE_MODEL_LIMIT_BYTES)
        declared = entry.size_bytes()
        n = len(tensors)
        tensor_bytes = int(tensors[0].nbytes) if n else 0
        max_raw = max(raw_sizes) if raw_sizes else 0
        sandbox = self.profile.sandbox_overhead_bytes
        if self.split_preprocess:
            preprocess_peak = sandbox + max_raw + tensor_bytes
            inference_peak = (
                sandbox + declared + tensor_bytes * self.profile.inference_batch_size
            )
            peak = max(preprocess_peak, inference_peak)
        else:
            # Colocated: raw image, both sandboxes, and the model together.
            peak = 2 * sandbox + declared + max_raw + tensor_bytes
        self.stats.observe_memory(peak)
        if self.enforce_memory and peak > self.profile.memory_bytes:
            self.stats.oom_events += 1
            raise MlError(
                f"inference worker needs {peak} bytes but workers have "
                f"{self.profile.memory_bytes} (enable the split preprocess/"
                "inference plan, Fig. 7)"
            )

        sim = self.platform.ctx
        pixels = model.input_height * model.input_width * model.channels
        preprocess_ms = n * (pixels * 5.0) / self.profile.flops_per_ms
        inference_ms = n * model.flops_per_sample / self.profile.flops_per_ms
        self.stats.preprocess_ms += preprocess_ms
        self.stats.inference_ms += inference_ms
        work_ms = preprocess_ms + inference_ms
        if self.split_preprocess and n:
            exchange_bytes = tensor_bytes * n
            exchange_ms = (exchange_bytes / MIB) * (
                sim.costs.shuffle_write_per_mib_ms + sim.costs.shuffle_read_per_mib_ms
            )
            self.stats.exchange_bytes += exchange_bytes
            self.stats.exchange_ms += exchange_ms
            work_ms += exchange_ms
        sim.charge("ml.in_engine_predict", work_ms)
        if ctx is not None:
            ctx.stats.scan_work_ms += work_ms
            ctx.stats.scan_tasks += n
        return model.predict(tensors)

    def _remote_predict(
        self, entry: RemoteModel, tensors: np.ndarray, ctx
    ) -> tuple[list[str], np.ndarray]:
        endpoint = entry.endpoint
        if not isinstance(endpoint, VertexEndpoint):
            raise MlError(f"model {entry.name!r} is not a Vertex endpoint")
        sim = self.platform.ctx
        labels: list[str] = []
        scores: list[float] = []
        batch_size = self.profile.inference_batch_size
        for start in range(0, len(tensors), batch_size):
            chunk = tensors[start : start + batch_size]
            # Ship tensors to the external service and results back.
            payload_bytes = int(chunk.nbytes)
            sim.clock.advance((payload_bytes / MIB) * sim.costs.in_region_per_mib_ms)
            chunk_labels, chunk_scores = endpoint.predict(chunk)
            labels.extend(chunk_labels)
            scores.extend(float(s) for s in chunk_scores)
            self.stats.remote_calls += 1
        return labels, np.asarray(scores, dtype=np.float64)

    # ------------------------------------------------------------------
    # ML.PROCESS_DOCUMENT
    # ------------------------------------------------------------------

    def process_document_schema(self) -> Schema:
        return PROCESS_DOCUMENT_SCHEMA

    def run_process_document(
        self, model_path: tuple[str, ...], node, input_batches, ctx
    ) -> list[RecordBatch]:
        entry = self.registry.get(model_path)
        if not isinstance(entry, RemoteModel) or not isinstance(
            entry.endpoint, DocumentAiProcessor
        ):
            raise MlError(
                f"ML.PROCESS_DOCUMENT requires a cloud_ai_document remote model"
            )
        references = self._document_references(node, input_batches, ctx)
        if not references:
            return []
        # §5.3.1-style scoping: mint a credential for exactly these paths.
        connection = self.platform.connections.get_connection(entry.connection_name)
        paths = [f"{bucket}/{key}" for bucket, key in references]
        credential = self.platform.connections.mint_scoped_credential(connection, paths)
        try:
            with self.platform.ctx.tracer.span(
                "ml.process_document", layer="ml",
                model=".".join(model_path), documents=len(references),
            ):
                results = entry.endpoint.process(references, credential)
        finally:
            self.platform.connections.revoke(credential)
        self.stats.documents_processed += len(results)
        data = {name: [] for name in PROCESS_DOCUMENT_SCHEMA.names()}
        for row in results:
            for name in data:
                data[name].append(row.get(name))
        return [batch_from_pydict(PROCESS_DOCUMENT_SCHEMA, data)]

    def _document_references(self, node, input_batches, ctx) -> list[tuple[str, str]]:
        """Collect (bucket, key) pairs from the TVF input — without ever
        fetching the document bytes through the engine."""
        if node.input_table is not None:
            engine = ctx.engine
            session = engine.read_api.create_read_session(
                principal=ctx.principal,
                table=node.input_table,
                columns=["bucket", "key"],
                engine_location=engine.remote_location_for(node.input_table),
            )
            references = []
            for stream_index in range(len(session.streams)):
                for batch in engine.read_api.read_rows(session, stream_index):
                    buckets = batch.column("bucket").to_pylist()
                    keys = batch.column("key").to_pylist()
                    references.extend(zip(buckets, keys))
            return references
        references = []
        for batch in input_batches or []:
            if batch.schema.has_field("bucket") and batch.schema.has_field("key"):
                references.extend(
                    zip(batch.column("bucket").to_pylist(), batch.column("key").to_pylist())
                )
            elif batch.schema.has_field("uri"):
                for uri in batch.column("uri").to_pylist():
                    trimmed = uri.removeprefix("store://")
                    bucket, _, key = trimmed.partition("/")
                    references.append((bucket, key))
            else:
                raise AnalysisError(
                    "ML.PROCESS_DOCUMENT input must provide uri or bucket/key columns"
                )
        return references


class _PredictHandler:
    """TVF adapter for ML.PREDICT."""

    def __init__(self, runtime: InferenceRuntime) -> None:
        self.runtime = runtime

    def output_schema(self, model: tuple[str, ...], input_schema: Schema | None) -> Schema:
        return self.runtime.predict_schema(model, input_schema)

    def execute(self, node, input_batches, ctx) -> list[RecordBatch]:
        return self.runtime.run_predict(node.model, input_batches or [], ctx)


class _ProcessDocumentHandler:
    """TVF adapter for ML.PROCESS_DOCUMENT."""

    def __init__(self, runtime: InferenceRuntime) -> None:
        self.runtime = runtime

    def output_schema(self, model: tuple[str, ...], input_schema: Schema | None) -> Schema:
        return self.runtime.process_document_schema()

    def execute(self, node, input_batches, ctx) -> list[RecordBatch]:
        return self.runtime.run_process_document(node.model, node, input_batches, ctx)


def _find_tensor_column(batch: RecordBatch) -> str:
    """Prefer a column named ``image``; otherwise the first BYTES column."""
    for f in batch.schema:
        if f.name.lower() == "image":
            return f.name
    for f in batch.schema:
        if f.dtype is DataType.BYTES:
            return f.name
    raise AnalysisError("ML.PREDICT input has no BYTES (image/tensor) column")
