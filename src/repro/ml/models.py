"""Numpy model zoo + binary model format with a loadable-size limit.

Stands in for the TensorFlow/TFLite/ONNX models BQML loads into Dremel
workers (§4.2.1). The binary format ("MDL1") carries a JSON header (type,
input signature, classes, *declared size*) plus float32 weights;
:func:`load_model` enforces the in-engine size ceiling — models over the
limit (2 GB in the paper) must run externally.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import MlError, ModelTooLargeError

_MAGIC = b"MDL1"

# The paper's in-engine ceiling: "models greater than 2GB cannot be loaded".
IN_ENGINE_MODEL_LIMIT_BYTES = 2 * 1024**3


class ImageModel:
    """Base class: classify float32 [N, H, W, C] tensors into labels."""

    model_type = "base"

    def __init__(self, input_height: int, input_width: int, channels: int, classes: list[str]):
        self.input_height = input_height
        self.input_width = input_width
        self.channels = channels
        self.classes = list(classes)

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return (self.input_height, self.input_width, self.channels)

    def predict(self, tensors: np.ndarray) -> tuple[list[str], np.ndarray]:
        """(labels, scores) for a batch of preprocessed tensors."""
        logits = self.forward(tensors)
        indices = np.argmax(logits, axis=1)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        scores = probabilities[np.arange(len(indices)), indices]
        return [self.classes[i] for i in indices], scores

    def forward(self, tensors: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def weights(self) -> list[np.ndarray]:
        raise NotImplementedError

    def size_bytes(self) -> int:
        return sum(w.nbytes for w in self.weights()) + 1024

    @property
    def flops_per_sample(self) -> float:
        """Rough floating-point work per input (drives simulated latency)."""
        pixels = self.input_height * self.input_width * self.channels
        return float(pixels * len(self.classes) * 2)


class CentroidClassifier(ImageModel):
    """Nearest-centroid classifier expressed as a linear layer.

    Trainable on the synthetic corpus and genuinely accurate on it, so
    tests can assert real end-to-end inference quality.
    """

    model_type = "centroid"

    def __init__(self, input_height, input_width, channels, classes, centroids: np.ndarray):
        super().__init__(input_height, input_width, channels, classes)
        self.centroids = np.asarray(centroids, dtype=np.float32)  # [K, D]

    def forward(self, tensors: np.ndarray) -> np.ndarray:
        flat = tensors.reshape(len(tensors), -1)
        # Negative squared distance as logit.
        distances = (
            (flat**2).sum(axis=1, keepdims=True)
            - 2 * flat @ self.centroids.T
            + (self.centroids**2).sum(axis=1)
        )
        return -distances

    def weights(self) -> list[np.ndarray]:
        return [self.centroids]


class MlpClassifier(ImageModel):
    """One-hidden-layer MLP with seeded random weights."""

    model_type = "mlp"

    def __init__(self, input_height, input_width, channels, classes,
                 hidden: int = 64, seed: int = 0,
                 w1: np.ndarray | None = None, w2: np.ndarray | None = None):
        super().__init__(input_height, input_width, channels, classes)
        dim = input_height * input_width * channels
        rng = np.random.default_rng(seed)
        self.w1 = w1 if w1 is not None else rng.standard_normal((dim, hidden)).astype(np.float32) * 0.05
        self.w2 = w2 if w2 is not None else rng.standard_normal((hidden, len(classes))).astype(np.float32) * 0.05

    def forward(self, tensors: np.ndarray) -> np.ndarray:
        flat = tensors.reshape(len(tensors), -1).astype(np.float32)
        hidden = np.maximum(flat @ self.w1, 0.0)
        return hidden @ self.w2

    def weights(self) -> list[np.ndarray]:
        return [self.w1, self.w2]

    @property
    def flops_per_sample(self) -> float:
        return float(2 * (self.w1.size + self.w2.size))


class TinyConvNet(ImageModel):
    """A small convolutional classifier ("resnet-sim" in the examples).

    One 3x3 conv + ReLU + global average pool + linear head, implemented
    with strided numpy windows — real convolution arithmetic at toy scale.
    """

    model_type = "convnet"

    def __init__(self, input_height, input_width, channels, classes,
                 filters: int = 8, seed: int = 0,
                 kernel: np.ndarray | None = None, head: np.ndarray | None = None):
        super().__init__(input_height, input_width, channels, classes)
        rng = np.random.default_rng(seed)
        self.kernel = (
            kernel if kernel is not None
            else rng.standard_normal((3, 3, channels, filters)).astype(np.float32) * 0.1
        )
        self.head = (
            head if head is not None
            else rng.standard_normal((filters, len(classes))).astype(np.float32) * 0.1
        )

    def forward(self, tensors: np.ndarray) -> np.ndarray:
        x = tensors.astype(np.float32)
        n, h, w, c = x.shape
        kh, kw, _, f = self.kernel.shape
        out_h, out_w = h - kh + 1, w - kw + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(1, 2))
        # windows: [N, out_h, out_w, C, kh, kw] -> conv via einsum.
        feature_maps = np.einsum("nhwcij,ijcf->nhwf", windows, self.kernel)
        activated = np.maximum(feature_maps, 0.0)
        pooled = activated.mean(axis=(1, 2))  # [N, F]
        return pooled @ self.head

    def weights(self) -> list[np.ndarray]:
        return [self.kernel, self.head]

    @property
    def flops_per_sample(self) -> float:
        kh, kw, c, f = self.kernel.shape
        spatial = (self.input_height - kh + 1) * (self.input_width - kw + 1)
        return float(2 * spatial * kh * kw * c * f + 2 * f * len(self.classes))


def train_centroid_classifier(
    images: list[np.ndarray], labels: list[str], input_h: int, input_w: int
) -> CentroidClassifier:
    """Fit per-class centroids on preprocessed tensors."""
    classes = sorted(set(labels))
    dim = input_h * input_w * images[0].shape[-1]
    sums = {c: np.zeros(dim, dtype=np.float64) for c in classes}
    counts = {c: 0 for c in classes}
    for image, label in zip(images, labels):
        sums[label] += image.reshape(-1)
        counts[label] += 1
    centroids = np.stack(
        [sums[c] / max(1, counts[c]) for c in classes]
    ).astype(np.float32)
    return CentroidClassifier(input_h, input_w, images[0].shape[-1], classes, centroids)


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------


def serialize_model(model: ImageModel, declared_size_bytes: int | None = None) -> bytes:
    """Serialize to MDL1 bytes.

    ``declared_size_bytes`` lets tests/benchmarks declare an arbitrarily
    large model (the header size is what the loader enforces) without
    allocating gigabytes of weights.
    """
    weights = model.weights()
    header = {
        "type": model.model_type,
        "input": [model.input_height, model.input_width, model.channels],
        "classes": model.classes,
        "shapes": [list(w.shape) for w in weights],
        "declared_size_bytes": declared_size_bytes or model.size_bytes(),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    parts = [_MAGIC, struct.pack("<I", len(header_bytes)), header_bytes]
    for w in weights:
        parts.append(np.asarray(w, dtype=np.float32).tobytes())
    return b"".join(parts)


def peek_model_size(data: bytes) -> int:
    """Declared size without loading weights."""
    header = _read_header(data)[0]
    return int(header["declared_size_bytes"])


def load_model(data: bytes, memory_limit_bytes: int = IN_ENGINE_MODEL_LIMIT_BYTES) -> ImageModel:
    """Deserialize a model, enforcing the in-engine size ceiling."""
    header, offset = _read_header(data)
    declared = int(header["declared_size_bytes"])
    if declared > memory_limit_bytes:
        raise ModelTooLargeError(
            f"model is {declared} bytes; in-engine limit is {memory_limit_bytes} "
            "(use a remote model instead, §4.2.2)"
        )
    h, w, c = header["input"]
    classes = header["classes"]
    weights = []
    for shape in header["shapes"]:
        count = int(np.prod(shape))
        arr = np.frombuffer(data, dtype=np.float32, count=count, offset=offset)
        weights.append(arr.reshape(shape).copy())
        offset += count * 4
    model_type = header["type"]
    if model_type == "centroid":
        return CentroidClassifier(h, w, c, classes, weights[0])
    if model_type == "mlp":
        return MlpClassifier(h, w, c, classes, w1=weights[0], w2=weights[1])
    if model_type == "convnet":
        return TinyConvNet(h, w, c, classes, kernel=weights[0], head=weights[1])
    raise MlError(f"unknown model type {model_type!r}")


def _read_header(data: bytes) -> tuple[dict, int]:
    if len(data) < 8 or data[:4] != _MAGIC:
        raise MlError("not an MDL1 model (bad magic)")
    (header_len,) = struct.unpack_from("<I", data, 4)
    header = json.loads(data[8 : 8 + header_len].decode("utf-8"))
    return header, 8 + header_len
