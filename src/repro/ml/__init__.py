"""BQML-style inference over unstructured data (§4.2).

* :mod:`repro.ml.media` — synthetic unstructured formats: SIMG images and
  SDOC documents, plus tensor (de)serialization.
* :mod:`repro.ml.models` — a numpy model zoo (centroid/linear classifier,
  MLP, tiny conv net) with a binary model format and a loadable-size limit
  standing in for the 2 GB Dremel-worker constraint.
* :mod:`repro.ml.registry` — local (imported) and remote (Vertex-style)
  model registration.
* :mod:`repro.ml.remote` — remote endpoints: a Vertex-like serving
  endpoint with capacity/autoscaling simulation and a Document-AI-style
  invoice processor that reads objects directly via access tokens.
* :mod:`repro.ml.inference` — the in-engine inference runtime: the
  ``ML.PREDICT`` / ``ML.PROCESS_DOCUMENT`` TVF handlers, the
  ``ML.DECODE_IMAGE`` scalar function, and the Fig. 7 distributed
  preprocess/inference split with per-worker memory accounting.
"""

from repro.ml.media import (
    decode_image,
    decode_tensor,
    encode_image,
    encode_tensor,
    make_document,
    parse_document,
)
from repro.ml.models import (
    CentroidClassifier,
    MlpClassifier,
    TinyConvNet,
    load_model,
    serialize_model,
    train_centroid_classifier,
)
from repro.ml.registry import LocalModel, ModelRegistry, RemoteModel
from repro.ml.remote import DocumentAiProcessor, VertexEndpoint
from repro.ml.inference import InferenceRuntime, InferenceStats, WorkerProfile

__all__ = [
    "decode_image",
    "decode_tensor",
    "encode_image",
    "encode_tensor",
    "make_document",
    "parse_document",
    "CentroidClassifier",
    "MlpClassifier",
    "TinyConvNet",
    "load_model",
    "serialize_model",
    "train_centroid_classifier",
    "LocalModel",
    "ModelRegistry",
    "RemoteModel",
    "DocumentAiProcessor",
    "VertexEndpoint",
    "InferenceRuntime",
    "InferenceStats",
    "WorkerProfile",
]
