"""Spark simulator + direct object-store data source."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.data.batch import RecordBatch
from repro.errors import QueryError
from repro.engine.engine import QueryEngine
from repro.formats import pqs
from repro.formats.readers import VectorizedReader
from repro.metastore.catalog import TableInfo, TableKind
from repro.metastore.constraints import ConstraintSet
from repro.security.iam import Permission, Principal
from repro.simtime import MIB
from repro.sql.analysis import extract_constraints
from repro.sql.expressions import Binder, evaluate_predicate
from repro.sql.parser import parse_expression
from repro.storageapi.fileutil import entry_from_footer, read_remote_footer
from repro.storageapi.read_api import ReadApi, ReadStream, SessionStats, _dir_prefix
from repro.tableformats.hive_layout import parse_partition_from_key

_session_ids = itertools.count(1)


@dataclass
class _DirectSession:
    """Duck-typed stand-in for a Read API session (direct mode)."""

    session_id: str
    table: TableInfo
    principal: Principal
    columns: list[str]
    row_restriction: str | None
    constraints: ConstraintSet
    streams: list[ReadStream]
    engine_location: str | None
    stats: SessionStats = field(default_factory=SessionStats)
    table_stats: dict | None = None  # direct reads have no statistics
    use_row_oriented_reader: bool = False


class DirectLakeReader:
    """Spark's legacy path: list the bucket, read footers, scan files.

    Governance model: *credential forwarding* — the querying principal
    itself must hold object-store permissions, gets raw bytes, and no
    row/column policies or masking apply (§3.1/§3.2's status quo).
    """

    def __init__(self, platform) -> None:
        self.platform = platform
        self.ctx = platform.ctx
        self.stores = platform.stores
        self.iam = platform.iam
        # Engine facade compatibility (stats_provider guards on use_stats).
        self.managed = platform.managed
        self.bigmeta = platform.bigmeta

    def create_read_session(
        self,
        principal: Principal,
        table: TableInfo,
        columns: list[str] | None = None,
        row_restriction: str | None = None,
        snapshot_ms: float | None = None,
        max_streams: int = 8,
        with_table_stats: bool = False,
        engine_location: str | None = None,
        use_row_oriented_reader: bool = False,
        aggregates: list | None = None,
        wire_format: str | None = None,
        reuse: bool = False,
        ranged_reads: bool = False,
    ) -> _DirectSession:
        if aggregates:
            raise QueryError("direct reads have no server to push aggregates to")
        if table.kind not in (TableKind.BIGLAKE, TableKind.EXTERNAL):
            raise QueryError(
                f"direct reads only work on lake files, not {table.kind.value} tables"
            )
        bucket = table.storage.bucket
        # Credential forwarding: the user needs raw bucket access.
        self.iam.require(principal, Permission.STORAGE_OBJECTS_LIST, f"buckets/{bucket}")
        self.iam.require(principal, Permission.STORAGE_OBJECTS_GET, f"buckets/{bucket}")

        constraints = ConstraintSet()
        if row_restriction:
            constraints = extract_constraints(parse_expression(row_restriction))

        store = self.stores.store_for(table.storage.location)
        stats = SessionStats()
        entries = []
        for meta in store.list_objects(bucket, prefix=_dir_prefix(table.storage.prefix)):
            if not meta.key.endswith(".pqs"):
                continue
            stats.files_total += 1
            partition = {}
            if table.partition_columns:
                partition = parse_partition_from_key(table.storage.prefix, meta.key)
            footer, size = read_remote_footer(
                store, bucket, meta.key, caller_location=engine_location
            )
            entry = entry_from_footer(f"{bucket}/{meta.key}", size, footer, partition)
            from repro.metastore.bigmeta import BigMetadataService

            if BigMetadataService._entry_matches(entry, constraints):
                entries.append(entry)
        stats.files_after_pruning = len(entries)
        # Same largest-first greedy placement as the Read API. The old
        # round-robin striping (streams[i % count]) skewed streams badly on
        # heterogeneous file sizes: one stream could collect every large
        # file while its neighbors got the small ones.
        streams = ReadApi._balance_streams(entries, max_streams)
        return _DirectSession(
            session_id=f"direct-{next(_session_ids):06d}",
            table=table,
            principal=principal,
            columns=columns or table.schema.names(),
            row_restriction=row_restriction,
            constraints=constraints,
            streams=streams,
            engine_location=engine_location,
            stats=stats,
        )

    def read_rows(self, session: _DirectSession, stream_index: int) -> Iterator[RecordBatch]:
        table = session.table
        store = self.stores.store_for(table.storage.location)
        predicate = None
        if session.row_restriction:
            predicate = Binder(table.schema, self.platform.functions).bind(
                parse_expression(session.row_restriction)
            )
        for entry in session.streams[stream_index].files:
            bucket, _, key = entry.file_path.partition("/")
            data = store.get_object(bucket, key, caller_location=session.engine_location)
            session.stats.bytes_scanned += len(data)
            reader = VectorizedReader(data)
            keep = set(range(len(reader.footer.row_groups)))
            for column, constraint in session.constraints:
                if not reader.footer.schema.has_field(column):
                    continue
                keep &= set(
                    reader.prunable_row_groups(
                        reader.footer.schema.field(column).name,
                        lo=constraint.lo, hi=constraint.hi,
                    )
                )
            session.stats.row_groups_pruned += len(reader.footer.row_groups) - len(keep)
            self.ctx.charge(
                "spark.direct_scan", (len(data) / MIB) * self.ctx.costs.scan_per_mib_ms
            )
            for rg_index in sorted(keep):
                batch = pqs.read_row_group(data, reader.footer, rg_index)
                session.stats.rows_scanned += batch.num_rows
                if predicate is not None:
                    batch = batch.filter(evaluate_predicate(predicate, batch))
                out = batch.select(session.columns)
                session.stats.rows_returned += out.num_rows
                if out.num_rows:
                    yield out


class SparkSim(QueryEngine):
    """An external engine with Spark's planner characteristics.

    ``mode='connector'`` reads through the Storage Read API the way real
    connectors do: CreateReadSession with ``executors`` requested streams,
    the session serialized and re-attached (the over-the-wire handoff),
    then one simulated executor per stream on the shared slot pool. With
    ``session_stats=True`` the connector also consumes the table statistics
    CreateReadSession returns, unlocking join reordering and dynamic
    partition pruning (§3.4). ``mode='direct'`` bypasses BigLake entirely.
    """

    def __init__(
        self,
        platform,
        mode: str = "connector",
        session_stats: bool = True,
        location: str | None = None,
        name: str | None = None,
        slots: int = 32,
        executors: int = 16,
    ) -> None:
        if mode not in ("connector", "direct"):
            raise ValueError(f"unknown SparkSim mode {mode!r}")
        self.mode = mode
        read_api = platform.read_api if mode == "connector" else DirectLakeReader(platform)
        stats_on = mode == "connector" and session_stats
        super().__init__(
            read_api=read_api,
            catalog=platform.catalog,
            location=location or platform.config.home_region.location,
            name=name or f"sparksim-{mode}",
            slots=slots,
            functions=platform.functions,
            use_stats=stats_on,
            enable_dpp=stats_on,
            # Aggregate pushdown is a DataSourceV2/connector capability;
            # the direct path has no server to push to.
            enable_aggregate_pushdown=(mode == "connector"),
        )
        # Connector scans consume via serialized multi-stream sessions:
        # the scan requests ``executors`` streams, attaches through the
        # wire handle, and schedules one task per stream.
        self.executor_per_stream = mode == "connector"
        self.scan_streams = executors if mode == "connector" else None
