"""External analytics engines (§3.2, §3.4).

:class:`~repro.external.sparksim.SparkSim` models Apache Spark with the
open-source BigQuery connector: it plans and executes queries itself, but
sources data either

* **via the Storage Read API** (DataSourceV2-style) — getting uniform
  governance and, when session statistics are enabled, the §3.4 plan
  improvements (join reordering, dynamic partition pruning); or
* **directly from the object store** — the legacy credential-forwarding
  model: the Spark principal needs raw bucket access, every query re-lists
  the bucket and reads footers, and *no* BigLake policies apply (the
  governance gap §3.2 closes).
"""

from repro.external.sparksim import DirectLakeReader, SparkSim

__all__ = ["DirectLakeReader", "SparkSim"]
