"""Row-oriented and vectorized scan paths over pqs files.

§3.4 of the paper: the initial Read API prototype reused a row-oriented
Parquet reader (decode to rows, re-columnarize), which was simple but slow;
a vectorized reader that emits columnar batches directly — operating on
dictionary/RLE data without decoding — doubled read throughput and improved
server CPU efficiency by an order of magnitude. Both paths are implemented
here so experiment E2 can measure the gap.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.data.batch import RecordBatch, batch_from_rows
from repro.data.types import Schema
from repro.formats import pqs


class RowReader:
    """The legacy row-oriented scan path.

    Decodes every row group to flat columns, then materializes python row
    tuples one at a time; filtering and projection happen per row. Used as
    the baseline in the vectorized-reader experiment.
    """

    def __init__(self, data: bytes, footer: pqs.FileFooter | None = None) -> None:
        self._data = data
        self.footer = footer if footer is not None else pqs.read_footer(data)

    def iter_rows(
        self,
        columns: list[str] | None = None,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
    ) -> Iterator[tuple]:
        """Yield row tuples, applying ``predicate`` on a per-row dict."""
        names = columns if columns is not None else self.footer.schema.names()
        all_names = self.footer.schema.names()
        for rg_index in range(len(self.footer.row_groups)):
            batch = pqs.read_row_group(
                self._data, self.footer, rg_index, keep_dictionary=False
            )
            for row in batch.iter_rows():
                row_dict = dict(zip(all_names, row))
                if predicate is not None and not predicate(row_dict):
                    continue
                yield tuple(row_dict[n] for n in names)

    def read_all(
        self,
        columns: list[str] | None = None,
        predicate: Callable[[dict[str, Any]], bool] | None = None,
        batch_rows: int = 8192,
    ) -> Iterator[RecordBatch]:
        """Row-scan then re-columnarize into batches (the prototype's
        row->column translation overhead, made explicit)."""
        names = columns if columns is not None else self.footer.schema.names()
        schema = self.footer.schema.select(names)
        buffer: list[tuple] = []
        for row in self.iter_rows(columns=names, predicate=predicate):
            buffer.append(row)
            if len(buffer) >= batch_rows:
                yield batch_from_rows(schema, buffer)
                buffer = []
        if buffer:
            yield batch_from_rows(schema, buffer)


class VectorizedReader:
    """The vectorized scan path: columnar batches straight from chunks.

    Dictionary-encoded chunks stay dictionary-encoded in the output, so
    downstream vectorized evaluation (Superluminal) can filter on codes.
    """

    def __init__(self, data: bytes, footer: pqs.FileFooter | None = None) -> None:
        self._data = data
        self.footer = footer if footer is not None else pqs.read_footer(data)

    @property
    def schema(self) -> Schema:
        return self.footer.schema

    def read_batches(
        self,
        columns: list[str] | None = None,
        keep_dictionary: bool = True,
    ) -> Iterator[RecordBatch]:
        """Yield one batch per row group, projected to ``columns``."""
        for rg_index in range(len(self.footer.row_groups)):
            yield pqs.read_row_group(
                self._data,
                self.footer,
                rg_index,
                columns=columns,
                keep_dictionary=keep_dictionary,
            )

    def prunable_row_groups(
        self, column: str, lo: Any = None, hi: Any = None
    ) -> list[int]:
        """Row groups that *may* contain values of ``column`` within
        ``[lo, hi]``, using footer min/max stats (block skipping)."""
        keep = []
        for i, rg in enumerate(self.footer.row_groups):
            chunk = rg.column(column)
            if chunk.min_value is None and chunk.max_value is None:
                if chunk.null_count == rg.num_rows and (lo is not None or hi is not None):
                    continue  # all-null group cannot match a range predicate
                keep.append(i)
                continue
            if lo is not None and chunk.max_value is not None and chunk.max_value < lo:
                continue
            if hi is not None and chunk.min_value is not None and chunk.min_value > hi:
                continue
            keep.append(i)
        return keep
