"""Physical encodings for pqs column chunks.

Encodings implemented:

* ``PLAIN`` — validity bytes followed by raw values (numpy buffers for
  fixed-width types, length-prefixed payloads for strings/bytes).
* ``RLE`` — run-length encoding of int32 code arrays.

Dictionary encoding is layered in :mod:`repro.formats.pqs`: a dictionary
chunk is a PLAIN-encoded dictionary followed by a (possibly RLE-compressed)
code array.

The hot-path codecs are vectorized (offset arrays + single-buffer slicing
instead of per-value ``struct`` calls); the pre-vectorization row-at-a-time
implementations are retained as ``*_naive`` reference oracles so property
tests can pin byte-identity. Every decoder validates chunk bounds and
raises :class:`ExecutionError` on truncation instead of leaking a raw
``struct.error`` or silently decoding a short payload.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.data.column import Column
from repro.data.types import DataType
from repro.errors import ExecutionError

_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")


def _fixed_numpy_dtype(dtype: DataType) -> np.dtype:
    if dtype is DataType.BOOL:
        return np.dtype(np.uint8)
    return dtype.numpy_dtype()


def encode_plain(column: Column) -> bytes:
    """Serialize a flat column: [n][validity bytes][values]."""
    n = len(column)
    valid = column.is_valid()
    parts: list[bytes] = [_U32.pack(n), valid.astype(np.uint8).tobytes()]
    if column.dtype.is_variable_width:
        payloads = [
            v.encode("utf-8") if isinstance(v, str) else bytes(v)
            for v in column.values[valid]
        ]
        if payloads:
            lengths = np.fromiter(
                (len(p) for p in payloads), dtype="<u4", count=len(payloads)
            )
            length_bytes = memoryview(lengths.tobytes())
            for k, payload in enumerate(payloads):
                parts.append(length_bytes[4 * k : 4 * k + 4])
                parts.append(payload)
    else:
        physical = column.values.astype(_fixed_numpy_dtype(column.dtype), copy=False)
        parts.append(physical.tobytes())
    return b"".join(parts)


def decode_plain(dtype: DataType, buf: bytes) -> Column:
    """Inverse of :func:`encode_plain`."""
    nbuf = len(buf)
    if nbuf < 4:
        raise ExecutionError("truncated PLAIN chunk")
    (n,) = _U32.unpack_from(buf, 0)
    offset = 4
    if nbuf - offset < n:
        raise ExecutionError("truncated PLAIN chunk")
    validity = np.frombuffer(buf, dtype=np.uint8, count=n, offset=offset).astype(bool)
    offset += n
    if dtype.is_variable_width:
        # One bounds-checked pass over the [len][payload] pairs builds the
        # payload offset array; values are then sliced out of the single
        # buffer in bulk instead of per-value struct.unpack_from calls.
        valid_count = int(np.count_nonzero(validity))
        starts: list[int] = []
        ends: list[int] = []
        pos = offset
        unpack = _U32.unpack_from
        for _ in range(valid_count):
            if pos + 4 > nbuf:
                raise ExecutionError("truncated PLAIN chunk")
            (length,) = unpack(buf, pos)
            pos += 4
            end = pos + length
            if end > nbuf:
                raise ExecutionError("truncated PLAIN chunk")
            starts.append(pos)
            ends.append(end)
            pos = end
        values = np.empty(n, dtype=object)
        if valid_count:
            if dtype is DataType.STRING:
                values[validity] = [
                    buf[s:e].decode("utf-8") for s, e in zip(starts, ends)
                ]
            else:
                values[validity] = [buf[s:e] for s, e in zip(starts, ends)]
        return Column(dtype, values, validity)
    physical = _fixed_numpy_dtype(dtype)
    if nbuf - offset < n * physical.itemsize:
        raise ExecutionError("truncated PLAIN chunk")
    values = np.frombuffer(buf, dtype=physical, count=n, offset=offset)
    if dtype is DataType.BOOL:
        values = values.astype(bool)
    else:
        values = values.copy()  # frombuffer yields a read-only view
    return Column(dtype, values, validity)


def encode_plain_naive(column: Column) -> bytes:
    """Pre-vectorization row-at-a-time encoder, retained as a test oracle."""
    n = len(column)
    parts = [_U32.pack(n), column.is_valid().astype(np.uint8).tobytes()]
    if column.dtype.is_variable_width:
        valid = column.is_valid()
        for i in range(n):
            if not valid[i]:
                continue
            v = column.values[i]
            payload = v.encode("utf-8") if isinstance(v, str) else bytes(v)
            parts.append(_U32.pack(len(payload)))
            parts.append(payload)
    else:
        physical = column.values.astype(_fixed_numpy_dtype(column.dtype), copy=False)
        parts.append(physical.tobytes())
    return b"".join(parts)


def decode_plain_naive(dtype: DataType, buf: bytes) -> Column:
    """Pre-vectorization row-at-a-time decoder, retained as a test oracle
    (with the same truncation bounds checks as :func:`decode_plain`)."""
    nbuf = len(buf)
    if nbuf < 4:
        raise ExecutionError("truncated PLAIN chunk")
    (n,) = _U32.unpack_from(buf, 0)
    offset = 4
    if nbuf - offset < n:
        raise ExecutionError("truncated PLAIN chunk")
    validity = np.frombuffer(buf, dtype=np.uint8, count=n, offset=offset).astype(bool)
    offset += n
    if dtype.is_variable_width:
        values = np.empty(n, dtype=object)
        for i in range(n):
            if not validity[i]:
                continue
            if offset + 4 > nbuf:
                raise ExecutionError("truncated PLAIN chunk")
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            if offset + length > nbuf:
                raise ExecutionError("truncated PLAIN chunk")
            payload = buf[offset : offset + length]
            offset += length
            values[i] = payload.decode("utf-8") if dtype is DataType.STRING else payload
        return Column(dtype, values, validity)
    physical = _fixed_numpy_dtype(dtype)
    if nbuf - offset < n * physical.itemsize:
        raise ExecutionError("truncated PLAIN chunk")
    values = np.frombuffer(buf, dtype=physical, count=n, offset=offset)
    if dtype is DataType.BOOL:
        values = values.astype(bool)
    else:
        values = values.copy()
    return Column(dtype, values, validity)


def encode_codes_plain(codes: np.ndarray) -> bytes:
    """[n][int32 codes]; code -1 is null."""
    codes = np.asarray(codes, dtype=np.int32)
    return _U32.pack(len(codes)) + codes.tobytes()


def decode_codes_plain(buf: bytes) -> np.ndarray:
    if len(buf) < 4:
        raise ExecutionError("truncated PLAIN code chunk")
    (n,) = _U32.unpack_from(buf, 0)
    if len(buf) - 4 < 4 * n:
        raise ExecutionError("truncated PLAIN code chunk")
    return np.frombuffer(buf, dtype=np.int32, count=n, offset=4).copy()


def encode_codes_rle(codes: np.ndarray) -> bytes:
    """Run-length encode an int32 code array: [n][num_runs][(code,len)...]."""
    codes = np.asarray(codes, dtype=np.int32)
    n = len(codes)
    if n == 0:
        return _U32.pack(0) + _U32.pack(0)
    # Boundaries where the value changes.
    change = np.flatnonzero(codes[1:] != codes[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    run_values = codes[starts]
    run_lengths = (ends - starts).astype(np.uint32)
    parts = [_U32.pack(n), _U32.pack(len(starts))]
    interleaved = np.empty(2 * len(starts), dtype=np.uint32)
    interleaved[0::2] = run_values.view(np.uint32)
    interleaved[1::2] = run_lengths
    parts.append(interleaved.tobytes())
    return b"".join(parts)


def decode_codes_rle(buf: bytes) -> np.ndarray:
    if len(buf) < 8:
        raise ExecutionError("truncated RLE chunk")
    (n,) = _U32.unpack_from(buf, 0)
    (num_runs,) = _U32.unpack_from(buf, 4)
    if len(buf) - 8 < 8 * num_runs:
        raise ExecutionError("truncated RLE chunk")
    interleaved = np.frombuffer(buf, dtype=np.uint32, count=2 * num_runs, offset=8)
    run_values = interleaved[0::2].view(np.int32)
    run_lengths = interleaved[1::2].astype(np.int64)
    if int(run_lengths.sum()) != n:
        raise ExecutionError("corrupt RLE chunk: run lengths do not sum to n")
    return np.repeat(run_values, run_lengths)
