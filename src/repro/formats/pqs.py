"""pqs file layout: writer, footer, and row-group reader.

File layout (all offsets absolute)::

    magic "PQS1"
    row group 0: column chunk bytes, back to back
    row group 1: ...
    footer JSON (utf-8)
    footer length, uint32 little-endian
    magic "PQS1"

The footer carries the schema and, per column chunk: byte offset/length,
encoding, and min/max/null-count statistics — the physical metadata that
Big Metadata caches (§3.3) and that query engines otherwise have to fetch
with extra object reads.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.data.batch import RecordBatch, concat_batches
from repro.data.column import Column, DictionaryColumn
from repro.data.types import DataType, Schema
from repro.errors import ExecutionError
from repro.formats import encodings

MAGIC = b"PQS1"
_U32 = struct.Struct("<I")

ENCODING_PLAIN = "PLAIN"
ENCODING_DICT = "DICT"
ENCODING_DICT_RLE = "DICT_RLE"

# Columns whose distinct-value ratio is below this threshold are
# dictionary-encoded, mirroring Parquet writers' behaviour.
_DICT_RATIO_THRESHOLD = 0.5


@dataclass
class ColumnChunkMeta:
    """Footer entry for one column chunk within a row group."""

    name: str
    encoding: str
    offset: int
    length: int
    null_count: int
    min_value: Any = None
    max_value: Any = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "encoding": self.encoding,
            "offset": self.offset,
            "length": self.length,
            "null_count": self.null_count,
            "min": self.min_value,
            "max": self.max_value,
        }

    @staticmethod
    def from_dict(d: dict) -> "ColumnChunkMeta":
        return ColumnChunkMeta(
            name=d["name"],
            encoding=d["encoding"],
            offset=d["offset"],
            length=d["length"],
            null_count=d["null_count"],
            min_value=d.get("min"),
            max_value=d.get("max"),
        )


@dataclass
class RowGroupMeta:
    """Footer entry for one row group."""

    num_rows: int
    columns: list[ColumnChunkMeta] = field(default_factory=list)

    def column(self, name: str) -> ColumnChunkMeta:
        for c in self.columns:
            if c.name == name:
                return c
        raise ExecutionError(f"row group has no column {name!r}")

    def to_dict(self) -> dict:
        return {
            "num_rows": self.num_rows,
            "columns": [c.to_dict() for c in self.columns],
        }

    @staticmethod
    def from_dict(d: dict) -> "RowGroupMeta":
        return RowGroupMeta(
            num_rows=d["num_rows"],
            columns=[ColumnChunkMeta.from_dict(c) for c in d["columns"]],
        )


@dataclass
class FileFooter:
    """Parsed pqs footer: schema, row groups, total rows."""

    schema: Schema
    row_groups: list[RowGroupMeta]
    num_rows: int

    def column_stats(self, name: str) -> tuple[Any, Any, int]:
        """File-level (min, max, null_count) for column ``name``."""
        mins, maxs, nulls = [], [], 0
        for rg in self.row_groups:
            chunk = rg.column(name)
            nulls += chunk.null_count
            if chunk.min_value is not None:
                mins.append(chunk.min_value)
            if chunk.max_value is not None:
                maxs.append(chunk.max_value)
        return (min(mins) if mins else None, max(maxs) if maxs else None, nulls)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema.to_dict(),
            "row_groups": [rg.to_dict() for rg in self.row_groups],
            "num_rows": self.num_rows,
        }

    @staticmethod
    def from_dict(d: dict) -> "FileFooter":
        return FileFooter(
            schema=Schema.from_dict(d["schema"]),
            row_groups=[RowGroupMeta.from_dict(rg) for rg in d["row_groups"]],
            num_rows=d["num_rows"],
        )


def _json_safe(value: Any) -> Any:
    """Statistics must survive a JSON round trip; bytes stats are dropped."""
    if isinstance(value, bytes):
        return None
    if isinstance(value, np.generic):
        return value.item()
    return value


def _encode_chunk(column: Column) -> tuple[str, bytes]:
    """Pick an encoding for a column chunk and serialize it.

    Dictionary encoding is used for low-cardinality non-float columns; the
    code stream is additionally RLE-compressed when that is smaller.
    """
    n = len(column)
    use_dict = False
    if n > 0 and column.dtype is not DataType.FLOAT64 and column.dtype is not DataType.BOOL:
        dict_col = DictionaryColumn.encode(column)
        if len(dict_col.dictionary) <= max(1, int(n * _DICT_RATIO_THRESHOLD)):
            use_dict = True
    if not use_dict:
        return ENCODING_PLAIN, encodings.encode_plain(column)
    dict_bytes = encodings.encode_plain(dict_col.dictionary)
    plain_codes = encodings.encode_codes_plain(dict_col.codes)
    rle_codes = encodings.encode_codes_rle(dict_col.codes)
    if len(rle_codes) < len(plain_codes):
        encoding, code_bytes = ENCODING_DICT_RLE, rle_codes
    else:
        encoding, code_bytes = ENCODING_DICT, plain_codes
    payload = _U32.pack(len(dict_bytes)) + dict_bytes + code_bytes
    return encoding, payload


def _decode_chunk(dtype: DataType, encoding: str, buf: bytes) -> Column | DictionaryColumn:
    if encoding == ENCODING_PLAIN:
        return encodings.decode_plain(dtype, buf)
    if len(buf) < 4:
        raise ExecutionError("truncated dictionary chunk")
    (dict_len,) = _U32.unpack_from(buf, 0)
    dict_bytes = buf[4 : 4 + dict_len]
    code_bytes = buf[4 + dict_len :]
    dictionary = encodings.decode_plain(dtype, dict_bytes)
    if encoding == ENCODING_DICT_RLE:
        codes = encodings.decode_codes_rle(code_bytes)
    elif encoding == ENCODING_DICT:
        codes = encodings.decode_codes_plain(code_bytes)
    else:
        raise ExecutionError(f"unknown chunk encoding {encoding!r}")
    return DictionaryColumn(dtype, codes, dictionary)


def write_table(
    schema: Schema,
    batches: Sequence[RecordBatch],
    row_group_rows: int = 65536,
) -> bytes:
    """Serialize batches into a single pqs file (returned as bytes)."""
    combined = concat_batches(schema, list(batches))
    parts: list[bytes] = [MAGIC]
    offset = len(MAGIC)
    row_groups: list[RowGroupMeta] = []
    start = 0
    total = combined.num_rows
    while start < total or (total == 0 and not row_groups):
        stop = min(start + row_group_rows, total)
        group = combined.slice(start, stop)
        rg_meta = RowGroupMeta(num_rows=group.num_rows)
        for f in schema:
            column = group.column(f.name)
            encoding, payload = _encode_chunk(column)
            lo, hi = column.min_max()
            rg_meta.columns.append(
                ColumnChunkMeta(
                    name=f.name,
                    encoding=encoding,
                    offset=offset,
                    length=len(payload),
                    null_count=column.null_count(),
                    min_value=_json_safe(lo),
                    max_value=_json_safe(hi),
                )
            )
            parts.append(payload)
            offset += len(payload)
        row_groups.append(rg_meta)
        if total == 0:
            break
        start = stop
    footer = FileFooter(schema=schema, row_groups=row_groups, num_rows=total)
    footer_bytes = json.dumps(footer.to_dict()).encode("utf-8")
    parts.append(footer_bytes)
    parts.append(_U32.pack(len(footer_bytes)))
    parts.append(MAGIC)
    return b"".join(parts)


def read_footer(data: bytes) -> FileFooter:
    """Parse the footer of a pqs file.

    In the simulation this is the "peek at headers or footers" step that
    §3.3 identifies as requiring extra object reads when metadata is not
    cached — callers fetch the tail of the object to run it.
    """
    if len(data) < 12 or data[:4] != MAGIC or data[-4:] != MAGIC:
        raise ExecutionError("not a pqs file (bad magic)")
    (footer_len,) = _U32.unpack_from(data, len(data) - 8)
    footer_start = len(data) - 8 - footer_len
    footer_bytes = data[footer_start : footer_start + footer_len]
    return FileFooter.from_dict(json.loads(footer_bytes.decode("utf-8")))


def read_row_group(
    data: bytes,
    footer: FileFooter,
    rg_index: int,
    columns: list[str] | None = None,
    keep_dictionary: bool = True,
) -> RecordBatch:
    """Decode one row group, optionally projecting to ``columns``.

    ``keep_dictionary=True`` preserves dictionary encoding in the returned
    batch (the vectorized path); ``False`` materializes flat columns.
    """
    rg = footer.row_groups[rg_index]
    names = columns if columns is not None else footer.schema.names()
    out_schema = footer.schema.select(names)
    out_columns: list[Column | DictionaryColumn] = []
    for name in names:
        chunk = rg.column(name)
        dtype = footer.schema.field(name).dtype
        buf = data[chunk.offset : chunk.offset + chunk.length]
        decoded = _decode_chunk(dtype, chunk.encoding, buf)
        if not keep_dictionary and isinstance(decoded, DictionaryColumn):
            decoded = decoded.decode()
        out_columns.append(decoded)
    return RecordBatch(out_schema, out_columns)
