"""Columnar file format ("pqs") standing in for Apache Parquet.

The format has the structural features the paper's experiments depend on:
row groups, per-column chunks with PLAIN or DICTIONARY(+RLE) encoding, and a
footer carrying the schema plus per-chunk min/max/null-count statistics.
Files are real byte strings round-tripped through real encode/decode.

Two readers are provided, mirroring §3.4:

* :class:`RowReader` — the initial row-oriented scan path (decode
  everything, then iterate row by row in Python).
* :class:`VectorizedReader` — emits columnar :class:`~repro.data.RecordBatch`
  objects, keeping dictionary encoding intact so downstream operators can
  work on codes.
"""

from repro.formats.pqs import (
    ColumnChunkMeta,
    FileFooter,
    RowGroupMeta,
    read_footer,
    read_row_group,
    write_table,
)
from repro.formats.readers import RowReader, VectorizedReader

__all__ = [
    "ColumnChunkMeta",
    "FileFooter",
    "RowGroupMeta",
    "read_footer",
    "read_row_group",
    "write_table",
    "RowReader",
    "VectorizedReader",
]
