"""repro — a from-scratch reproduction of BigLake (SIGMOD 2024).

BigQuery's evolution toward a multi-cloud lakehouse, as a laptop-scale
simulation: BigLake tables with delegated access, fine-grained governance,
and metadata-cache acceleration; BigLake managed tables with ACID DML over
customer buckets; Object tables and BQML-style inference over unstructured
data; and Omni-style multi-cloud deployment with cross-cloud queries and
materialized views.

Quickstart::

    from repro import LakehousePlatform

    platform = LakehousePlatform()
    admin = platform.admin_user()
    ...

See ``examples/quickstart.py`` for a complete walkthrough.
"""

from repro.cloud import Cloud, Region
from repro.core import LakehousePlatform
from repro.data import Column, DataType, Field, RecordBatch, Schema, batch_from_pydict
from repro.metastore.catalog import MetadataCacheMode, TableKind
from repro.security import (
    ColumnAcl,
    DataMaskingRule,
    MaskingKind,
    Principal,
    Role,
    RowAccessPolicy,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.serving import QueryJob, ServingConfig
from repro.simtime import CostModel, SimContext
from repro.txn import Transaction, TransactionCoordinator

__version__ = "1.0.0"

__all__ = [
    "Cloud",
    "Region",
    "LakehousePlatform",
    "Column",
    "DataType",
    "Field",
    "RecordBatch",
    "Schema",
    "batch_from_pydict",
    "MetadataCacheMode",
    "TableKind",
    "ColumnAcl",
    "DataMaskingRule",
    "MaskingKind",
    "Principal",
    "Role",
    "RowAccessPolicy",
    "CostModel",
    "SimContext",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "QueryJob",
    "ServingConfig",
    "Transaction",
    "TransactionCoordinator",
    "__version__",
]
