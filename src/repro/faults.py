"""Deterministic fault injection and recovery policies (chaos substrate).

The paper's stack survives transient cloud failures the simulation could
model but never exercised: object-store rate limits and 5xx unavailability
(§4.2), metadata-cache staleness with fallback to live listing (§3.3),
cross-cloud VPN flaps and token expiry (§5.2–5.3), and Dremel worker
restarts. This module provides both halves:

* **Injection** — a :class:`FaultInjector` owned by :class:`~repro.simtime.
  SimContext` (like the tracer and metrics registry) that every layer
  consults at its hazard points via ``ctx.faults.check("layer.op", ...)``.
  A :class:`FaultPlan` declares probabilistic or scheduled faults from a
  seed, so a chaos run is exactly replayable: same seed + same workload ⇒
  the same faults fire at the same operations in the same order.
* **Recovery** — a reusable :class:`RetryPolicy` (exponential backoff with
  deterministic jitter, attempt and time budgets) whose sleeps are charged
  to the sim clock, and :func:`record_degradation` for paths that fall back
  to a slower-but-correct plan instead of retrying.

Determinism contract: one seeded ``random.Random`` drives all probabilistic
draws; hazard points are visited in a stable order because the simulator is
single-threaded per query; backoff jitter hashes ``(op, attempt)`` instead
of drawing fresh randomness. Nothing here reads wall-clock time.

Hazard-point naming is dotted ``layer.op``: ``objectstore.get``,
``objectstore.put``, ``objectstore.cas_put``, ``objectstore.list``,
``objectstore.get_range``, ``objectstore.head``, ``objectstore.delete``,
``bigmeta.lookup``, ``bigmeta.commit``, ``read_api.read_rows``,
``write_api.append``, ``vpn.call``, ``engine.task``, ``cache.get``,
``cache.put`` (data-cache probes degrade to a bypass, never an error —
see :mod:`repro.cache`), ``txn.crash`` (writer death between transaction
publish steps — fire it with ``error=WriterCrashError`` and select a step
via ``match``, e.g. ``"txn.crash:count=1:step=marker"``; recovery is
exercised in :mod:`repro.txn`), and ``task.slow`` (a *slowdown* hazard
probed by the slot scheduler: it multiplies a task's cost instead of
raising — see :meth:`FaultInjector.slowdown`). Fault specs select by
*prefix*, so ``op="objectstore."`` matches every store operation while
``op="objectstore.get"`` matches GETs (including ranged GETs) only.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from math import inf
from typing import TYPE_CHECKING, Any, Callable, TypeVar

import repro.errors
from repro.errors import ReproError, is_retryable

if TYPE_CHECKING:
    from repro.simtime import SimContext

T = TypeVar("T")

#: Error classes a FaultSpec may name (validated in :func:`_error_class`).
_DEFAULT_ERROR = "UnavailableError"


def _error_class(name: str) -> type[ReproError]:
    """Resolve an error-class name from :mod:`repro.errors`, validated."""
    cls = getattr(repro.errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        raise ValueError(f"unknown fault error class {name!r} (see repro.errors)")
    return cls


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: where it strikes, what it raises, when, how often.

    ``op`` is a hazard-point *prefix* (``"objectstore.get"`` hits plain and
    ranged GETs; ``"objectstore."`` hits everything in the store). Either
    ``count`` (fire unconditionally on the next N matching operations — the
    legacy ``inject_fault`` semantics) or ``rate`` (fire each matching
    operation with probability ``rate``, drawn from the plan's seeded RNG,
    at most ``max_fires`` times) drives firing. ``start_ms``/``end_ms``
    bound the window on the sim clock; ``match`` restricts to operations
    whose keyword detail (e.g. ``store="gcp-us"``) matches exactly.
    """

    op: str
    error: str = _DEFAULT_ERROR
    rate: float = 0.0
    count: int = 0
    start_ms: float = 0.0
    end_ms: float = inf
    max_fires: int | None = None
    match: tuple[tuple[str, str], ...] = ()
    # factor > 1 declares a *slowdown* spec: instead of raising, a firing
    # multiplies the probed cost (straggler injection at ``task.slow``).
    # Slowdown specs are consulted only by :meth:`FaultInjector.slowdown`;
    # :meth:`FaultInjector.check` skips them.
    factor: float = 1.0

    @property
    def is_slowdown(self) -> bool:
        return self.factor > 1.0

    def __post_init__(self) -> None:
        _error_class(self.error)  # fail fast on typos
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.factor < 1.0:
            raise ValueError(f"fault factor must be >= 1, got {self.factor}")
        if self.rate == 0.0 and self.count == 0:
            raise ValueError(
                f"fault spec {self.op!r} can never fire: set rate= or count="
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"op:key=value:..."`` (the CLI ``--plan`` syntax).

        Known keys: ``rate``, ``count``, ``error``, ``start``, ``end``,
        ``max``, ``factor``. Any other key becomes a ``match`` constraint,
        e.g. ``"objectstore.get:rate=0.1:store=aws-east"``; a slowdown plan
        reads ``"task.slow:rate=0.15:factor=8"``.
        """
        parts = text.split(":")
        op, fields = parts[0], parts[1:]
        kwargs: dict[str, Any] = {"op": op}
        match: list[tuple[str, str]] = []
        for item in fields:
            if "=" not in item:
                raise ValueError(f"bad fault spec field {item!r} in {text!r}")
            key, value = item.split("=", 1)
            if key == "rate":
                kwargs["rate"] = float(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "error":
                kwargs["error"] = value
            elif key == "start":
                kwargs["start_ms"] = float(value)
            elif key == "end":
                kwargs["end_ms"] = float(value)
            elif key == "max":
                kwargs["max_fires"] = int(value)
            elif key == "factor":
                kwargs["factor"] = float(value)
            else:
                match.append((key, value))
        kwargs["match"] = tuple(match)
        return cls(**kwargs)


@dataclass
class FaultPlan:
    """A seed plus the list of :class:`FaultSpec` to install together."""

    seed: int = 0
    specs: list[FaultSpec] = field(default_factory=list)

    @classmethod
    def parse(cls, texts: list[str], seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, specs=[FaultSpec.parse(t) for t in texts])

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Transient faults at ``rate`` across every major hazard class —
        the default chaos mix (storage 5xx, metadata blips, worker
        restarts, VPN flaps), all retryable. ``rate=0`` is the clean
        control: an empty plan."""
        if rate == 0.0:
            return cls(seed=seed, specs=[])
        return cls(seed=seed, specs=[
            FaultSpec(op="objectstore.get", error="UnavailableError", rate=rate),
            FaultSpec(op="bigmeta.lookup", error="MetadataUnavailableError", rate=rate),
            FaultSpec(op="engine.task", error="TransientExecutionError", rate=rate),
            FaultSpec(op="vpn.call", error="VpnUnavailableError", rate=rate),
        ])


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the injector's replay log)."""

    seq: int
    op: str
    error: str
    at_ms: float


class FaultInjector:
    """Seeded, deterministic fault injection consulted at hazard points.

    Owned by :class:`~repro.simtime.SimContext`; layers call
    :meth:`check` at each hazard point and the injector raises the declared
    error when a spec fires. With no plan installed, :meth:`check` is a
    single attribute test — cheap enough to leave in production paths.
    """

    def __init__(self, ctx: "SimContext") -> None:
        self.ctx = ctx
        self._rng = random.Random(0)
        self._specs: list[FaultSpec] = []
        self._counts: dict[int, int] = {}  # spec index -> remaining count
        self._fires: dict[int, int] = {}   # spec index -> fires so far
        self.events: list[FaultEvent] = []

    @property
    def enabled(self) -> bool:
        return bool(self._specs)

    def install(self, plan: FaultPlan) -> None:
        """Install ``plan``, reseeding the RNG and resetting all state."""
        self.clear()
        self._rng = random.Random(plan.seed)
        for spec in plan.specs:
            self.add(spec)

    def add(self, spec: FaultSpec) -> None:
        """Add one spec to the active set (keeps the current RNG stream)."""
        index = len(self._specs)
        self._specs.append(spec)
        if spec.count:
            self._counts[index] = spec.count

    def clear(self) -> None:
        """Remove all specs and the replay log (RNG left as-is until the
        next :meth:`install`)."""
        self._specs = []
        self._counts = {}
        self._fires = {}
        self.events = []

    def check(self, op: str, **detail: Any) -> None:
        """Consult the plan at hazard point ``op``; raise if a fault fires.

        ``detail`` carries selector context (``store=``, ``table=``, ...)
        that specs may constrain via ``match``. Count-based specs fire
        unconditionally while their count lasts; rate-based specs draw from
        the seeded RNG. The first matching spec that fires wins.
        """
        if not self._specs:
            return
        now = self.ctx.clock.now_ms
        for index, spec in enumerate(self._specs):
            if spec.is_slowdown:
                continue  # consulted by slowdown(), never raises here
            if not self._matches(spec, op, now, detail):
                continue
            if index in self._counts:
                self._counts[index] -= 1
                if self._counts[index] <= 0:
                    del self._counts[index]
                self._fire(index, spec, op, now)
            elif spec.rate > 0.0:
                if spec.max_fires is not None and self._fires.get(index, 0) >= spec.max_fires:
                    continue
                if self._rng.random() < spec.rate:
                    self._fire(index, spec, op, now)

    def slowdown(self, op: str, **detail: Any) -> float:
        """Probe a *slowdown* hazard point (e.g. ``task.slow``).

        Returns the combined multiplicative factor of every slowdown spec
        that fires (1.0 = healthy); never raises. Firing draws from the
        same seeded RNG stream as :meth:`check`, and each firing is logged
        to :attr:`events` / metered like an injected fault, so straggler
        injection is exactly as replayable as error injection.
        """
        if not self._specs:
            return 1.0
        factor = 1.0
        now = self.ctx.clock.now_ms
        for index, spec in enumerate(self._specs):
            if not spec.is_slowdown:
                continue
            if not self._matches(spec, op, now, detail):
                continue
            if index in self._counts:
                self._counts[index] -= 1
                if self._counts[index] <= 0:
                    del self._counts[index]
                self._record(index, spec, op, now)
                factor *= spec.factor
            elif spec.rate > 0.0:
                if spec.max_fires is not None and self._fires.get(index, 0) >= spec.max_fires:
                    continue
                if self._rng.random() < spec.rate:
                    self._record(index, spec, op, now)
                    factor *= spec.factor
        return factor

    @staticmethod
    def _matches(spec: FaultSpec, op: str, now: float, detail: dict[str, Any]) -> bool:
        if not op.startswith(spec.op):
            return False
        if not spec.start_ms <= now < spec.end_ms:
            return False
        return not any(str(detail.get(key)) != value for key, value in spec.match)

    def _record(self, index: int, spec: FaultSpec, op: str, now: float) -> FaultEvent:
        """Log one firing (replay log + metering + metrics + span tag)."""
        label = f"Slowdown x{spec.factor:g}" if spec.is_slowdown else spec.error
        self._fires[index] = self._fires.get(index, 0) + 1
        event = FaultEvent(seq=len(self.events), op=op, error=label, at_ms=now)
        self.events.append(event)
        self.ctx.metering.count("repro.fault_injected")
        if op.startswith("objectstore."):
            # Compatibility: the legacy ObjectStore injector metered here.
            self.ctx.metering.count("object_store.injected_fault")
        self.ctx.metrics.counter(
            "repro_faults_injected_total",
            "Faults fired by the chaos injector.",
        ).inc(op=op, error=label)
        span = self.ctx.tracer.current
        if span is not None:
            span.set_tag("fault_injected", label)
        return event

    def _fire(self, index: int, spec: FaultSpec, op: str, now: float) -> None:
        event = self._record(index, spec, op, now)
        raise _error_class(spec.error)(
            f"injected {spec.error} on {op} [fault #{event.seq}]"
        )


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter, charged to sim time.

    ``call`` retries transient failures (per :func:`repro.errors.
    is_retryable`) up to ``max_attempts`` total attempts or until the next
    backoff would exceed ``budget_ms`` of cumulative sleep, whichever comes
    first. Jitter is a hash of ``(op, attempt)`` — no RNG draw — so retry
    timing never perturbs the fault plan's random stream.
    """

    max_attempts: int = 4
    base_backoff_ms: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter_fraction: float = 0.2
    budget_ms: float = 10_000.0
    enabled: bool = True

    def backoff_ms(self, op: str, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts count from 1)."""
        raw = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.backoff_multiplier ** (attempt - 1),
        )
        digest = zlib.crc32(f"{op}|{attempt}".encode()) % 10_000
        fraction = (digest / 9_999.0) * 2.0 - 1.0  # [-1, +1], deterministic
        return max(0.0, raw * (1.0 + self.jitter_fraction * fraction))

    def call(self, ctx: "SimContext", op: str, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying transient errors per this policy.

        Each backoff advances the sim clock inside a ``retry.backoff`` span
        and bumps ``repro.retry`` metering plus the
        ``repro_retries_total{op=...}`` metric, so every recovery is visible
        in traces, metrics, and job history.
        """
        attempt = 0
        slept_ms = 0.0
        while True:
            attempt += 1
            try:
                return fn()
            except ReproError as exc:
                delay = self.backoff_ms(op, attempt)
                if (
                    not self.enabled
                    or not is_retryable(exc)
                    or attempt >= self.max_attempts
                    or slept_ms + delay > self.budget_ms
                ):
                    raise
                ctx.metering.count("repro.retry")
                ctx.metrics.counter(
                    "repro_retries_total", "Transient-failure retries."
                ).inc(op=op)
                span = ctx.tracer.current
                if span is not None:
                    span.add_tag("retries", 1)
                with ctx.tracer.span(
                    "retry.backoff", layer="faults", op=op, attempt=attempt,
                    error_type=type(exc).__name__,
                ):
                    ctx.clock.advance(delay)
                slept_ms += delay


def record_degradation(ctx: "SimContext", path: str, reason: str) -> None:
    """Note a graceful-degradation event (fallback to a slower plan).

    ``path`` names the degradation (``"metadata_cache"``, ``"object_table"``)
    and ``reason`` the trigger (usually a table id). Meters ``repro.degraded``,
    bumps ``repro_degraded_total{path=...}``, and tags the current span so the
    fallback shows up on the job's `degraded` column.
    """
    ctx.metering.count("repro.degraded")
    ctx.metrics.counter(
        "repro_degraded_total", "Graceful-degradation fallbacks taken."
    ).inc(path=path)
    span = ctx.tracer.current
    if span is not None:
        span.set_tag("degraded", path)
        span.set_tag("degraded_reason", reason)
