"""Snapshot-keyed plan and query-result caches (control-plane siblings of
the slot-local data cache).

Two tiers, both bounded LRUs reusing :class:`~repro.cache.CacheTier`:

* **plan** — optimized physical plans keyed by ``(SQL text, engine
  identity + planner flags, per-table snapshot digests, principal-policy
  digest)``. Planning is pure computation on the control plane (it
  advances no sim clock and consults no fault hazards), so serving a
  cached plan is invisible to every determinism gate — it is enabled by
  default.
* **result** — completed SELECT results keyed like the plan tier plus the
  requesting principal and the ``snapshot_ms`` time-travel pin. Serving a
  hit skips the scan entirely (it charges only the cheap
  ``cache_lookup_ms``), so it *does* change the simulated timeline — it
  is opt-in per statement via ``use_query_cache=True``.

Coherence is by *keying*, never flushing, exactly like the data cache:
each referenced table contributes ``(table_id, version, schema
fingerprint, policy digest)`` to the key. Every data commit — DML,
transaction commit, BLMT compaction, Iceberg pointer swap, Write API
flush — bumps :attr:`~repro.metastore.catalog.TableInfo.version`, so
stale entries simply stop being addressed and age out of the LRU. Policy
changes alter the policy digest the same way, and a dropped-and-recreated
table re-resolves to a different digest. Entries are never served across
principals: the result key carries ``str(principal)`` and a per-table IAM
read check runs on every hit (a denied principal falls through to a real
execution, which raises the ordinary access error).

Plans containing TVFs are never cached (handlers are registered per
engine and models may be mutable); plans over ``INFORMATION_SCHEMA`` are
plan-cacheable (the plan is static) but never result-cacheable (the
underlying telemetry changes with every statement).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.cache import CacheTier
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
    SystemTableNode,
    TvfNode,
    UnionAllNode,
    ValuesNode,
)
from repro.errors import ReproError
from repro.metastore.constraints import ConstraintSet

if TYPE_CHECKING:
    from repro.data.batch import RecordBatch
    from repro.data.types import Schema
    from repro.metastore.catalog import Catalog, TableInfo
    from repro.security.iam import IamService, Principal
    from repro.simtime import SimContext


@dataclass
class QueryCacheConfig:
    """Capacity knobs for the plan and result tiers."""

    # Plan tier: entry-counted LRU (a plan's footprint is a few nodes).
    plan_enabled: bool = True
    plan_capacity: int = 256
    # Result tier: byte-bounded by materialized batch size. Statements opt
    # in per submit/execute with ``use_query_cache=True``; this flag is the
    # platform-wide master switch.
    result_enabled: bool = True
    result_capacity_bytes: int = 64 * 1024 * 1024
    result_admission_fraction: float = 0.25


# -- snapshot digests ---------------------------------------------------------


def policy_digest(table: "TableInfo", principal: "Principal") -> tuple:
    """A stable fingerprint of what ``principal`` may see of ``table``."""
    access = table.policies.resolve(principal)
    return (
        tuple(access.row_filters),
        access.row_policies_exist,
        tuple(sorted(access.denied_columns)),
        tuple(sorted((c, k.value) for c, k in access.masked_columns.items())),
    )


def table_digest(table: "TableInfo", principal: "Principal") -> tuple:
    """One table's contribution to a cache key: identity, data version,
    schema shape, and the principal's effective policy view."""
    schema_fp = tuple((f.name, f.dtype.name) for f in table.schema)
    return (table.table_id, table.version, schema_fp, policy_digest(table, principal))


# -- plan cloning -------------------------------------------------------------


def _clone_plan(node: PlanNode, scans: list[ScanNode]) -> PlanNode | None:
    """Deep-copy a plan's node shells (ASTs, schemas, and TableInfo refs
    are shared — they are not mutated at execution) while giving every
    ScanNode a fresh :class:`ConstraintSet`, because dynamic partition
    pruning mutates ``runtime_constraints`` in place at run time.

    Returns None for uncacheable plans: any TVF, or a node type this
    function does not know (fail closed — an unknown node might carry
    execution-time state).
    """
    if isinstance(node, ScanNode):
        clone = replace(
            node,
            columns=list(node.columns),
            pushed_filters=list(node.pushed_filters),
            runtime_constraints=ConstraintSet(),
            pushed_aggregates=list(node.pushed_aggregates),
        )
        scans.append(clone)
        return clone
    if isinstance(node, (SystemTableNode, ValuesNode)):
        return node
    if isinstance(node, TvfNode):
        return None
    if isinstance(node, (FilterNode, SortNode, LimitNode, DistinctNode)):
        child = _clone_plan(node.child, scans)
        return None if child is None else replace(node, child=child)
    if isinstance(node, ProjectNode):
        child = _clone_plan(node.child, scans)
        if child is None:
            return None
        return replace(node, child=child, items=list(node.items))
    if isinstance(node, AggregateNode):
        child = _clone_plan(node.child, scans)
        if child is None:
            return None
        return replace(
            node,
            child=child,
            group_items=list(node.group_items),
            aggregates=list(node.aggregates),
        )
    if isinstance(node, JoinNode):
        left = _clone_plan(node.left, scans)
        right = _clone_plan(node.right, scans)
        if left is None or right is None:
            return None
        return replace(node, left=left, right=right, equi_keys=list(node.equi_keys))
    if isinstance(node, UnionAllNode):
        inputs = [_clone_plan(child, scans) for child in node.inputs]
        if any(child is None for child in inputs):
            return None
        return replace(node, inputs=inputs)
    return None


def _plan_refs(plan: PlanNode) -> tuple[list["TableInfo"], bool] | None:
    """``(scanned tables, references INFORMATION_SCHEMA)`` for a plan, or
    None when the plan contains a TVF (uncacheable)."""
    tables: list["TableInfo"] = []
    has_system = False

    def walk(node: PlanNode) -> bool:
        nonlocal has_system
        if isinstance(node, TvfNode):
            return False
        if isinstance(node, ScanNode):
            tables.append(node.table)
            return True
        if isinstance(node, SystemTableNode):
            has_system = True
            return True
        if isinstance(node, ValuesNode):
            return True
        if isinstance(node, JoinNode):
            return walk(node.left) and walk(node.right)
        if isinstance(node, UnionAllNode):
            return all(walk(child) for child in node.inputs)
        child = getattr(node, "child", None)
        if child is not None:
            return walk(child)
        return False

    if not walk(plan):
        return None
    return tables, has_system


class QueryCache:
    """The plan + result cache one platform's engines share.

    Lookups are two-step: a side map remembers which tables each SQL text
    referenced the last time it was planned, those tables are re-resolved
    *fresh* from the catalog (never from stored references — a dropped or
    recreated table must not pin its old metadata), and their current
    digests complete the key. Any table that no longer resolves is a miss.

    Unlike the data cache, neither tier consults fault hazards or (for the
    plan tier) charges sim time: these caches cannot serve stale data by
    construction, and the plan tier must stay byte-invisible to seeded
    chaos runs since it is on by default.
    """

    def __init__(
        self,
        ctx: "SimContext",
        catalog: "Catalog",
        config: QueryCacheConfig | None = None,
        iam: "IamService | None" = None,
    ) -> None:
        self.ctx = ctx
        self.catalog = catalog
        self.config = config or QueryCacheConfig()
        self.iam = iam
        now_fn = lambda: ctx.clock.now_ms  # noqa: E731
        # Plan entries all count size 1: the tier bound is an entry count.
        self.plans = CacheTier(
            "plan", self.config.plan_capacity, 1.0, now_fn=now_fn,
            on_evict=self._on_evict,
        )
        self.results = CacheTier(
            "result",
            self.config.result_capacity_bytes,
            self.config.result_admission_fraction,
            now_fn=now_fn,
            on_evict=self._on_evict,
        )
        # sql base key -> (dataset, name) refs from the last planning; an
        # LRU so adversarial unique-SQL streams cannot grow it unbounded.
        self._refs: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._refs_capacity = max(16, 4 * self.config.plan_capacity)

    # -- metrics ------------------------------------------------------------

    def _count(self, tier: CacheTier, hit: bool, nbytes: int = 0) -> None:
        metrics = self.ctx.metrics
        if hit:
            metrics.counter("repro_cache_hits_total", "data-cache hits").inc(
                tier=tier.name
            )
            if nbytes:
                metrics.counter(
                    "repro_cache_bytes_total", "source bytes served from the data cache"
                ).inc(nbytes, tier=tier.name)
        else:
            metrics.counter("repro_cache_misses_total", "data-cache misses").inc(
                tier=tier.name
            )
        metrics.gauge(
            "repro_cache_resident_bytes", "bytes currently resident per cache tier"
        ).set(tier.resident_bytes, tier=tier.name)

    def _on_evict(self, tier: CacheTier, reason: str) -> None:
        self.ctx.metrics.counter(
            "repro_cache_evictions_total", "data-cache evictions"
        ).inc(tier=tier.name, reason=reason)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def _base_key(sql_text: str, engine: Any) -> tuple:
        """SQL text + everything about the engine that shapes its plans
        (or could shape results): name, planner flags, execution flags."""
        return (
            sql_text,
            engine.name,
            engine.use_stats,
            engine.enable_aggregate_pushdown,
            engine.enable_dpp,
            engine.use_row_oriented_reader,
        )

    def _remember_refs(self, base: tuple, tables: list["TableInfo"]) -> None:
        self._refs[base] = tuple((t.dataset, t.name) for t in tables)
        self._refs.move_to_end(base)
        while len(self._refs) > self._refs_capacity:
            self._refs.popitem(last=False)

    def _digests(self, base: tuple, principal: "Principal") -> tuple | None:
        """Current snapshot digests for the tables ``base`` referenced at
        its last planning — None when unknown or any table is gone."""
        refs = self._refs.get(base)
        if refs is None:
            return None
        digests = []
        for dataset, name in refs:
            try:
                table = self.catalog.get_table(dataset, name)
            except ReproError:
                return None
            digests.append(table_digest(table, principal))
        return tuple(digests)

    # -- plan tier ----------------------------------------------------------

    def lookup_plan(
        self, sql_text: str, engine: Any, principal: "Principal"
    ) -> PlanNode | None:
        """A freshly-cloned cached plan for ``sql_text``, or None."""
        if not self.config.plan_enabled:
            return None
        base = self._base_key(sql_text, engine)
        digests = self._digests(base, principal)
        if digests is None:
            self.plans.stats.misses += 1
            self._count(self.plans, hit=False)
            return None
        entry = self.plans.get(base + (digests,))
        if entry is None:
            self._count(self.plans, hit=False)
            return None
        self._count(self.plans, hit=True)
        scans: list[ScanNode] = []
        return _clone_plan(entry[0], scans)

    def store_plan(
        self, sql_text: str, engine: Any, principal: "Principal", plan: PlanNode
    ) -> bool:
        """Admit an optimized plan (a defensive clone of it — the live plan
        is about to be executed and mutated). Returns True on admission."""
        if not self.config.plan_enabled:
            return False
        scans: list[ScanNode] = []
        master = _clone_plan(plan, scans)
        if master is None:
            return False
        base = self._base_key(sql_text, engine)
        self._remember_refs(base, [s.table for s in scans])
        digests = self._digests(base, principal)
        if digests is None:
            return False
        return self.plans.put(base + (digests,), master, 1)

    # -- result tier --------------------------------------------------------

    def result_key(
        self,
        sql_text: str,
        engine: Any,
        principal: "Principal",
        snapshot_ms: float | None,
        plan: PlanNode,
    ) -> tuple | None:
        """The result-cache key for an about-to-run SELECT, or None when it
        is not result-cacheable (TVFs, INFORMATION_SCHEMA, master switch
        off, or an unresolvable table)."""
        if not self.config.result_enabled:
            return None
        refs = _plan_refs(plan)
        if refs is None:
            return None
        tables, has_system = refs
        if has_system:
            return None
        base = self._base_key(sql_text, engine)
        self._remember_refs(base, tables)
        digests = self._digests(base, principal)
        if digests is None:
            return None
        return base + (digests, str(principal), snapshot_ms)

    def _tables_readable(self, key: tuple, principal: "Principal") -> bool:
        """Re-check IAM table read access on a hit: a permission revoked
        after the entry was stored must fall through to real execution
        (which raises the ordinary access error)."""
        if self.iam is None:
            return True
        from repro.security.iam import Permission

        refs = self._refs.get(key[:6], ())
        for dataset, name in refs:
            try:
                table = self.catalog.get_table(dataset, name)
            except ReproError:
                return False
            decision = self.iam.is_allowed(
                principal, Permission.TABLES_GET_DATA, table.resource_name
            )
            if not decision.allowed:
                return False
        return True

    def lookup_result(
        self, key: tuple, principal: "Principal"
    ) -> "tuple[Schema, list[RecordBatch], str] | None":
        """``(schema, batches, plan_text)`` for a cached SELECT, or None.
        Hits charge one cheap lookup on the sim clock — no scan, no decode."""
        if not self._tables_readable(key, principal):
            self.results.stats.misses += 1
            self._count(self.results, hit=False)
            return None
        entry = self.results.get(key)
        if entry is None:
            self._count(self.results, hit=False)
            return None
        self.ctx.charge("query_cache.hit", self.ctx.costs.cache_lookup_ms)
        self._count(self.results, hit=True, nbytes=entry[1])
        schema, batches, plan_text = entry[0]
        return schema, list(batches), plan_text

    def store_result(
        self,
        key: tuple,
        schema: "Schema",
        batches: "list[RecordBatch]",
        plan_text: str,
    ) -> bool:
        nbytes = sum(b.nbytes() for b in batches)
        return self.results.put(
            key, (schema, tuple(batches), plan_text), max(1, nbytes)
        )

    # -- reporting ----------------------------------------------------------

    def tiers(self) -> list[CacheTier]:
        return [self.plans, self.results]

    def stats_rows(self) -> list[tuple]:
        """Rows for ``INFORMATION_SCHEMA.CACHE_STATS`` (one per tier),
        schema-compatible with the data cache's rows."""
        rows = []
        for tier in self.tiers():
            s = tier.stats
            rows.append(
                (
                    tier.name,
                    len(tier),
                    tier.resident_bytes,
                    tier.capacity_bytes,
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.admission_rejects,
                    s.hit_bytes,
                    round(s.hit_ratio, 6),
                )
            )
        return rows

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """{tier: counters} for the CLI and benchmarks."""
        out: dict[str, dict[str, Any]] = {}
        for tier in self.tiers():
            s = tier.stats
            out[tier.name] = {
                "entries": len(tier),
                "resident_bytes": tier.resident_bytes,
                "capacity_bytes": tier.capacity_bytes,
                "hits": s.hits,
                "misses": s.misses,
                "evictions": s.evictions,
                "admission_rejects": s.admission_rejects,
                "hit_bytes": s.hit_bytes,
                "hit_ratio": round(s.hit_ratio, 6),
            }
        return out
