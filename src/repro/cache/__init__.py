"""Multi-tier columnar data cache (§3.3/§3.4): footers, chunks, dictionaries.

The paper closes the gap between lake and managed storage by caching file
*data*, not just metadata, next to the slots. This module is that layer for
the reproduction: a slot-local cache with three tiers —

* **footer** — parsed :class:`~repro.formats.pqs.FileFooter` objects (plus
  object size), so a warm scan skips the per-file footer round trips.
* **chunk** — decoded column chunks (:class:`~repro.data.column.Column` or
  :class:`~repro.data.column.DictionaryColumn`, dictionary encoding
  preserved), so a warm scan skips both the object-store GET and the decode.
* **dictionary** — decoded dictionary value vectors, content-addressed, so
  identical dictionaries (the common case across row groups and compacted
  files of one table) are stored once and shared.

Coherence is by *keying*, not invalidation: every entry is keyed by
``(bucket, key, generation, ...)`` where ``generation`` is the object
store's per-PUT generation number (carried on
:class:`~repro.metastore.bigmeta.FileEntry`). DML rewrites and BLMT
compaction write new objects (new keys), in-place overwrites bump the
generation, and Iceberg pointer swaps change the referenced data files —
in every case the stale entries simply stop being addressed and age out
of the LRU. There is no explicit flush. Entries whose generation is
unknown (``0``) are never cached.

Each tier is a capacity-bounded LRU with admission-by-size: an item larger
than ``admission_fraction`` of the tier's capacity is not admitted (one
giant scan must not wipe out the working set).

Failure policy: every get/put consults the fault injector at the
``cache.get`` / ``cache.put`` hazard points; an injected cache error turns
the operation into a miss (get) or a skipped admission (put) and records a
degradation — the cache can make a query slower, never wrong.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.faults import record_degradation
from repro.simtime import MIB

if TYPE_CHECKING:
    from repro.data.column import Column, DictionaryColumn
    from repro.formats.pqs import FileFooter
    from repro.simtime import SimContext


@dataclass
class CacheConfig:
    """Capacity knobs for the three tiers (bytes of *source* data)."""

    enabled: bool = True
    footer_capacity_bytes: int = 8 * 1024 * 1024
    chunk_capacity_bytes: int = 256 * 1024 * 1024
    dictionary_capacity_bytes: int = 32 * 1024 * 1024
    # Admission-by-size: reject items larger than this fraction of the
    # tier's capacity instead of evicting the whole working set for them.
    admission_fraction: float = 0.25
    # Age-based eviction, both off by default (None). ``ttl_ms`` bounds an
    # entry's total lifetime since admission; ``idle_ms`` bounds the time
    # since it was last touched. Expiry is lazy (checked on get, swept on
    # put) on the deterministic sim clock — no background threads.
    ttl_ms: float | None = None
    idle_ms: float | None = None


@dataclass
class TierStats:
    """Raw counters for one tier (also exported as metrics)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0  # capacity-pressure (LRU) evictions only
    hit_bytes: int = 0
    admission_rejects: int = 0
    # Age-based removals, split by which bound fired (TTL before idle when
    # both would apply). Not part of ``evictions``: the CACHE_STATS column
    # keeps meaning "pushed out by capacity", as it always has.
    expired_ttl: int = 0
    expired_idle: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheTier:
    """One capacity-bounded LRU map from tuple keys to (value, size).

    Optionally age-bounded: ``ttl_ms`` expires entries a fixed time after
    admission, ``idle_ms`` expires entries untouched for that long. Expiry
    is lazy — checked when an entry is read, swept when one is written —
    against ``now_fn`` (the sim clock), so behavior is deterministic and
    nothing happens "in the background". Every removal reports its reason
    (``lru`` / ``ttl`` / ``idle``) through ``on_evict``.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        admission_fraction: float,
        ttl_ms: float | None = None,
        idle_ms: float | None = None,
        now_fn: Any = None,
        on_evict: Any = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.admission_limit = int(capacity_bytes * admission_fraction)
        self.ttl_ms = ttl_ms
        self.idle_ms = idle_ms
        # Entries are [value, size, inserted_ms, touched_ms] lists.
        self._entries: "OrderedDict[tuple, list]" = OrderedDict()
        self._now = now_fn or (lambda: 0.0)
        self._on_evict = on_evict
        self.resident_bytes = 0
        self.stats = TierStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _expiry_reason(self, entry: list, now: float) -> str | None:
        if self.ttl_ms is not None and now - entry[2] > self.ttl_ms:
            return "ttl"
        if self.idle_ms is not None and now - entry[3] > self.idle_ms:
            return "idle"
        return None

    def _drop(self, entry: list, reason: str) -> None:
        self.resident_bytes -= entry[1]
        if reason == "lru":
            self.stats.evictions += 1
        elif reason == "ttl":
            self.stats.expired_ttl += 1
        else:
            self.stats.expired_idle += 1
        if self._on_evict is not None:
            self._on_evict(self, reason)

    def sweep(self, now: float | None = None) -> None:
        """Remove every expired entry (no-op when age bounds are off)."""
        if self.ttl_ms is None and self.idle_ms is None:
            return
        now = self._now() if now is None else now
        for key, entry in list(self._entries.items()):
            reason = self._expiry_reason(entry, now)
            if reason is not None:
                del self._entries[key]
                self._drop(entry, reason)

    def get(self, key: tuple) -> tuple[Any, int] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        now = self._now()
        reason = self._expiry_reason(entry, now)
        if reason is not None:
            del self._entries[key]
            self._drop(entry, reason)
            self.stats.misses += 1
            return None
        entry[3] = now
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.stats.hit_bytes += entry[1]
        return entry[0], entry[1]

    def resident_items(self) -> "list[tuple[tuple, int]]":
        """``(key, size_bytes)`` pairs, LRU order — a *read-only* view that,
        unlike :meth:`get`, touches neither the recency order nor the
        hit/miss stats (planner probes must not perturb the cache)."""
        return [(key, entry[1]) for key, entry in self._entries.items()]

    def put(self, key: tuple, value: Any, size_bytes: int) -> bool:
        """Admit ``(key, value)``; returns False if rejected by size."""
        if size_bytes > self.admission_limit or size_bytes > self.capacity_bytes:
            self.stats.admission_rejects += 1
            return False
        now = self._now()
        self.sweep(now)
        old = self._entries.pop(key, None)
        if old is not None:
            self.resident_bytes -= old[1]
        while self._entries and self.resident_bytes + size_bytes > self.capacity_bytes:
            _, entry = self._entries.popitem(last=False)
            self._drop(entry, "lru")
        self._entries[key] = [value, size_bytes, now, now]
        self.resident_bytes += size_bytes
        return True


class DataCache:
    """The slot-local data cache one platform's engines share.

    Read paths call :meth:`lookup_footer` / :meth:`lookup_chunk` before
    touching the object store and :meth:`admit_footer` / :meth:`admit_chunk`
    after a cold fetch; :meth:`decode_chunk` is the dictionary-sharing
    decode used by both. Hits charge the (much cheaper)
    ``cache_lookup_ms`` + ``cache_hit_per_mib_ms`` sim-time costs instead
    of GET latency + decode cost.
    """

    def __init__(self, ctx: "SimContext", config: CacheConfig | None = None) -> None:
        self.ctx = ctx
        self.config = config or CacheConfig()
        fraction = self.config.admission_fraction
        tier_kwargs = dict(
            ttl_ms=self.config.ttl_ms,
            idle_ms=self.config.idle_ms,
            now_fn=lambda: ctx.clock.now_ms,
            on_evict=self._on_evict,
        )
        self.footers = CacheTier(
            "footer", self.config.footer_capacity_bytes, fraction, **tier_kwargs
        )
        self.chunks = CacheTier(
            "chunk", self.config.chunk_capacity_bytes, fraction, **tier_kwargs
        )
        self.dictionaries = CacheTier(
            "dictionary", self.config.dictionary_capacity_bytes, fraction, **tier_kwargs
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def tiers(self) -> list[CacheTier]:
        return [self.footers, self.chunks, self.dictionaries]

    # -- fault gating -------------------------------------------------------

    def _guard(self, op: str, tier: CacheTier) -> bool:
        """Consult the ``cache.get``/``cache.put`` hazard point. An injected
        fault degrades the operation to a bypass (never an error)."""
        try:
            self.ctx.faults.check(op, tier=tier.name)
        except ReproError:
            record_degradation(self.ctx, "data_cache", f"{tier.name} {op} bypassed")
            self.ctx.metrics.counter(
                "repro_cache_bypass_total", "cache operations bypassed by injected faults"
            ).inc(tier=tier.name, op=op)
            return False
        return True

    # -- metrics ------------------------------------------------------------

    def _count(self, tier: CacheTier, hit: bool, nbytes: int = 0) -> None:
        metrics = self.ctx.metrics
        if hit:
            metrics.counter("repro_cache_hits_total", "data-cache hits").inc(tier=tier.name)
            metrics.counter(
                "repro_cache_bytes_total", "source bytes served from the data cache"
            ).inc(nbytes, tier=tier.name)
        else:
            metrics.counter("repro_cache_misses_total", "data-cache misses").inc(tier=tier.name)
        metrics.gauge(
            "repro_cache_resident_bytes", "bytes currently resident per cache tier"
        ).set(tier.resident_bytes, tier=tier.name)

    def _on_evict(self, tier: CacheTier, reason: str) -> None:
        """Tier eviction callback: one metric, split by tier and by why the
        entry left (``lru`` pressure vs ``ttl``/``idle`` age bounds)."""
        self.ctx.metrics.counter(
            "repro_cache_evictions_total", "data-cache evictions"
        ).inc(tier=tier.name, reason=reason)

    # -- footer tier --------------------------------------------------------

    def lookup_footer(
        self, bucket: str, key: str, generation: int
    ) -> "tuple[FileFooter, int] | None":
        """Cached ``(footer, object_size)`` or None. Hits charge one cheap
        lookup instead of the two ranged GETs of a remote footer read."""
        if not self.enabled or generation <= 0:
            return None
        if not self._guard("cache.get", self.footers):
            return None
        entry = self.footers.get((bucket, key, generation))
        if entry is None:
            self._count(self.footers, hit=False)
            return None
        self.ctx.charge("data_cache.hit", self.ctx.costs.cache_lookup_ms)
        self._count(self.footers, hit=True, nbytes=entry[1])
        return entry[0]

    def admit_footer(
        self, bucket: str, key: str, generation: int,
        footer: "FileFooter", size_bytes: int,
    ) -> None:
        if not self.enabled or generation <= 0:
            return
        if not self._guard("cache.put", self.footers):
            return
        # Footers are tiny relative to data; account them at a nominal
        # serialized size so the tier bound still means something.
        footer_bytes = 256 + 64 * sum(len(rg.columns) for rg in footer.row_groups)
        self.footers.put((bucket, key, generation), (footer, size_bytes), footer_bytes)

    # -- chunk tier ---------------------------------------------------------

    def lookup_chunk(
        self, bucket: str, key: str, generation: int, rg_index: int, column: str
    ) -> "tuple[Column | DictionaryColumn, int] | None":
        """Cached decoded chunk as ``(column, source_bytes)`` or None.
        Hits charge the cheap memory-bandwidth cost, not GET + decode."""
        if not self.enabled or generation <= 0:
            return None
        if not self._guard("cache.get", self.chunks):
            return None
        entry = self.chunks.get((bucket, key, generation, rg_index, column))
        if entry is None:
            self._count(self.chunks, hit=False)
            return None
        value, nbytes = entry
        self.ctx.charge(
            "data_cache.hit",
            self.ctx.costs.cache_lookup_ms
            + (nbytes / MIB) * self.ctx.costs.cache_hit_per_mib_ms,
        )
        self._count(self.chunks, hit=True, nbytes=nbytes)
        return value, nbytes

    def admit_chunk(
        self, bucket: str, key: str, generation: int, rg_index: int, column: str,
        value: "Column | DictionaryColumn", size_bytes: int,
    ) -> None:
        if not self.enabled or generation <= 0:
            return
        if not self._guard("cache.put", self.chunks):
            return
        self.chunks.put((bucket, key, generation, rg_index, column), value, size_bytes)

    def warm_chunk_bytes(self, bucket: str, key: str, generation: int) -> int:
        """Source bytes of one object currently resident in the chunk tier.

        The scheduler's cost estimator calls this at planning time to
        discount warm files; it must not perturb what it measures, so the
        probe is non-mutating (no LRU touch, no hit/miss accounting) and
        consults no fault hazard — a mis-estimate only skews the schedule,
        never the data.
        """
        if not self.enabled or generation <= 0:
            return 0
        prefix = (bucket, key, generation)
        return sum(
            size for entry_key, size in self.chunks.resident_items()
            if entry_key[:3] == prefix
        )

    # -- dictionary tier ----------------------------------------------------

    def decode_chunk(
        self, dtype, encoding: str, payload: bytes
    ) -> "Column | DictionaryColumn":
        """Decode one encoded chunk, sharing decoded dictionary vectors
        through the content-addressed dictionary tier.

        Dictionary payloads carry their value vector inline; across row
        groups (and across the files compaction rewrites) those vectors are
        usually identical, so the decoded :class:`Column` is keyed by
        content digest and reused — one copy per distinct dictionary.
        """
        from repro.data.column import DictionaryColumn
        from repro.formats import pqs

        decoded = pqs._decode_chunk(dtype, encoding, payload)
        if not isinstance(decoded, DictionaryColumn) or not self.enabled:
            return decoded
        dict_len = int.from_bytes(payload[:4], "little")
        dict_bytes = payload[4 : 4 + dict_len]
        digest = (dtype.name, dict_len, zlib.crc32(dict_bytes))
        if self._guard("cache.get", self.dictionaries):
            entry = self.dictionaries.get(digest)
            if entry is not None:
                self._count(self.dictionaries, hit=True, nbytes=entry[1])
                return DictionaryColumn(dtype, decoded.codes, entry[0])
            self._count(self.dictionaries, hit=False)
        if self._guard("cache.put", self.dictionaries):
            self.dictionaries.put(digest, decoded.dictionary, dict_len)
        return decoded

    # -- reporting ----------------------------------------------------------

    def stats_rows(self) -> list[tuple]:
        """Rows for ``INFORMATION_SCHEMA.CACHE_STATS`` (one per tier)."""
        rows = []
        for tier in self.tiers():
            s = tier.stats
            rows.append(
                (
                    tier.name,
                    len(tier),
                    tier.resident_bytes,
                    tier.capacity_bytes,
                    s.hits,
                    s.misses,
                    s.evictions,
                    s.admission_rejects,
                    s.hit_bytes,
                    round(s.hit_ratio, 6),
                )
            )
        return rows

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """{tier: counters} for the CLI and benchmarks."""
        out: dict[str, dict[str, Any]] = {}
        for tier in self.tiers():
            s = tier.stats
            out[tier.name] = {
                "entries": len(tier),
                "resident_bytes": tier.resident_bytes,
                "capacity_bytes": tier.capacity_bytes,
                "hits": s.hits,
                "misses": s.misses,
                "evictions": s.evictions,
                "expired_ttl": s.expired_ttl,
                "expired_idle": s.expired_idle,
                "admission_rejects": s.admission_rejects,
                "hit_bytes": s.hit_bytes,
                "hit_ratio": round(s.hit_ratio, 6),
            }
        return out
