"""An Iceberg-like open table format on object storage.

Layout under ``{prefix}/metadata/``::

    version-hint.json          <- pointer, swapped with a conditional PUT
    v{N}.metadata.json         <- immutable table metadata (snapshot list)
    snap-{id}-manifest-list.json
    manifest-{id}-{k}.json     <- data file entries with per-column bounds

Commits write new immutable metadata and then atomically swap the pointer
with a generation-matched PUT. The object store allows only a few pointer
mutations per second (§3.5), so commit throughput is CAS-bound — the
property BLMT escapes by keeping its log in Big Metadata. The transaction
log also lives *with the data*, so a writer with bucket access can tamper
with history — the second §3.5 weakness, demonstrated in tests.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

# Metadata file names must be unique across racing committers (real Iceberg
# uses UUIDs); a process-global counter suffices for the simulation.
_metadata_nonce = itertools.count(1)

from repro.data.types import Schema
from repro.errors import (
    CatalogError,
    CommitRetryExhaustedError,
    PreconditionFailedError,
)
from repro.metastore.constraints import ConstraintSet
from repro.objectstore import ObjectStore


@dataclass(frozen=True)
class DataFileInfo:
    """One data file referenced by a manifest."""

    path: str  # "bucket/key"
    file_size: int
    record_count: int
    partition: tuple[tuple[str, Any], ...] = ()
    # column -> [min, max, null_count]
    bounds: tuple[tuple[str, tuple[Any, Any, int]], ...] = ()

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "file_size": self.file_size,
            "record_count": self.record_count,
            "partition": [[k, v] for k, v in self.partition],
            "bounds": [[c, list(b)] for c, b in self.bounds],
        }

    @staticmethod
    def from_dict(d: dict) -> "DataFileInfo":
        return DataFileInfo(
            path=d["path"],
            file_size=d["file_size"],
            record_count=d["record_count"],
            partition=tuple((k, v) for k, v in d["partition"]),
            bounds=tuple((c, tuple(b)) for c, b in d["bounds"]),
        )


@dataclass(frozen=True)
class IcebergSnapshot:
    snapshot_id: int
    timestamp_ms: float
    manifest_list: str  # object key
    operation: str  # "append" | "overwrite"
    summary: dict = field(default_factory=dict)
    # Multi-table transaction tagging (repro.txn): a tagged snapshot is
    # pending until the transaction log's marker reads COMMITTED; readers
    # resolve past it via parent_snapshot_id in the meantime.
    txn_id: str = ""
    parent_snapshot_id: int | None = None


class IcebergTable:
    """Client for one Iceberg-like table rooted at ``bucket/prefix``."""

    def __init__(self, store: ObjectStore, bucket: str, prefix: str) -> None:
        self.store = store
        self.bucket = bucket
        self.prefix = prefix.rstrip("/")

    # -- paths ---------------------------------------------------------------

    @property
    def _pointer_key(self) -> str:
        return f"{self.prefix}/metadata/version-hint.json"

    def _new_metadata_key(self, version: int) -> str:
        return f"{self.prefix}/metadata/v{version}-{next(_metadata_nonce):06d}.metadata.json"

    # -- creation --------------------------------------------------------------

    @staticmethod
    def create(
        store: ObjectStore,
        bucket: str,
        prefix: str,
        schema: Schema,
        partition_columns: list[str] | None = None,
    ) -> "IcebergTable":
        """Initialize table metadata; fails if the table already exists."""
        table = IcebergTable(store, bucket, prefix)
        metadata = {
            "format_version": 2,
            "schema": schema.to_dict(),
            "partition_columns": partition_columns or [],
            "snapshots": [],
            "current_snapshot_id": None,
            "last_snapshot_id": 0,
            "metadata_version": 1,
        }
        metadata_key = table._new_metadata_key(1)
        store.put_object(
            bucket,
            metadata_key,
            json.dumps(metadata).encode("utf-8"),
            content_type="application/json",
        )
        pointer = json.dumps({"metadata_key": metadata_key}).encode("utf-8")
        store.put_if_generation(bucket, table._pointer_key, pointer, expected_generation=0)
        return table

    # -- reads -----------------------------------------------------------------

    def _read_pointer(self) -> tuple[str, int]:
        """(current metadata object key, pointer object generation)."""
        meta = self.store.head_object(self.bucket, self._pointer_key)
        data = self.store.get_object(self.bucket, self._pointer_key)
        return json.loads(data)["metadata_key"], meta.generation

    def read_metadata(self) -> dict:
        metadata_key, _ = self._read_pointer()
        data = self.store.get_object(self.bucket, metadata_key)
        return json.loads(data)

    def schema(self) -> Schema:
        return Schema.from_dict(self.read_metadata()["schema"])

    def snapshots(self) -> list[IcebergSnapshot]:
        metadata = self.read_metadata()
        return [
            IcebergSnapshot(
                snapshot_id=s["snapshot_id"],
                timestamp_ms=s["timestamp_ms"],
                manifest_list=s["manifest_list"],
                operation=s["operation"],
                summary=s.get("summary", {}),
                txn_id=s.get("txn_id", ""),
                parent_snapshot_id=s.get("parent_snapshot_id"),
            )
            for s in metadata["snapshots"]
        ]

    def current_snapshot(self) -> IcebergSnapshot | None:
        snaps = self.snapshots()
        metadata = self.read_metadata()
        current = metadata["current_snapshot_id"]
        for s in snaps:
            if s.snapshot_id == current:
                return s
        return None

    # -- transactional visibility (repro.txn) ----------------------------------

    def _snapshot_visibility(self, snapshot: dict) -> tuple[bool, float]:
        """(visible, effective timestamp) of one snapshot dict.

        Untagged snapshots are visible at their own commit time. Tagged
        snapshots resolve against the transaction log's marker (installed
        on the store as ``txn_resolver`` by the coordinator): COMMITTED
        makes them visible at the *marker's* time, anything else hides
        them. An unresolvable tagged snapshot stays hidden — the marker is
        the sole source of truth, never the pointer.
        """
        txn_id = snapshot.get("txn_id", "")
        if not txn_id:
            return True, snapshot["timestamp_ms"]
        resolver = getattr(self.store, "txn_resolver", None)
        if resolver is None:
            return False, snapshot["timestamp_ms"]
        state, commit_ms = resolver(txn_id)
        if state == "COMMITTED":
            return True, commit_ms
        return False, snapshot["timestamp_ms"]

    def effective_snapshot_id(self, metadata: dict | None = None) -> int | None:
        """The newest *visible* snapshot: walks the parent chain from the
        pointer's current snapshot past pending/aborted tagged ones."""
        if metadata is None:
            metadata = self.read_metadata()
        by_id = {s["snapshot_id"]: s for s in metadata["snapshots"]}
        target = metadata["current_snapshot_id"]
        while target is not None:
            snapshot = by_id.get(target)
            if snapshot is None:
                return None
            visible, _ = self._snapshot_visibility(snapshot)
            if visible:
                return target
            target = snapshot.get("parent_snapshot_id")
        return None

    def snapshot_id_as_of(self, as_of_ms: float) -> int | None:
        """The visible snapshot a reader at ``as_of_ms`` pins (time travel
        honoring transaction markers: tagged snapshots order by marker
        time, so both tables of a transaction flip at the same instant)."""
        metadata = self.read_metadata()
        best: tuple[float, int] | None = None
        for snapshot in metadata["snapshots"]:
            visible, effective_ms = self._snapshot_visibility(snapshot)
            if not visible or effective_ms > as_of_ms:
                continue
            key = (effective_ms, snapshot["snapshot_id"])
            if best is None or key > best:
                best = key
        return best[1] if best is not None else None

    def scan(
        self,
        constraints: ConstraintSet | None = None,
        snapshot_id: int | None = None,
    ) -> list[DataFileInfo]:
        """Data files of a snapshot, pruned with manifest-level bounds.

        Each manifest is a separate object GET — cheap compared to listing,
        but slower than a Big Metadata lookup. With no explicit
        ``snapshot_id``, reads the *effective* (marker-visible) snapshot.
        """
        metadata = self.read_metadata()
        target = (
            snapshot_id if snapshot_id is not None
            else self.effective_snapshot_id(metadata)
        )
        if target is None:
            return []
        snapshot = next(
            (s for s in metadata["snapshots"] if s["snapshot_id"] == target), None
        )
        if snapshot is None:
            raise CatalogError(f"snapshot {target} not found")
        manifest_list = json.loads(
            self.store.get_object(self.bucket, snapshot["manifest_list"])
        )
        files: list[DataFileInfo] = []
        for manifest_key in manifest_list["manifests"]:
            manifest = json.loads(self.store.get_object(self.bucket, manifest_key))
            for entry in manifest["files"]:
                info = DataFileInfo.from_dict(entry)
                if constraints is None or self._matches(info, constraints):
                    files.append(info)
        return files

    @staticmethod
    def _matches(info: DataFileInfo, constraints: ConstraintSet) -> bool:
        partition = {k.lower(): v for k, v in info.partition}
        bounds = {c.lower(): b for c, b in info.bounds}
        for column, constraint in constraints:
            if column in partition:
                if not constraint.admits_value(partition[column]):
                    return False
                continue
            if column in bounds:
                lo, hi, _nulls = bounds[column]
                if not constraint.admits_range(lo, hi):
                    return False
        return True

    # -- commits ------------------------------------------------------------------

    def commit_append(
        self,
        files: list[DataFileInfo],
        max_retries: int = 10,
        txn_id: str = "",
    ) -> IcebergSnapshot:
        """Append files in a new snapshot (retrying pointer CAS races)."""
        return self._commit(
            files, removed_paths=[], operation="append",
            max_retries=max_retries, txn_id=txn_id,
        )

    def commit_overwrite(
        self,
        added: list[DataFileInfo],
        removed_paths: list[str],
        max_retries: int = 10,
        txn_id: str = "",
    ) -> IcebergSnapshot:
        """Replace ``removed_paths`` with ``added`` atomically."""
        return self._commit(
            added, removed_paths, operation="overwrite",
            max_retries=max_retries, txn_id=txn_id,
        )

    def _commit(
        self,
        added: list[DataFileInfo],
        removed_paths: list[str],
        operation: str,
        max_retries: int,
        txn_id: str = "",
    ) -> IcebergSnapshot:
        removed = set(removed_paths)
        for _attempt in range(max_retries):
            current_metadata_key, pointer_generation = self._read_pointer()
            metadata = json.loads(
                self.store.get_object(self.bucket, current_metadata_key)
            )
            snapshot_id = metadata["last_snapshot_id"] + 1
            # Carry forward the current file set minus removals.
            current_files: list[DataFileInfo] = []
            if metadata["current_snapshot_id"] is not None:
                current_files = self.scan(snapshot_id=metadata["current_snapshot_id"])
            kept = [f for f in current_files if f.path not in removed]
            missing = removed - {f.path for f in current_files}
            if missing:
                raise CatalogError(f"cannot remove non-live files: {sorted(missing)}")
            new_files = kept + list(added)

            nonce = next(_metadata_nonce)
            manifest_key = f"{self.prefix}/metadata/manifest-{snapshot_id}-{nonce:06d}.json"
            self.store.put_object(
                self.bucket,
                manifest_key,
                json.dumps({"files": [f.to_dict() for f in new_files]}).encode("utf-8"),
                content_type="application/json",
            )
            manifest_list_key = (
                f"{self.prefix}/metadata/snap-{snapshot_id}-{nonce:06d}-manifest-list.json"
            )
            self.store.put_object(
                self.bucket,
                manifest_list_key,
                json.dumps({"manifests": [manifest_key]}).encode("utf-8"),
                content_type="application/json",
            )
            snapshot = {
                "snapshot_id": snapshot_id,
                "timestamp_ms": self.store.ctx.clock.now_ms,
                "manifest_list": manifest_list_key,
                "operation": operation,
                "summary": {
                    "added_files": len(added),
                    "removed_files": len(removed),
                    "total_files": len(new_files),
                },
                "txn_id": txn_id,
                "parent_snapshot_id": metadata["current_snapshot_id"],
            }
            new_version = metadata["metadata_version"] + 1
            metadata["snapshots"].append(snapshot)
            metadata["current_snapshot_id"] = snapshot_id
            metadata["last_snapshot_id"] = snapshot_id
            metadata["metadata_version"] = new_version
            new_metadata_key = self._new_metadata_key(new_version)
            self.store.put_object(
                self.bucket,
                new_metadata_key,
                json.dumps(metadata).encode("utf-8"),
                content_type="application/json",
            )
            # The atomic step: swap the pointer iff nobody else has.
            try:
                self.store.put_if_generation(
                    self.bucket,
                    self._pointer_key,
                    json.dumps({"metadata_key": new_metadata_key}).encode("utf-8"),
                    expected_generation=pointer_generation,
                )
            except PreconditionFailedError:
                self.store.ctx.metering.count("iceberg.commit_conflict")
                self.store.ctx.metrics.counter(
                    "repro_commit_conflicts_total", "Iceberg pointer-CAS races lost."
                ).inc(table=f"{self.bucket}/{self.prefix}")
                continue  # lost the race; re-read and retry
            return IcebergSnapshot(
                snapshot_id=snapshot_id,
                timestamp_ms=snapshot["timestamp_ms"],
                manifest_list=manifest_list_key,
                operation=operation,
                summary=snapshot["summary"],
                txn_id=txn_id,
                parent_snapshot_id=snapshot["parent_snapshot_id"],
            )
        raise CommitRetryExhaustedError(
            f"commit failed after {max_retries} CAS retries"
        )

    # -- transactional rollback (repro.txn recovery) ---------------------------

    def rollback_txn(self, txn_id: str, added_paths: list[str]) -> bool:
        """Physically undo an *aborted* transaction's snapshot.

        Top-of-chain case: the pointer's current snapshot is the aborted
        txn's — revert the pointer to fresh metadata whose current snapshot
        is the parent (CAS-raced like any commit). Buried case: later
        snapshots carried the aborted files forward — remove whichever of
        ``added_paths`` are still live with an overwrite commit. Either
        way the aborted files can never surface again (they were already
        invisible via the marker; this reclaims them). Returns True if
        anything had to change.
        """
        metadata = self.read_metadata()
        current = next(
            (s for s in metadata["snapshots"]
             if s["snapshot_id"] == metadata["current_snapshot_id"]),
            None,
        )
        if current is not None and current.get("txn_id") == txn_id:
            # Pointer revert: write new metadata pointing at the parent.
            _, pointer_generation = self._read_pointer()
            metadata["current_snapshot_id"] = current.get("parent_snapshot_id")
            metadata["snapshots"] = [
                s for s in metadata["snapshots"]
                if s.get("txn_id") != txn_id
            ]
            new_version = metadata["metadata_version"] + 1
            metadata["metadata_version"] = new_version
            new_metadata_key = self._new_metadata_key(new_version)
            self.store.put_object(
                self.bucket,
                new_metadata_key,
                json.dumps(metadata).encode("utf-8"),
                content_type="application/json",
            )
            try:
                self.store.put_if_generation(
                    self.bucket,
                    self._pointer_key,
                    json.dumps({"metadata_key": new_metadata_key}).encode("utf-8"),
                    expected_generation=pointer_generation,
                )
                return True
            except PreconditionFailedError:
                # A commit raced the revert; fall through to path removal.
                metadata = self.read_metadata()
        live_target = metadata["current_snapshot_id"]
        if live_target is None:
            return False
        live = {f.path for f in self.scan(snapshot_id=live_target)}
        stale = [p for p in added_paths if p in live]
        if not stale:
            return False
        self.commit_overwrite(added=[], removed_paths=stale)
        return True
