"""Hive-style partitioned key layout: ``prefix/col=value/.../file``."""

from __future__ import annotations

from typing import Any

from repro.errors import CatalogError


def partition_prefix(prefix: str, values: dict[str, Any]) -> str:
    """Build the key prefix for one partition.

    >>> partition_prefix("sales", {"year": 2023, "region": "us"})
    'sales/year=2023/region=us/'
    """
    parts = [prefix.rstrip("/")] if prefix else []
    for name, value in values.items():
        parts.append(f"{name}={value}")
    return "/".join(parts) + "/"


def parse_partition_from_key(prefix: str, key: str) -> dict[str, str]:
    """Extract ``col=value`` pairs from an object key under ``prefix``.

    Values come back as strings; callers coerce using the table schema.
    """
    if prefix and not key.startswith(prefix.rstrip("/") + "/"):
        raise CatalogError(f"key {key!r} not under prefix {prefix!r}")
    remainder = key[len(prefix.rstrip("/")) + 1 :] if prefix else key
    values: dict[str, str] = {}
    for segment in remainder.split("/")[:-1]:  # last segment is the file name
        name, sep, value = segment.partition("=")
        if sep:
            values[name] = value
    return values
