"""Open table formats over object storage.

* :mod:`repro.tableformats.iceberg` — an Iceberg-like format: snapshots,
  manifest lists, manifest files, and an atomic metadata-pointer swap via
  conditional object-store writes. Used as (a) the commit-rate baseline
  BLMT is compared against (§3.5) and (b) the target of BLMT's Iceberg
  snapshot export, readable by any engine.
* :mod:`repro.tableformats.hive_layout` — Hive-style ``col=value/`` key
  layouts for plain external tables that have *no* table format, only
  directory structure (the tables metadata caching accelerates, §3.3).
"""

from repro.tableformats.iceberg import DataFileInfo, IcebergSnapshot, IcebergTable
from repro.tableformats.hive_layout import (
    parse_partition_from_key,
    partition_prefix,
)

__all__ = [
    "DataFileInfo",
    "IcebergSnapshot",
    "IcebergTable",
    "parse_partition_from_key",
    "partition_prefix",
]
