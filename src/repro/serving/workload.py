"""The ``python -m repro serve`` workload: many principals, one slot pool.

Builds a platform hosting both the TPC-H-lite and TPC-DS-lite lakes, a
bench of analyst principals (project ``DATA_VIEWER`` + ``JOB_USER`` plus
``CONNECTION_USER`` on the two lake connections), and replays a seeded
mixed workload through the async jobs API: jobs arrive with seeded
inter-arrival gaps, queue under admission control, and share the slot
pool fairly across principals. The report — per-principal p50/p99 queue
wait and the workload makespan — is *tied out* against
``INFORMATION_SCHEMA.JOBS`` (and ``JOBS_TIMELINE`` for the task rows):
the SQL surface is the ground truth, the in-memory handles must agree.

Everything runs on the deterministic sim clock, so a seeded run — chaos
plan included — replays byte-identically; ``scripts/check.sh`` diffs two
invocations of the JSON report.
"""

from __future__ import annotations

import random
import zlib
from typing import Any

from repro.engine.scheduler import duration_quantile
from repro.errors import ReproError
from repro.obs.history import RUNNING
from repro.security.iam import Role
from repro.serving.jobs import ServingConfig

# Analyst bench (principal names double as fair-share identities).
ANALYSTS = ("amara", "bo", "chen", "dee")


def result_fingerprint(rows: list[tuple]) -> int:
    """Deterministic digest of a result's rows (CRC of their repr) — lets
    reports compare concurrent vs serial per-query results without
    shipping row payloads."""
    return zlib.crc32(repr(rows).encode("utf-8"))


def mixed_queries() -> list[tuple[str, str]]:
    """The TPC-H-lite / TPC-DS-lite mix, deterministically interleaved."""
    from repro.workloads import tpcds_lite, tpch_lite

    tpch = list(tpch_lite.queries().items())
    tpcds = list(tpcds_lite.queries().items())
    out: list[tuple[str, str]] = []
    for i in range(max(len(tpch), len(tpcds))):
        if i < len(tpch):
            out.append((f"tpch.{tpch[i][0]}", tpch[i][1]))
        if i < len(tpcds):
            out.append((f"tpcds.{tpcds[i][0]}", tpcds[i][1]))
    return out


def build_serving_platform(
    scale: float = 0.1,
    analysts: int = 4,
    max_concurrent_jobs: int = 4,
    inter_stage_overlap: bool = True,
    weights: dict[str, float] | None = None,
    monitor: bool = False,
):
    """(platform, admin, users) with both lakes loaded and analysts granted
    exactly what they need: read data, create jobs, use the connections."""
    from repro.core import LakehousePlatform
    from repro.core.platform import PlatformConfig
    from repro.obs.monitor import MonitorConfig
    from repro.workloads import tpcds_lite, tpch_lite

    platform = LakehousePlatform(
        PlatformConfig(
            serving=ServingConfig(
                max_concurrent_jobs=max_concurrent_jobs,
                inter_stage_overlap=inter_stage_overlap,
                weights=dict(weights or {}),
            ),
            monitoring=MonitorConfig(enabled=monitor),
        )
    )
    admin = platform.admin_user()
    tpch_lite.load_as_biglake(platform, admin, tpch_lite.generate(scale=scale))
    tpcds_lite.load_as_biglake(platform, admin, tpcds_lite.generate(scale=scale))
    users = []
    for name in ANALYSTS[:analysts]:
        user = platform.create_user(name, [Role.DATA_VIEWER, Role.JOB_USER])
        for connection in ("tpch.lake", "tpcds.lake"):
            platform.iam.grant(
                f"connections/{connection}", Role.CONNECTION_USER, user
            )
        users.append(user)
    return platform, admin, users


def run_serve(
    seed: int = 0,
    jobs: int = 20,
    scale: float = 0.1,
    analysts: int = 4,
    max_concurrent_jobs: int = 4,
    mean_gap_ms: float = 40.0,
    chaos: list[str] | None = None,
    weights: dict[str, float] | None = None,
    monitor: bool = False,
    keep: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Replay the seeded multi-principal workload; return the JSON-able
    report (deterministic: same seed => byte-identical report).

    ``monitor=True`` runs the same workload under fleet telemetry (the
    monitor is a pure reader: everything but the extra ``monitor`` report
    key is byte-identical — the observer-effect-zero property). ``keep``,
    when given, receives the live platform/admin/users/handles so callers
    (the monitor CLI, tests) can keep querying the system tables.
    """
    platform, admin, users = build_serving_platform(
        scale=scale,
        analysts=analysts,
        max_concurrent_jobs=max_concurrent_jobs,
        weights=weights,
        monitor=monitor,
    )
    queries = mixed_queries()
    rng = random.Random(seed)
    if chaos:
        from repro.faults import FaultPlan

        platform.ctx.faults.install(FaultPlan.parse(chaos, seed=seed))

    # Submit phase: jobs arrive PENDING with seeded inter-arrival gaps on
    # the sim clock (creation_time spacing drives queue-wait contention).
    handles = []
    for i in range(jobs):
        if i:
            platform.ctx.clock.advance(rng.random() * 2.0 * mean_gap_ms)
        name, sql = queries[i % len(queries)]
        user = users[i % len(users)]
        handles.append((name, platform.submit(sql, user)))

    # Serve phase: one shared-pool batch runs every queued job to a
    # terminal state (failures under chaos stay in history as FAILED).
    platform.drain()

    # Chaos off for the tie-out queries: the ground-truth read of the
    # system tables must not itself be able to fail.
    platform.ctx.faults.clear()
    sql_rows = {
        row[0]: row
        for row in platform.home_engine.execute(
            "SELECT job_id, user, state, queue_wait_ms, creation_ms, "
            "start_ms, end_ms, total_ms FROM INFORMATION_SCHEMA.JOBS",
            admin,
        ).rows()
    }

    job_rows: list[dict[str, Any]] = []
    waits_by_principal: dict[str, list[float]] = {}
    tie_out_errors: list[str] = []
    makespan_start = min(job.creation_ms for _, job in handles)
    makespan_end = 0.0
    for name, job in handles:
        row = sql_rows.get(job.job_id)
        if row is None:
            tie_out_errors.append(f"{job.job_id} missing from INFORMATION_SCHEMA.JOBS")
            continue
        _, sql_user, sql_state, sql_wait, sql_creation, sql_start, sql_end, _ = row
        if sql_state == RUNNING:
            tie_out_errors.append(f"{job.job_id} still RUNNING after drain")
        if sql_state != job.state:
            tie_out_errors.append(
                f"{job.job_id} state mismatch: sql={sql_state} handle={job.state}"
            )
        for label, sql_value, handle_value in (
            ("queue_wait_ms", sql_wait, job.queue_wait_ms),
            ("creation_ms", sql_creation, job.creation_ms),
            ("start_ms", sql_start, job.start_ms),
            ("end_ms", sql_end, job.end_ms),
        ):
            if abs(sql_value - round(handle_value, 3)) > 0.002:
                tie_out_errors.append(
                    f"{job.job_id} {label} mismatch: "
                    f"sql={sql_value} handle={handle_value}"
                )
        makespan_end = max(makespan_end, job.end_ms)
        waits_by_principal.setdefault(str(job.principal), []).append(
            job.queue_wait_ms
        )
        entry = {
            "job_id": job.job_id,
            "query": name,
            "principal": str(job.principal),
            "state": job.state,
            "creation_ms": round(job.creation_ms, 6),
            "start_ms": round(job.start_ms, 6),
            "end_ms": round(job.end_ms, 6),
            "queue_wait_ms": round(job.queue_wait_ms, 6),
        }
        if job.state == "SUCCEEDED":
            result = job.wait()
            entry["result_rows"] = result.num_rows
            entry["result_crc"] = result_fingerprint(result.rows())
        job_rows.append(entry)

    # JOBS_TIMELINE ground truth: the synthetic scheduler.task rows of the
    # first succeeded job must match its record's task timeline 1:1.
    first_ok = next(
        (job for _, job in handles if job.state == "SUCCEEDED"), None
    )
    timeline_rows = 0
    timeline_expected = 0
    if first_ok is not None:
        try:
            timeline_rows = platform.home_engine.execute(
                "SELECT COUNT(*) AS n FROM INFORMATION_SCHEMA.JOBS_TIMELINE "
                f"WHERE job_id = '{first_ok.job_id}' AND name = 'scheduler.task'",
                admin,
            ).single_value()
        except ReproError as exc:  # pragma: no cover - defensive
            tie_out_errors.append(f"timeline query failed: {exc}")
        timeline_expected = len(platform.job(first_ok.job_id).task_timeline)
        if timeline_rows != timeline_expected:
            tie_out_errors.append(
                f"{first_ok.job_id} timeline rows {timeline_rows} != "
                f"record task_timeline {timeline_expected}"
            )

    percentiles = {
        principal: {
            "jobs": len(waits),
            "p50_queue_wait_ms": round(duration_quantile(waits, 0.5), 6),
            "p99_queue_wait_ms": round(duration_quantile(waits, 0.99), 6),
        }
        for principal, waits in sorted(waits_by_principal.items())
    }
    states: dict[str, int] = {}
    for _, job in handles:
        states[job.state] = states.get(job.state, 0) + 1
    if keep is not None:
        keep.update(platform=platform, admin=admin, users=users, handles=handles)
    report = {
        "seed": seed,
        "config": {
            "jobs": jobs,
            "scale": scale,
            "analysts": analysts,
            "max_concurrent_jobs": max_concurrent_jobs,
            "mean_gap_ms": mean_gap_ms,
            "chaos": list(chaos or []),
            "weights": dict(weights or {}),
        },
        "jobs": job_rows,
        "per_principal": percentiles,
        "states": states,
        "makespan_ms": round(makespan_end - makespan_start, 6),
        "timeline_task_rows": timeline_rows,
        "tie_out_ok": not tie_out_errors,
        "tie_out_errors": tie_out_errors,
    }
    if monitor:
        report["monitor"] = platform.monitor.summary()
    return report


#: Tolerance for the reservation-vs-jobs tie-out sums (accumulated float
#: noise across bucket clipping; real bugs are whole task-runs ≫ this).
MONITOR_TIE_TOLERANCE_MS = 0.5


def run_monitor(
    seed: int = 0,
    jobs: int = 20,
    scale: float = 0.1,
    analysts: int = 4,
    max_concurrent_jobs: int = 4,
    mean_gap_ms: float = 40.0,
    chaos: list[str] | None = None,
    weights: dict[str, float] | None = None,
    keep: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run the serve workload under fleet telemetry and tie the
    ``RESERVATION_TIMELINE`` system table out against ``JOBS`` /
    ``JOBS_TIMELINE`` aggregates — the two surfaces are derived from the
    same pool verdicts, so per-principal sums must agree field by field.

    The tie-out is restricted to the analyst principals: the admin SQL
    queries issued *by* this function each run as jobs themselves and
    keep appending admin rows to the very tables being read.
    """
    if keep is None:
        keep = {}
    report = run_serve(
        seed=seed,
        jobs=jobs,
        scale=scale,
        analysts=analysts,
        max_concurrent_jobs=max_concurrent_jobs,
        mean_gap_ms=mean_gap_ms,
        chaos=chaos,
        weights=weights,
        monitor=True,
        keep=keep,
    )
    platform, admin = keep["platform"], keep["admin"]
    monitor = platform.monitor
    errors: list[str] = []
    analyst_ids = sorted({row["principal"] for row in report["jobs"]})

    # SQL view of the reservation timeline, aggregated per principal.
    reservation: dict[str, tuple] = {}
    for row in platform.home_engine.execute(
        "SELECT principal, SUM(slot_ms) AS slot_ms, SUM(queue_ms) AS queue_ms, "
        "SUM(jobs_admitted) AS admitted, SUM(jobs_completed) AS completed "
        "FROM INFORMATION_SCHEMA.RESERVATION_TIMELINE GROUP BY principal",
        admin,
    ).rows():
        reservation[row[0]] = row

    # Ground truth #1: slot-ms per job is the sum of its scheduler.task
    # durations in JOBS_TIMELINE (the same TaskRun attempts).
    slot_by_job: dict[str, float] = {}
    for job_id, slot_ms in platform.home_engine.execute(
        "SELECT job_id, SUM(duration_ms) AS slot_ms "
        "FROM INFORMATION_SCHEMA.JOBS_TIMELINE "
        "WHERE name = 'scheduler.task' GROUP BY job_id",
        admin,
    ).rows():
        slot_by_job[job_id] = float(slot_ms)

    # Ground truth #2: queue waits and variance attribution from JOBS.
    expected: dict[str, dict[str, float]] = {}
    variance: dict[str, dict[str, float]] = {}
    for job_id, user, queue_wait, total, backoff, cold, degraded in (
        platform.home_engine.execute(
            "SELECT job_id, user, queue_wait_ms, total_ms, backoff_ms, "
            "cold_read_ms, degraded_ms FROM INFORMATION_SCHEMA.JOBS",
            admin,
        ).rows()
    ):
        if user not in analyst_ids:
            continue
        agg = expected.setdefault(
            user, {"slot_ms": 0.0, "queue_ms": 0.0, "jobs": 0}
        )
        agg["slot_ms"] += slot_by_job.get(job_id, 0.0)
        agg["queue_ms"] += float(queue_wait)
        agg["jobs"] += 1
        var = variance.setdefault(
            user,
            {
                "queue_ms": 0.0,
                "backoff_ms": 0.0,
                "cold_read_ms": 0.0,
                "degraded_ms": 0.0,
                "execute_ms": 0.0,
            },
        )
        var["queue_ms"] += float(queue_wait)
        var["backoff_ms"] += float(backoff)
        var["cold_read_ms"] += float(cold)
        var["degraded_ms"] += float(degraded)
        var["execute_ms"] += max(float(total) - float(backoff), 0.0)

    tie_out: dict[str, dict[str, Any]] = {}
    for principal in analyst_ids:
        want = expected.get(principal, {"slot_ms": 0.0, "queue_ms": 0.0, "jobs": 0})
        row = reservation.get(principal)
        if row is None:
            errors.append(f"{principal} missing from RESERVATION_TIMELINE")
            continue
        _, got_slot, got_queue, got_admitted, got_completed = row
        checks = (
            ("slot_ms", float(got_slot), want["slot_ms"], MONITOR_TIE_TOLERANCE_MS),
            ("queue_ms", float(got_queue), want["queue_ms"], MONITOR_TIE_TOLERANCE_MS),
            ("jobs_admitted", float(got_admitted), float(want["jobs"]), 0.0),
            ("jobs_completed", float(got_completed), float(want["jobs"]), 0.0),
        )
        entry: dict[str, Any] = {}
        for label, got, want_value, tolerance in checks:
            entry[label] = {
                "reservation": round(got, 3),
                "jobs": round(want_value, 3),
            }
            if abs(got - want_value) > tolerance:
                errors.append(
                    f"{principal} {label} mismatch: "
                    f"reservation={got} jobs={want_value}"
                )
        tie_out[principal] = entry

    section = report["monitor"]
    section["tie_out"] = tie_out
    section["tie_out_ok"] = not errors
    section["tie_out_errors"] = errors
    section["variance_ms"] = {
        principal: {k: round(v, 6) for k, v in sorted(values.items())}
        for principal, values in sorted(variance.items())
    }
    section["utilization"] = [
        [round(t, 3), round(v, 6)]
        for t, v in monitor.store.points("pool_slot_busy_ratio")
    ]
    section["queue_depth"] = {
        principal: [
            [round(t, 3), round(v, 6)]
            for t, v in monitor.store.points("pool_queue_depth", principal=principal)
        ]
        for principal in analyst_ids
    }
    section["burn_alerts_fired"] = monitor.alerts.fired_ever("burn_rate")
    section["alerts_fired"] = monitor.alerts.fired_ever()
    report["tie_out_ok"] = report["tie_out_ok"] and not errors
    report["tie_out_errors"] = report["tie_out_errors"] + errors
    return report
