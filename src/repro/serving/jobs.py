"""BigQuery-style async jobs API over the shared slot pool.

The query entry point of PRs 1–5 was ``QueryEngine.execute()`` — strictly
one statement at a time, scheduler private to the query. This module
redesigns it the way BigQuery's control plane works:

* :meth:`JobQueue.submit` (``jobs.insert``-shaped) parses + validates the
  statement, reserves a job id, stamps ``creation_time``, and records a
  ``PENDING`` :class:`~repro.obs.history.JobRecord` — the job is in
  ``INFORMATION_SCHEMA.JOBS`` *before* it runs.
* :meth:`QueryJob.wait` (``getQueryResults``-shaped) drains the queue:
  every pending job is admitted onto one shared
  :class:`~repro.serving.pool.SlotPool` (admission control, fair-share
  across principals, FIFO within), transitions ``PENDING → RUNNING →
  SUCCEEDED/FAILED/CANCELLED``, and lands its verdict in history with
  real ``creation/start/end`` timestamps and ``queue_wait_ms``.
* ``QueryEngine.execute()`` survives as a thin ``submit()+wait()``
  wrapper, so the blocking API is a special case of the async one —
  single code path, no behavior change for existing callers.

Determinism: submission order fixes admission order per seat, the *real*
work of each job (actual scanning, actual fault probes) happens serially
in admission order, and the pool interleaves only *model* time — so a
seeded many-principal run replays byte-identically, chaos plans included.

Statements submitted while a drain (or an inline nested execution) is in
progress — e.g. the SELECT inside a CTAS — execute inline through the
classic single-query path: their stats are finalized by
:meth:`~repro.engine.engine.QueryStats.finalize` exactly as before, and
the enclosing job passes through the pool as opaque seat occupancy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import JobCancelledError, QueryError, error_code
from repro.obs.history import (
    CANCELLED,
    DONE_STATES,
    FAILED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    JobRecord,
    record_from_trace,
)
from repro.serving.pool import (
    JobVerdict,
    PoolArrival,
    PoolExecution,
    PoolOpaque,
    PoolStage,
    SlotPool,
)
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement

if TYPE_CHECKING:
    from repro.engine.engine import QueryEngine, QueryResult
    from repro.security.iam import Principal


@dataclass
class ServingConfig:
    """Concurrency policy for the platform's shared slot pool."""

    # Admission control: jobs concurrently drawing from the slot pool.
    max_concurrent_jobs: int = 8
    # Inter-stage overlap: a stage's tasks become runnable as soon as
    # their input partitions land. Off by default so solo queries keep the
    # exact single-query scheduler verdict; the serve driver turns it on.
    inter_stage_overlap: bool = False
    # Reservation weights per principal ("user:alice" form); a principal
    # with weight 2 gets twice the slot share of weight 1 under contention.
    weights: dict[str, float] = field(default_factory=dict)


class QueryJob:
    """Handle to one submitted statement (``jobs.insert`` resource)."""

    def __init__(
        self,
        queue: "JobQueue",
        engine: "QueryEngine",
        principal: "Principal",
        job_id: str,
        creation_ms: float,
        sql: str,
        snapshot_ms: float | None = None,
        use_query_cache: bool = False,
        cache_sql: str | None = None,
    ) -> None:
        self.queue = queue
        self.engine = engine
        self.principal = principal
        self.job_id = job_id
        self.creation_ms = creation_ms
        self.sql = sql
        self.snapshot_ms = snapshot_ms
        # Result-cache opt-in plus the cache key text: the original SQL
        # string, or None when the caller submitted an AST (an AST has no
        # stable text to key on, so those statements never hit the caches).
        self.use_query_cache = use_query_cache
        self.cache_sql = cache_sql
        self.kind = "invalid"
        # Multi-table transaction this statement runs inside ("" if none);
        # stamped from the queue's current_transaction_id at submit.
        self.transaction_id = ""
        self.statement: ast.Statement | None = None
        self.record: JobRecord | None = None
        self.state = PENDING
        self.start_ms = 0.0
        self.end_ms = 0.0
        self.queue_wait_ms = 0.0
        self._result: "QueryResult | None" = None
        self._error: BaseException | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in DONE_STATES

    def wait(self) -> "QueryResult":
        """Block (in sim terms: drain the queue) until this job reaches a
        terminal state; return its result or re-raise its error."""
        if not self.done:
            self.queue.drain()
        if self.state == CANCELLED:
            raise JobCancelledError(f"job {self.job_id or '<unnamed>'} was cancelled")
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise QueryError(f"job {self.job_id or '<unnamed>'} produced no result")
        return self._result

    def result(self) -> "QueryResult":
        """Alias for :meth:`wait` (concurrent.futures spelling)."""
        return self.wait()

    def cancel(self) -> bool:
        """Request cancellation. Queued jobs are dropped before admission;
        running jobs have their remaining work descheduled at current model
        time. Returns False once the job is already terminal."""
        return self.queue._cancel(self)

    def to_api_resource(self) -> dict[str, Any]:
        """The ``jobs.get``-shaped JSON view of this job."""
        out: dict[str, Any] = {
            "jobReference": {"jobId": self.job_id},
            "user_email": str(self.principal),
            "configuration": {"query": {"query": self.sql}},
            "statistics": {
                "creationTime": round(self.creation_ms, 6),
                "startTime": round(self.start_ms, 6),
                "endTime": round(self.end_ms, 6),
                "queueWaitMs": round(self.queue_wait_ms, 6),
            },
            "status": {"state": self.state},
        }
        if self._error is not None:
            out["status"]["errorResult"] = {"message": str(self._error)}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"QueryJob({self.job_id or '<unnamed>'}, {self.state})"


class JobQueue:
    """The admission-control queue feeding one platform's slot pool."""

    def __init__(
        self,
        history=None,
        config: ServingConfig | None = None,
        default_engine: "QueryEngine | None" = None,
    ) -> None:
        self.history = history
        self.config = config or ServingConfig()
        self.default_engine = default_engine
        # repro.obs.monitor.FleetMonitor (set by the platform); a pure
        # reader that scrapes metrics on submit/drain ticks and derives
        # RESERVATION_TIMELINE + SLO samples from settled batches.
        self.monitor = None
        # Set by repro.txn.Transaction.execute around statements it runs,
        # so their JOBS rows carry the transaction id.
        self.current_transaction_id = ""
        self._pending: list[QueryJob] = []
        self._jobs_by_id: dict[str, QueryJob] = {}
        self._depth = 0  # >0 while executing (drain or inline): nested
        # submits run inline through the classic single-query path.
        self._active_pool: SlotPool | None = None
        self._active_keys: dict[int, QueryJob] = {}
        self._on_admit_hooks: list[Any] = []

    # -- submission ---------------------------------------------------------

    def on_admit(self, hook) -> None:
        """Register ``hook(job)`` to fire when a job is admitted onto the
        pool, before its real work runs — the deterministic seam tests use
        to cancel a queued or running job mid-batch."""
        self._on_admit_hooks.append(hook)

    def submit(
        self,
        sql_or_select: "str | ast.Statement",
        principal: "Principal",
        *,
        engine: "QueryEngine | None" = None,
        snapshot_ms: float | None = None,
        use_query_cache: bool = False,
    ) -> QueryJob:
        """``jobs.insert``: parse + validate, reserve a job id, record a
        PENDING job. Validation failures record a FAILED job and raise
        immediately (they never occupy the pool)."""
        engine = engine or self.default_engine
        if engine is None:
            raise QueryError("JobQueue has no engine to run statements on")
        sql_text = sql_or_select if isinstance(sql_or_select, str) else (
            f"<{type(sql_or_select).__name__} AST>"
        )
        job_id = self.history.next_job_id() if self.history is not None else ""
        creation_ms = engine.ctx.clock.now_ms
        job = QueryJob(
            queue=self, engine=engine, principal=principal, job_id=job_id,
            creation_ms=creation_ms, sql=sql_text, snapshot_ms=snapshot_ms,
            use_query_cache=use_query_cache,
            cache_sql=sql_or_select if isinstance(sql_or_select, str) else None,
        )
        job.transaction_id = self.current_transaction_id
        try:
            statement = (
                parse_statement(sql_or_select)
                if isinstance(sql_or_select, str)
                else sql_or_select
            )
            if isinstance(statement, ast.Select):
                job.kind = "select"
            elif use_query_cache:
                job.kind = type(statement).__name__.lower()
                from repro.errors import AnalysisError

                raise AnalysisError(
                    "use_query_cache applies to SELECT statements only"
                )
            elif snapshot_ms is not None:
                job.kind = type(statement).__name__.lower()
                from repro.errors import AnalysisError

                raise AnalysisError("snapshot_ms applies to SELECT statements only")
            elif engine.dml_handler is None:
                job.kind = type(statement).__name__.lower()
                raise QueryError(
                    f"{type(statement).__name__} requires a DML handler "
                    "(wire the engine through a table manager)"
                )
            else:
                job.kind = type(statement).__name__.lower()
        except Exception as exc:
            job.state = FAILED
            job._error = exc
            job.start_ms = job.end_ms = creation_ms
            self._record_terminal(job, error=str(exc), exc=exc)
            raise
        job.statement = statement
        job.record = self._record_pending(job)
        self._register(job)
        if self.monitor is not None and not self._depth:
            # Clock moved since the last scrape opportunity; catch the
            # metrics-history grid up (read-only, observer-effect zero).
            self.monitor.tick(engine.ctx.clock.now_ms)
        if self._depth:
            self._run_inline(job)
        else:
            self._pending.append(job)
        return job

    def get(self, job_id: str) -> QueryJob:
        """Look up a submitted job by id (``jobs.get``)."""
        try:
            return self._jobs_by_id[job_id]
        except KeyError:
            from repro.errors import NotFoundError

            raise NotFoundError(f"job {job_id!r} not known to the queue") from None

    def _register(self, job: QueryJob) -> None:
        if not job.job_id:
            return
        self._jobs_by_id[job.job_id] = job
        # Bound the lookup map the way history bounds its ring.
        cap = self.history.capacity if self.history is not None else 256
        while len(self._jobs_by_id) > cap:
            self._jobs_by_id.pop(next(iter(self._jobs_by_id)))

    # -- cancellation -------------------------------------------------------

    def _cancel(self, job: QueryJob) -> bool:
        if job.done:
            return False
        if job in self._pending:
            self._pending.remove(job)
            job.state = CANCELLED
            job.end_ms = job.engine.ctx.clock.now_ms
            self._finish_cancelled(job, end_abs=job.end_ms)
            return True
        if self._active_pool is not None:
            for key, active in self._active_keys.items():
                if active is job:
                    return self._active_pool.cancel(key)
        return False

    # -- drain: the shared-pool batch ---------------------------------------

    def drain(self) -> None:
        """Run every pending job to a terminal state over the shared pool."""
        if self._depth:
            raise QueryError("JobQueue.drain() re-entered during execution")
        while self._pending:
            batch, self._pending = self._pending, []
            # One pool per engine: slots are an engine resource. Groups
            # run in first-submission order, deterministically.
            groups: dict[Any, list[QueryJob]] = {}
            for job in batch:
                groups.setdefault(job.engine, []).append(job)
            for engine, jobs in groups.items():
                self._drain_engine(engine, jobs)

    def _drain_engine(self, engine: "QueryEngine", jobs: list[QueryJob]) -> None:
        anchor = jobs[0].creation_ms
        arrivals = [
            PoolArrival(
                key=i, principal=str(job.principal),
                arrival_ms=job.creation_ms - anchor,
            )
            for i, job in enumerate(jobs)
        ]
        pool = SlotPool(
            slots=engine.slots,
            max_concurrent_jobs=self.config.max_concurrent_jobs,
            inter_stage_overlap=self.config.inter_stage_overlap,
            weights=self.config.weights,
        )
        outcomes: dict[int, dict[str, Any]] = {}
        self._active_pool = pool
        self._active_keys = {i: job for i, job in enumerate(jobs)}
        self._depth += 1
        try:
            verdicts = pool.run(
                arrivals,
                lambda key, admitted_ms: self._execute_for_pool(
                    jobs[key], anchor, admitted_ms, outcomes, key
                ),
                on_admit=self._fire_admit_hooks,
            )
        finally:
            self._depth -= 1
            self._active_pool = None
            self._active_keys = {}
        for key, job in enumerate(jobs):
            self._settle(job, anchor, verdicts.get(key), outcomes.get(key))
        if self.monitor is not None and getattr(self.monitor, "enabled", False):
            entries = []
            for key in sorted(verdicts):
                outcome = outcomes.get(key, {})
                entries.append(
                    {
                        "principal": str(jobs[key].principal),
                        "verdict": verdicts[key],
                        "retried": outcome.get("retry_count", 0) > 0,
                        "degraded": bool(outcome.get("degraded", False)),
                        "cache_bypass": outcome.get("cache_bypass", 0.0) > 0,
                    }
                )
            self.monitor.observe_batch(
                anchor, entries, slots=engine.slots, weights=self.config.weights
            )
            self.monitor.tick(engine.ctx.clock.now_ms)

    def _fire_admit_hooks(self, key: int, admitted_ms: float) -> None:
        job = self._active_keys[key]
        for hook in self._on_admit_hooks:
            hook(job)

    @staticmethod
    def _cache_bypass_total(ctx) -> float:
        """Current cache-bypass count (pure metric read; 0.0 if untracked)."""
        metrics = getattr(ctx, "metrics", None)
        if metrics is None or not metrics.has("repro_cache_bypass_total"):
            return 0.0
        return metrics.get("repro_cache_bypass_total").total()

    def _execute_for_pool(
        self,
        job: QueryJob,
        anchor: float,
        admitted_ms: float,
        outcomes: dict[int, dict[str, Any]],
        key: int,
    ):
        """The pool's admission callback: run the job's *real* work on the
        sim clock, report its schedulable shape back in model time."""
        engine = job.engine
        ctx = engine.ctx
        job.state = RUNNING
        job.start_ms = anchor + admitted_ms
        job.queue_wait_ms = job.start_ms - job.creation_ms
        if job.record is not None:
            job.record.state = RUNNING
            job.record.start_ms = job.start_ms
            job.record.queue_wait_ms = job.queue_wait_ms
        metering_before = ctx.metering.snapshot() if self.history is not None else None
        retries_before = ctx.metering.op_counts.get("repro.retry", 0)
        degraded_before = ctx.metering.op_counts.get("repro.degraded", 0)
        bypass_before = self._cache_bypass_total(ctx)
        audit = getattr(engine.read_api, "audit", None)
        prev_job_id = audit.current_job_id if audit is not None else ""
        if audit is not None:
            audit.current_job_id = job.job_id
        clock_before = ctx.clock.now_ms
        try:
            result = engine._execute_statement(
                job.statement, job.principal, job.kind, job.snapshot_ms,
                sql_text=job.cache_sql, use_query_cache=job.use_query_cache,
            )
        except Exception as exc:
            outcomes[key] = {
                "error": exc,
                "trace": engine._last_root if ctx.tracer.enabled else None,
                "metering_before": metering_before,
                "retry_count": ctx.metering.op_counts.get("repro.retry", 0)
                - retries_before,
                "degraded": ctx.metering.op_counts.get("repro.degraded", 0)
                > degraded_before,
                "cache_bypass": self._cache_bypass_total(ctx) - bypass_before,
            }
            return PoolOpaque(ctx.clock.now_ms - clock_before, failed=True)
        finally:
            if audit is not None:
                audit.current_job_id = prev_job_id
        outcomes[key] = {
            "result": result,
            "metering_before": metering_before,
            "retry_count": ctx.metering.op_counts.get("repro.retry", 0)
            - retries_before,
            "degraded": ctx.metering.op_counts.get("repro.degraded", 0)
            > degraded_before,
            "cache_bypass": self._cache_bypass_total(ctx) - bypass_before,
        }
        if job.kind != "select":
            # DML shells: inner statements already ran as inline jobs (and
            # CTAS reuses the inner stats); model them as seat occupancy,
            # exactly the serial path's timing.
            return PoolOpaque(ctx.clock.now_ms - clock_before)
        stats = result.stats
        faults = ctx.faults
        stages = []
        for stage in stats.scan_stages:
            slow = [1.0] * stage.tasks
            if faults is not None:
                # Same hazard point, same order as the single-query
                # scheduler: once per task, index order — the fault RNG
                # stream is independent of pool state.
                for i in range(stage.tasks):
                    slow[i] = faults.slowdown("task.slow", stage=stage.stage, task=i)
            stages.append(PoolStage(stage.stage, list(stage.task_costs), slow))
        # Legacy wave model for stage-less scan work (ML batch scoring).
        leftover_tasks = stats.scan_tasks - sum(s.tasks for s in stats.scan_stages)
        leftover_ms = stats.scan_work_ms - sum(s.scan_ms for s in stats.scan_stages)
        tail_ms = 0.0
        if leftover_ms > 1e-9:
            tasks = max(1, leftover_tasks)
            waves = math.ceil(tasks / max(1, engine.slots))
            tail_ms = leftover_ms * waves / tasks
        return PoolExecution(
            prelude_ms=ctx.costs.slot_startup_ms + stats.planning_ms,
            stages=stages,
            tail_ms=tail_ms,
            compute_ms=stats.compute_ms,
            compute_tasks=max(1, min(engine.slots, engine.shuffle_partitions)),
            speculation=engine.speculation,
        )

    # -- terminal transitions -----------------------------------------------

    def _settle(
        self,
        job: QueryJob,
        anchor: float,
        verdict: JobVerdict | None,
        outcome: dict[str, Any] | None,
    ) -> None:
        if verdict is None:  # defensive: the pool verdicts every arrival
            return
        end_abs = anchor + verdict.end_ms
        if verdict.state == "cancelled":
            job.state = CANCELLED
            job.end_ms = end_abs
            if verdict.admitted:
                job.start_ms = anchor + verdict.admitted_ms
                job.queue_wait_ms = verdict.queue_wait_ms
            self._finish_cancelled(job, end_abs=end_abs)
            return
        if verdict.state == "failed":
            exc = outcome["error"]
            job.state = FAILED
            job._error = exc
            job.end_ms = end_abs
            self._record_terminal(
                job,
                error=str(exc),
                exc=exc,
                trace=outcome.get("trace"),
                metering_before=outcome.get("metering_before"),
                retry_count=outcome.get("retry_count", 0),
                degraded=outcome.get("degraded", False),
            )
            return
        # Success: graft the pool verdict onto the query stats (the moral
        # equivalent of QueryStats.finalize, with pool-level contention).
        result = outcome["result"]
        engine = job.engine
        stats = result.stats
        if job.kind == "select":
            stats.shuffle_partitions = engine.shuffle_partitions
            stats.compute_parallelism = max(
                1, min(engine.slots, engine.shuffle_partitions)
            )
            stats.slot_ms = stats.planning_ms + stats.scan_work_ms + stats.compute_ms
            stats.elapsed_ms = verdict.elapsed_ms
            stats.task_timeline = list(verdict.runs)
            stats.task_skew = verdict.task_skew
            stats.speculative_count = verdict.speculative_launched
            stats.speculative_wins = verdict.speculative_wins
            span = getattr(result, "sched_span", None)
            if span is not None and stats.task_timeline:
                span.set_tag("tasks", sum(s.tasks for s in stats.scan_stages))
                span.set_tag("task_skew", round(stats.task_skew, 4))
                span.set_tag("speculative", stats.speculative_count)
            engine._record_scheduler_metrics(stats)
        stats.retry_count = outcome.get("retry_count", 0)
        stats.degraded = outcome.get("degraded", False)
        job.state = SUCCEEDED
        job.end_ms = end_abs
        job._result = result
        self._observe_query_metrics(job, result)
        self._record_terminal(
            job,
            result=result,
            trace=result.trace,
            metering_before=outcome.get("metering_before"),
            retry_count=stats.retry_count,
            degraded=stats.degraded,
        )

    def _finish_cancelled(self, job: QueryJob, end_abs: float) -> None:
        job._error = None
        job._result = None
        engine = job.engine
        engine.ctx.metrics.counter(
            "repro_jobs_cancelled_total", "jobs cancelled before completion"
        ).inc(engine=engine.name)
        if job.record is not None:
            record = job.record
            record.state = CANCELLED
            record.error = "job cancelled"
            record.error_code = "CANCELLED"
            record.start_ms = job.start_ms
            record.end_ms = end_abs
            record.queue_wait_ms = job.queue_wait_ms
            record.total_ms = max(0.0, end_abs - record.start_ms) if job.start_ms else 0.0

    def _observe_query_metrics(self, job: QueryJob, result: "QueryResult") -> None:
        engine = job.engine
        metrics = engine.ctx.metrics
        metrics.counter("queries_total", "statements executed").inc(
            engine=engine.name, kind=job.kind
        )
        metrics.counter(
            "query_bytes_scanned_total", "bytes scanned on behalf of queries"
        ).inc(result.stats.bytes_scanned, engine=engine.name)
        metrics.histogram(
            "query_elapsed_ms", "modeled slot-limited query latency"
        ).observe(result.stats.elapsed_ms, engine=engine.name)
        metrics.histogram(
            "repro_job_queue_wait_ms", "admission-control queue wait per job"
        ).observe(job.queue_wait_ms, engine=engine.name)

    # -- inline (nested / blocking) execution --------------------------------

    def _run_inline(self, job: QueryJob) -> None:
        """Execute one job through the classic single-query path — used for
        statements submitted while a drain or another execution is already
        on the stack (CTAS/INSERT..SELECT inner queries). The stats are
        finalized by ``QueryStats.finalize`` exactly as pre-redesign."""
        engine = job.engine
        ctx = engine.ctx
        start_ms = ctx.clock.now_ms
        job.state = RUNNING
        job.start_ms = start_ms
        if job.record is not None:
            job.record.state = RUNNING
            job.record.start_ms = start_ms
        metering_before = ctx.metering.snapshot() if self.history is not None else None
        retries_before = ctx.metering.op_counts.get("repro.retry", 0)
        degraded_before = ctx.metering.op_counts.get("repro.degraded", 0)
        audit = getattr(engine.read_api, "audit", None)
        prev_job_id = audit.current_job_id if audit is not None else ""
        if audit is not None:
            audit.current_job_id = job.job_id
        try:
            result = engine._execute_statement(
                job.statement, job.principal, job.kind, job.snapshot_ms,
                sql_text=job.cache_sql, use_query_cache=job.use_query_cache,
            )
        except Exception as exc:
            job.state = FAILED
            job._error = exc
            job.end_ms = ctx.clock.now_ms
            self._record_terminal(
                job,
                error=str(exc),
                exc=exc,
                trace=engine._last_root if ctx.tracer.enabled else None,
                metering_before=metering_before,
                retry_count=ctx.metering.op_counts.get("repro.retry", 0)
                - retries_before,
                degraded=ctx.metering.op_counts.get("repro.degraded", 0)
                > degraded_before,
            )
            return
        finally:
            if audit is not None:
                audit.current_job_id = prev_job_id
        if job.kind == "select":
            stats = result.stats
            span = getattr(result, "sched_span", None)
            stats.finalize(
                engine.slots, ctx.costs.slot_startup_ms, engine.shuffle_partitions,
                faults=ctx.faults, speculation=engine.speculation,
            )
            if span is not None and stats.task_timeline:
                span.set_tag("tasks", sum(s.tasks for s in stats.scan_stages))
                span.set_tag("task_skew", round(stats.task_skew, 4))
                span.set_tag("speculative", stats.speculative_count)
            engine._record_scheduler_metrics(stats)
        result.stats.retry_count = (
            ctx.metering.op_counts.get("repro.retry", 0) - retries_before
        )
        result.stats.degraded = (
            ctx.metering.op_counts.get("repro.degraded", 0) > degraded_before
        )
        job.state = SUCCEEDED
        job.end_ms = ctx.clock.now_ms
        job._result = result
        self._observe_query_metrics(job, result)
        self._record_terminal(
            job,
            result=result,
            trace=result.trace,
            metering_before=metering_before,
            retry_count=result.stats.retry_count,
            degraded=result.stats.degraded,
        )

    # -- history ------------------------------------------------------------

    def _record_pending(self, job: QueryJob) -> JobRecord | None:
        if self.history is None:
            return None
        record = JobRecord(
            job_id=job.job_id,
            principal=str(job.principal),
            sql=job.sql,
            kind=job.kind,
            engine=job.engine.name,
            state=PENDING,
            creation_ms=job.creation_ms,
            transaction_id=job.transaction_id,
        )
        return self.history.record(record)

    def _record_terminal(
        self,
        job: QueryJob,
        *,
        result: "QueryResult | None" = None,
        error: str = "",
        exc: BaseException | None = None,
        trace: Any | None = None,
        metering_before: Any | None = None,
        retry_count: int = 0,
        degraded: bool = False,
    ) -> None:
        if self.history is None:
            return
        ctx = job.engine.ctx
        delta = (
            ctx.metering.delta_since(metering_before)
            if metering_before is not None
            else None
        )
        stats = result.stats if result is not None else None
        record = job.record
        if record is None:
            # Validation failures land here before a PENDING record exists.
            record = JobRecord(
                job_id=job.job_id, principal=str(job.principal), sql=job.sql,
                kind=job.kind, engine=job.engine.name, state=job.state,
                creation_ms=job.creation_ms,
            )
            job.record = self.history.record(record)
        record.kind = job.kind
        record.state = job.state
        record.error = error
        record.error_code = error_code(exc)
        record.transaction_id = job.transaction_id
        record.start_ms = job.start_ms
        record.end_ms = job.end_ms
        record.queue_wait_ms = job.queue_wait_ms
        record.total_ms = (
            stats.elapsed_ms if stats is not None else job.end_ms - job.start_ms
        )
        record.slot_ms = stats.slot_ms if stats is not None else 0.0
        record.bytes_scanned = stats.bytes_scanned if stats is not None else 0
        record.rows_scanned = stats.rows_scanned if stats is not None else 0
        record.rows_produced = result.num_rows if result is not None else 0
        record.files_read = stats.files_read if stats is not None else 0
        record.files_total = stats.files_total if stats is not None else 0
        record.shuffle_partitions = stats.shuffle_partitions if stats is not None else 0
        record.compute_parallelism = (
            stats.compute_parallelism if stats is not None else 0
        )
        record.bytes_read = delta.bytes_read if delta is not None else 0
        record.bytes_written = delta.bytes_written if delta is not None else 0
        record.bytes_egressed = delta.total_egress() if delta is not None else 0
        record.retry_count = retry_count
        record.degraded = degraded
        record.cache_hit_bytes = stats.cache_hit_bytes if stats is not None else 0
        record.cache_hit_ratio = stats.cache_hit_ratio if stats is not None else 0.0
        record.cache_hit = stats.cache_hit if stats is not None else False
        record.task_skew = stats.task_skew if stats is not None else 1.0
        record.speculative_count = stats.speculative_count if stats is not None else 0
        record.task_timeline = list(stats.task_timeline) if stats is not None else []
        record.trace = trace
        record_from_trace(record)


class JobsApi:
    """``jobs.*``-shaped facade over the queue (the REST surface of §2)."""

    def __init__(self, queue: JobQueue) -> None:
        self.queue = queue

    def insert(
        self, sql: str, principal: "Principal", **kwargs: Any
    ) -> dict[str, Any]:
        """``jobs.insert``: submit and return the job resource."""
        job = self.queue.submit(sql, principal, **kwargs)
        return job.to_api_resource()

    def get(self, job_id: str) -> dict[str, Any]:
        """``jobs.get``: the current resource view of a submitted job."""
        return self.queue.get(job_id).to_api_resource()

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``jobs.cancel``: request cancellation, return the resource."""
        job = self.queue.get(job_id)
        job.cancel()
        return job.to_api_resource()

    def get_query_results(self, job_id: str) -> dict[str, Any]:
        """``jobs.getQueryResults``: wait for the job and return rows."""
        job = self.queue.get(job_id)
        result = job.wait()
        return {
            "jobReference": {"jobId": job.job_id},
            "jobComplete": True,
            "schema": {
                "fields": [
                    {"name": f.name, "type": f.dtype.name}
                    for f in result.schema.fields
                ]
            },
            "totalRows": result.num_rows,
            "rows": result.rows(),
        }
