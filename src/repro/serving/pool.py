"""Shared slot pool: a multi-job discrete-event scheduler on model time.

PR 5's :class:`~repro.engine.scheduler.SlotScheduler` simulates one query's
scan stages over a private pool. This module promotes that simulation to a
*platform* resource: N in-flight jobs draw tasks from one pool of ``slots``
execution slots behind an admission-control gate, the way BigQuery serves
many principals' queries against one reservation.

The pool is a pure model: like the per-query scheduler it never touches
the sim clock, never draws randomness (straggler factors are probed by the
caller and passed in), and is a replayable function of its inputs. The
building blocks:

* **Arrivals + admission control** — jobs arrive at submit-time offsets;
  at most ``max_concurrent_jobs`` occupy the pool at once. When a seat
  frees, the next job is chosen *fair-share across principals* (fewest
  running jobs, then fewest jobs admitted so far, then name) and *FIFO
  within a principal*.
* **Weighted fair slot sharing** — when a slot frees and several jobs have
  runnable tasks, the task comes from the principal with the least
  weighted slot-time consumed so far (``ServingConfig.weights`` expresses
  reservations: weight 2 ≈ twice the slot share under contention).
* **Per-job structure** — each admitted job contributes a serial *prelude*
  (slot startup + planning), its scan stages (LPT task lists with
  pre-probed straggler factors), an optional stage-less *tail* (legacy
  wave-model work), and a *compute* phase split over
  ``min(slots, shuffle_partitions)`` partitions.
* **Inter-stage overlap** — off (default) a job's stages run in sequence,
  exactly reproducing the single-query scheduler; on, every scan stage's
  tasks become runnable at prelude end and compute partition ``p`` starts
  as soon as the scan tasks feeding it (task index ≡ p mod K, per stage)
  have landed, not when the whole prior stage drains.
* **Speculation** — identical policy to the single-query scheduler, with
  the "no pending work" condition widened to the whole pool: backups only
  ever use slots no job has runnable work for, so they still never hurt.

A solo job on an otherwise-empty pool reproduces the single-query
scheduler verdict exactly — task for task, slot for slot — which is what
keeps every pre-existing single-query result unchanged by the redesign
(and is pinned by a test).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.engine.scheduler import SpeculationConfig, TaskRun, duration_quantile

# Event kinds; at equal times FINISH sorts first (frees slots before new
# work is placed), then cancellations settle, then speculation checks,
# then job-level transitions, then new arrivals — so an arriving job never
# steals a slot from a task that became runnable at the same instant.
_FINISH = 0
_SETTLE = 1
_CHECK = 2
_PHASE = 3  # prelude-done / tail-done transitions
_JOB_END = 4  # opaque occupancy expiry
_ARRIVAL = 5


@dataclass(frozen=True)
class PoolArrival:
    """One job entering the admission queue at ``arrival_ms``."""

    key: int
    principal: str
    arrival_ms: float


@dataclass
class PoolStage:
    """One scan stage: healthy per-task costs + pre-probed slow factors."""

    name: str
    costs: list[float]
    slow: list[float]


@dataclass
class PoolExecution:
    """The schedulable shape of a successfully executed statement."""

    prelude_ms: float  # serial slot startup + planning
    stages: list[PoolStage] = field(default_factory=list)
    tail_ms: float = 0.0  # legacy stage-less scan work (serial wave model)
    compute_ms: float = 0.0  # operator CPU, split over compute_tasks
    compute_tasks: int = 1  # min(slots, shuffle_partitions), >= 1
    speculation: SpeculationConfig | None = None


@dataclass
class PoolOpaque:
    """A job modeled as a fixed occupancy (failed statements, DML shells
    whose inner work was already accounted by a nested job): holds its
    admission seat for ``elapsed_ms`` without drawing task slots."""

    elapsed_ms: float
    failed: bool = False  # terminal verdict: "failed" instead of "done"


@dataclass
class JobVerdict:
    """The pool's verdict for one job (all times are pool-batch offsets)."""

    key: int
    principal: str
    state: str  # "done" | "failed" | "cancelled" (transient: "running")
    arrival_ms: float = 0.0
    admitted_ms: float = 0.0
    end_ms: float = 0.0
    admitted: bool = False
    runs: list[TaskRun] = field(default_factory=list)  # admission-relative
    speculative_launched: int = 0
    speculative_wins: int = 0
    task_skew: float = 1.0

    @property
    def queue_wait_ms(self) -> float:
        return (self.admitted_ms - self.arrival_ms) if self.admitted else 0.0

    @property
    def elapsed_ms(self) -> float:
        return (self.end_ms - self.admitted_ms) if self.admitted else 0.0


class _StageState:
    """Runtime bookkeeping for one admitted job's scan stage."""

    def __init__(self, stage: PoolStage) -> None:
        self.name = stage.name
        self.costs = stage.costs
        self.slow = stage.slow
        self.n = len(stage.costs)
        # LPT on the healthy estimate, same order as SlotScheduler.
        self.pending: deque[int] = deque(
            sorted(range(self.n), key=lambda i: (-stage.costs[i], i))
        )
        self.ready = False
        self.primary: dict[int, TaskRun] = {}
        self.backup: dict[int, TaskRun] = {}
        self.done: set[int] = set()
        self.completed: list[float] = []  # winner durations

    @property
    def complete(self) -> bool:
        return len(self.done) == self.n


class _JobState:
    """One admitted job drawing from the shared pool."""

    def __init__(
        self, key: int, principal: str, work: PoolExecution, admitted_ms: float
    ) -> None:
        self.key = key
        self.principal = principal
        self.admitted_ms = admitted_ms
        self.prelude_end = admitted_ms + work.prelude_ms
        self.stages = [_StageState(s) for s in work.stages]
        self.tail_ms = work.tail_ms
        self.tail_done = False
        self.compute_ms = work.compute_ms
        self.compute_tasks = max(1, work.compute_tasks)
        self.compute_pending: deque[int] = deque()
        self.compute_inflight: list[TaskRun] = []
        self.compute_done = 0
        self.speculation = work.speculation or SpeculationConfig()
        # Inter-stage overlap: per-compute-partition countdown of unfinished
        # scan feeders (empty list = sequential gating).
        self.overlap_deps: list[int] = []
        self.opaque = False
        self.opaque_failed = False
        self.cancelled = False
        # Every slot-occupying attempt: scan primaries + backups, and
        # compute partitions (stage "compute").
        self.runs: list[TaskRun] = []
        self.spec_launched = 0
        self.spec_wins = 0


class SlotPool:
    """Deterministic multi-job slot pool with admission control.

    ``run()`` is single-shot: build a pool, feed it one batch of arrivals,
    read the verdicts. The ``execute`` callback performs the *real* work of
    a job at admission time (in admission order — which keeps cache state
    and fault-RNG consumption a pure function of the seed) and returns the
    schedulable shape; the pool then interleaves every admitted job's model
    time over the shared slots.
    """

    def __init__(
        self,
        slots: int,
        max_concurrent_jobs: int = 8,
        inter_stage_overlap: bool = False,
        weights: dict[str, float] | None = None,
    ) -> None:
        self.slots = max(1, slots)
        self.max_concurrent_jobs = max(1, max_concurrent_jobs)
        self.inter_stage_overlap = inter_stage_overlap
        self.weights = dict(weights or {})
        self._events: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._now = 0.0
        self._free: list[int] = []
        self._queued: dict[str, deque[PoolArrival]] = {}
        self._jobs: dict[int, _JobState] = {}  # admitted, not yet settled
        self._admit_seq: dict[int, int] = {}
        self._admitted_count: dict[str, int] = {}
        self._used_slot_ms: dict[str, float] = {}
        self._cancelled_keys: set[int] = set()
        self._verdicts: dict[int, JobVerdict] = {}
        self._execute = None
        self._on_admit = None

    # -- public API ---------------------------------------------------------

    def cancel(self, key: int) -> bool:
        """Cancel a job by key: drops it from the admission queue, or — if
        already running — deschedules its pending tasks, truncates its
        in-flight attempts at current model time, and frees their slots.
        Returns False once the job already reached a verdict."""
        verdict = self._verdicts.get(key)
        if verdict is not None and verdict.state != "running":
            return False
        self._cancelled_keys.add(key)
        job = self._jobs.get(key)
        if job is not None and not job.cancelled:
            job.cancelled = True
            if not job.opaque:
                self._push(self._now, _SETTLE, job)
        return True

    def run(self, arrivals, execute, on_admit=None) -> dict[int, JobVerdict]:
        """Simulate one batch. ``execute(key, admitted_ms)`` returns a
        :class:`PoolExecution` or :class:`PoolOpaque`; ``on_admit(key,
        admitted_ms)`` (optional) fires right before execution — the
        deterministic seam tests use to cancel a queued or running job."""
        self._execute = execute
        self._on_admit = on_admit
        self._free = list(range(self.slots))
        heapq.heapify(self._free)
        for arrival in arrivals:
            self._push(arrival.arrival_ms, _ARRIVAL, arrival)
        while self._events:
            now, kind, _, payload = heapq.heappop(self._events)
            self._now = now
            if kind == _ARRIVAL:
                self._arrive(payload, now)
            elif kind == _FINISH:
                self._finish(payload, now)
            elif kind == _SETTLE:
                self._settle_cancelled(payload, now)
            elif kind == _CHECK:
                self._speculation_check(payload, now)
            elif kind == _PHASE:
                self._phase(payload, now)
            elif kind == _JOB_END:
                self._opaque_end(payload, now)
        return self._verdicts

    # -- event plumbing -----------------------------------------------------

    def _push(self, at_ms: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (at_ms, kind, self._seq, payload))

    def _arrive(self, arrival: PoolArrival, now: float) -> None:
        self._queued.setdefault(arrival.principal, deque()).append(arrival)
        self._try_admit(now)

    # -- admission ----------------------------------------------------------

    def _running_of(self, principal: str) -> int:
        return sum(1 for j in self._jobs.values() if j.principal == principal)

    def _try_admit(self, now: float) -> None:
        while len(self._jobs) < self.max_concurrent_jobs:
            ready = sorted(
                (p for p, q in self._queued.items() if q),
                key=lambda p: (
                    self._running_of(p),
                    self._admitted_count.get(p, 0),
                    p,
                ),
            )
            if not ready:
                return
            arrival = self._queued[ready[0]].popleft()
            if arrival.key in self._cancelled_keys:
                self._verdicts[arrival.key] = JobVerdict(
                    key=arrival.key, principal=arrival.principal,
                    state="cancelled", arrival_ms=arrival.arrival_ms,
                    end_ms=now,
                )
                continue
            self._admit(arrival, now)

    def _admit(self, arrival: PoolArrival, now: float) -> None:
        self._admitted_count[arrival.principal] = (
            self._admitted_count.get(arrival.principal, 0) + 1
        )
        self._admit_seq[arrival.key] = len(self._admit_seq)
        if self._on_admit is not None:
            self._on_admit(arrival.key, now)
        if arrival.key in self._cancelled_keys:
            self._verdicts[arrival.key] = JobVerdict(
                key=arrival.key, principal=arrival.principal,
                state="cancelled", arrival_ms=arrival.arrival_ms,
                admitted_ms=now, end_ms=now, admitted=True,
            )
            return
        work = self._execute(arrival.key, now)
        if isinstance(work, PoolOpaque):
            # Failed statements and DML shells: a seat, not slots. Their
            # verdict is the real-work clock delta, same as the serial path.
            holder = _JobState(
                arrival.key, arrival.principal, PoolExecution(prelude_ms=0.0), now
            )
            holder.opaque = True
            holder.opaque_failed = work.failed
            holder.tail_done = True
            self._jobs[arrival.key] = holder
            self._verdicts[arrival.key] = JobVerdict(
                key=arrival.key, principal=arrival.principal, state="running",
                arrival_ms=arrival.arrival_ms, admitted_ms=now, admitted=True,
            )
            self._push(now + work.elapsed_ms, _JOB_END, holder)
            return
        job = _JobState(arrival.key, arrival.principal, work, now)
        self._jobs[arrival.key] = job
        self._verdicts[arrival.key] = JobVerdict(
            key=arrival.key, principal=arrival.principal, state="running",
            arrival_ms=arrival.arrival_ms, admitted_ms=now, admitted=True,
        )
        if self.inter_stage_overlap and job.tail_ms <= 0 and job.compute_ms > 0:
            # Partition p waits on scan tasks t ≡ p (mod K) of every stage.
            job.overlap_deps = [0] * job.compute_tasks
            for stage in job.stages:
                for t in range(stage.n):
                    job.overlap_deps[t % job.compute_tasks] += 1
        # The prelude is serial model time; stage/compute readiness lands
        # at its end.
        self._push(job.prelude_end, _PHASE, ("prelude", job))

    # -- job-phase transitions ----------------------------------------------

    def _phase(self, payload, now: float) -> None:
        phase, job = payload
        if job.key not in self._jobs or job.cancelled:
            return
        if phase == "prelude":
            self._on_prelude_done(job, now)
        else:  # "tail"
            job.tail_done = True
            self._open_compute(job, now)

    def _on_prelude_done(self, job: _JobState, now: float) -> None:
        if job.overlap_deps:
            # Overlap mode implies tail_ms == 0: compute partitions with no
            # scan feeders are runnable immediately.
            job.tail_done = True
            for p in range(job.compute_tasks):
                if job.overlap_deps[p] == 0:
                    job.compute_pending.append(p)
        if self.inter_stage_overlap:
            for stage in job.stages:
                stage.ready = True
        elif job.stages:
            job.stages[0].ready = True
        if not job.stages and not job.overlap_deps:
            self._after_scans(job, now)
            return
        self._assign(now)
        self._maybe_speculate(now)

    def _after_scans(self, job: _JobState, now: float) -> None:
        """All scan stages drained (sequential gating): run the tail, then
        (or directly) open the compute phase."""
        if job.tail_ms > 0:
            self._push(now + job.tail_ms, _PHASE, ("tail", job))
            return
        self._open_compute(job, now)

    def _open_compute(self, job: _JobState, now: float) -> None:
        job.tail_done = True
        if job.compute_ms <= 0 and job.compute_done == 0:
            self._complete(job, now)
            return
        job.compute_pending.extend(range(job.compute_tasks))
        self._assign(now)
        self._maybe_speculate(now)

    def _compute_finished(self, job: _JobState) -> bool:
        return (
            job.compute_done == job.compute_tasks
            and not job.compute_pending
            and not job.compute_inflight
        )

    def _complete(self, job: _JobState, now: float) -> None:
        verdict = self._verdicts[job.key]
        verdict.state = "done"
        verdict.end_ms = now
        self._finalize_verdict(job, verdict)
        del self._jobs[job.key]
        self._try_admit(now)

    def _settle_cancelled(self, job: _JobState, now: float) -> None:
        """Tear a cancelled running job down: cancel in-flight attempts at
        current model time, drop pending work, free the seat."""
        if job.key not in self._jobs:
            return
        for stage in job.stages:
            stage.pending.clear()
            for run in list(stage.primary.values()) + list(stage.backup.values()):
                if run.task not in stage.done and not run.cancelled:
                    run.cancelled = True
                    run.end_ms = max(run.start_ms, now)
                    run.cost_ms = run.duration_ms
                    heapq.heappush(self._free, run.slot)
        job.compute_pending.clear()
        for run in job.compute_inflight:
            run.cancelled = True
            run.end_ms = max(run.start_ms, now)
            run.cost_ms = run.duration_ms
            heapq.heappush(self._free, run.slot)
        job.compute_inflight = []
        verdict = self._verdicts[job.key]
        verdict.state = "cancelled"
        verdict.end_ms = now
        self._finalize_verdict(job, verdict)
        del self._jobs[job.key]
        self._try_admit(now)
        self._assign(now)
        self._maybe_speculate(now)

    def _finalize_verdict(self, job: _JobState, verdict: JobVerdict) -> None:
        base = job.admitted_ms
        verdict.runs = [
            TaskRun(
                stage=r.stage, task=r.task, slot=r.slot,
                start_ms=r.start_ms - base, end_ms=r.end_ms - base,
                cost_ms=r.cost_ms, slow_factor=r.slow_factor,
                speculative=r.speculative, winner=r.winner,
                cancelled=r.cancelled,
            )
            for r in job.runs
        ]
        verdict.speculative_launched = job.spec_launched
        verdict.speculative_wins = job.spec_wins
        winners = [d for s in job.stages for d in s.completed]
        if winners:
            mean = sum(winners) / len(winners)
            if mean > 0:
                verdict.task_skew = max(winners) / mean

    def _opaque_end(self, job: _JobState, now: float) -> None:
        if job.key not in self._jobs:
            return
        verdict = self._verdicts[job.key]
        if job.cancelled:
            verdict.state = "cancelled"
        else:
            verdict.state = "failed" if job.opaque_failed else "done"
        verdict.end_ms = now
        del self._jobs[job.key]
        self._try_admit(now)

    # -- task scheduling ----------------------------------------------------

    def _runnable_jobs(self) -> list[_JobState]:
        return [
            job
            for job in self._jobs.values()
            if not job.cancelled
            and (
                any(s.ready and s.pending for s in job.stages)
                or (job.tail_done and job.compute_pending)
            )
        ]

    def _weight(self, principal: str) -> float:
        w = self.weights.get(principal, 1.0)
        return w if w > 0 else 1.0

    def _pick_job(self, candidates: list[_JobState]) -> _JobState:
        return min(
            candidates,
            key=lambda j: (
                self._used_slot_ms.get(j.principal, 0.0) / self._weight(j.principal),
                j.principal,
                self._admit_seq[j.key],
            ),
        )

    def _assign(self, now: float) -> None:
        while self._free:
            candidates = self._runnable_jobs()
            if not candidates:
                return
            job = self._pick_job(candidates)
            for stage in job.stages:
                if stage.ready and stage.pending:
                    self._launch_scan(job, stage, stage.pending.popleft(), now, False)
                    break
            else:
                self._launch_compute(job, job.compute_pending.popleft(), now)

    def _launch_scan(
        self, job: _JobState, stage: _StageState, task: int, now: float,
        speculative: bool,
    ) -> None:
        slot = heapq.heappop(self._free)
        factor = 1.0 if speculative else stage.slow[task]
        cost = stage.costs[task] * factor
        run = TaskRun(
            stage=stage.name, task=task, slot=slot, start_ms=now,
            end_ms=now + cost, cost_ms=cost, slow_factor=factor,
            speculative=speculative,
        )
        job.runs.append(run)
        if speculative:
            stage.backup[task] = run
            job.spec_launched += 1
        else:
            stage.primary[task] = run
        self._used_slot_ms[job.principal] = (
            self._used_slot_ms.get(job.principal, 0.0) + cost
        )
        self._push(run.end_ms, _FINISH, (job, stage, run))

    def _launch_compute(self, job: _JobState, partition: int, now: float) -> None:
        slot = heapq.heappop(self._free)
        cost = job.compute_ms / job.compute_tasks
        run = TaskRun(
            stage="compute", task=partition, slot=slot, start_ms=now,
            end_ms=now + cost, cost_ms=cost,
        )
        job.compute_inflight.append(run)
        # Compute partitions occupy slots like scan tasks do, so they
        # belong in the attempt timeline: RESERVATION_TIMELINE slot-ms is
        # derived from these runs and must tie out against JOBS_TIMELINE.
        job.runs.append(run)
        self._used_slot_ms[job.principal] = (
            self._used_slot_ms.get(job.principal, 0.0) + cost
        )
        self._push(run.end_ms, _FINISH, (job, None, run))

    def _finish(self, payload, now: float) -> None:
        job, stage, run = payload
        if run.cancelled or job.key not in self._jobs or job.cancelled:
            return
        if stage is None:
            # Compute partition landed.
            job.compute_inflight.remove(run)
            job.compute_done += 1
            run.winner = True
            heapq.heappush(self._free, run.slot)
            if self._compute_finished(job):
                self._complete(job, now)
            self._assign(now)
            self._maybe_speculate(now)
            return
        if run.task in stage.done:
            return  # stale finish of a raced twin
        stage.done.add(run.task)
        run.winner = True
        stage.completed.append(run.duration_ms)
        heapq.heappush(self._free, run.slot)
        if run.speculative:
            job.spec_wins += 1
        twin = (
            stage.primary.get(run.task) if run.speculative
            else stage.backup.get(run.task)
        )
        if twin is not None and twin is not run and not twin.cancelled:
            twin.cancelled = True
            twin.end_ms = now
            twin.cost_ms = twin.duration_ms
            heapq.heappush(self._free, twin.slot)
        self._on_scan_done(job, stage, run.task, now)
        self._assign(now)
        self._maybe_speculate(now)

    def _on_scan_done(
        self, job: _JobState, stage: _StageState, task: int, now: float
    ) -> None:
        if job.overlap_deps:
            p = task % job.compute_tasks
            job.overlap_deps[p] -= 1
            if job.overlap_deps[p] == 0:
                job.compute_pending.append(p)
        if not stage.complete:
            return
        if not self.inter_stage_overlap:
            idx = job.stages.index(stage)
            if idx + 1 < len(job.stages):
                job.stages[idx + 1].ready = True
                return
        if all(s.complete for s in job.stages):
            if job.overlap_deps:
                return  # compute completion closes the job
            self._after_scans(job, now)

    # -- speculation --------------------------------------------------------

    def _maybe_speculate(self, now: float) -> None:
        if self._runnable_jobs():
            return
        for key in sorted(self._jobs, key=lambda k: self._admit_seq[k]):
            job = self._jobs[key]
            spec = job.speculation
            if job.cancelled or not spec.enabled:
                continue
            for stage in job.stages:
                if not stage.ready or stage.complete:
                    continue
                if len(stage.completed) < spec.min_completed:
                    continue
                limit = (
                    duration_quantile(stage.completed, spec.quantile)
                    * spec.threshold_multiplier
                )
                for task in sorted(stage.primary):
                    if not self._free:
                        return
                    if task in stage.done or task in stage.backup:
                        continue
                    trigger = stage.primary[task].start_ms + limit
                    if trigger <= now:
                        self._launch_scan(job, stage, task, now, True)
                    else:
                        # Re-evaluated when it fires; duplicates are no-ops.
                        self._push(trigger, _CHECK, (job, stage, task))

    def _speculation_check(self, payload, now: float) -> None:
        job, stage, task = payload
        spec = job.speculation
        if (
            job.key not in self._jobs
            or job.cancelled
            or not spec.enabled
            or self._runnable_jobs()
            or not self._free
            or task in stage.done
            or task in stage.backup
            or len(stage.completed) < spec.min_completed
        ):
            return
        limit = (
            duration_quantile(stage.completed, spec.quantile)
            * spec.threshold_multiplier
        )
        trigger = stage.primary[task].start_ms + limit
        if trigger <= now:
            self._launch_scan(job, stage, task, now, True)
        else:
            self._push(trigger, _CHECK, (job, stage, task))
