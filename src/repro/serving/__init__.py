"""Concurrent multi-query serving: shared slot pool + async jobs API.

:mod:`repro.serving.pool` is the platform-level resource — one
deterministic discrete-event :class:`SlotPool` that N in-flight queries
draw slots from, with admission control, fair-share (or weighted
reservation) allocation across principals, optional inter-stage overlap,
and the same straggler/speculation semantics as the single-query
scheduler. :mod:`repro.serving.jobs` is the BigQuery-shaped surface over
it: ``submit() -> QueryJob`` with ``state``/``wait()``/``cancel()``, a
``jobs.*`` REST facade, and the PENDING → RUNNING → terminal lifecycle
recorded into ``INFORMATION_SCHEMA.JOBS``. :mod:`repro.serving.workload`
drives the mixed multi-principal workload behind ``python -m repro serve``.
"""

from repro.serving.jobs import JobQueue, JobsApi, QueryJob, ServingConfig
from repro.serving.pool import (
    JobVerdict,
    PoolArrival,
    PoolExecution,
    PoolOpaque,
    PoolStage,
    SlotPool,
)

__all__ = [
    "JobQueue",
    "JobsApi",
    "JobVerdict",
    "PoolArrival",
    "PoolExecution",
    "PoolOpaque",
    "PoolStage",
    "QueryJob",
    "ServingConfig",
    "SlotPool",
]
