"""Exception hierarchy shared by every repro subsystem.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors. The
subclasses mirror the failure domains of the real system: storage, catalog,
security, query processing, the storage APIs, ML inference, and Omni.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Object-store level failure (missing object, bad bucket, etc.)."""


class NotFoundError(StorageError):
    """A referenced object, bucket, table, or resource does not exist."""


class AlreadyExistsError(StorageError):
    """Attempt to create a resource that already exists."""


class PreconditionFailedError(StorageError):
    """A conditional (CAS) write lost the race: generation mismatch."""


class RateLimitedError(StorageError):
    """The object store rejected a mutation due to per-object rate limits."""


class CatalogError(ReproError):
    """Catalog / metadata-service failure."""


class TransactionConflictError(CatalogError):
    """An optimistic transaction conflicted with a concurrent commit."""


class SecurityError(ReproError):
    """Authentication or authorization failure."""


class AccessDeniedError(SecurityError):
    """The principal lacks permission for the attempted operation."""


class InvalidCredentialError(SecurityError):
    """Credential is malformed, expired, or out of scope."""


class QueryError(ReproError):
    """Query front-end or execution failure."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class AnalysisError(QueryError):
    """The query is syntactically valid but semantically wrong."""


class ExecutionError(QueryError):
    """Runtime failure while executing a (valid) plan."""


class StorageApiError(ReproError):
    """Read/Write API protocol failure."""


class SessionExpiredError(StorageApiError):
    """The read/write session is no longer usable."""


class StreamOffsetError(StorageApiError):
    """An append arrived at an unexpected offset (exactly-once violation)."""


class MlError(ReproError):
    """Model registry or inference failure."""


class ModelTooLargeError(MlError):
    """Model exceeds the in-engine (Dremel worker) loadable size limit."""


class OmniError(ReproError):
    """Multi-cloud control/data-plane failure."""


class VpnPolicyError(OmniError):
    """The VPN policy engine rejected a cross-plane RPC."""
