"""Exception hierarchy shared by every repro subsystem.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors. The
subclasses mirror the failure domains of the real system: storage, catalog,
security, query processing, the storage APIs, ML inference, and Omni.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TransientError(ReproError):
    """Mixin marking failures that may succeed if simply retried.

    Retry machinery (:class:`repro.faults.RetryPolicy`) keys off this class:
    an error is retryable iff it is a ``TransientError``. Permanent failures
    (not-found, access-denied, syntax errors, forged credentials) must NOT
    inherit from it — retrying them only wastes the retry budget.
    """


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` is classified transient (safe to retry)."""
    return isinstance(exc, TransientError)


class StorageError(ReproError):
    """Object-store level failure (missing object, bad bucket, etc.)."""


class NotFoundError(StorageError):
    """A referenced object, bucket, table, or resource does not exist."""


class AlreadyExistsError(StorageError):
    """Attempt to create a resource that already exists."""


class PreconditionFailedError(StorageError):
    """A conditional (CAS) write lost the race: generation mismatch."""


class RateLimitedError(StorageError, TransientError):
    """The object store rejected a mutation due to per-object rate limits."""


class UnavailableError(StorageError, TransientError):
    """The object store was transiently unavailable (5xx-shaped)."""


class CatalogError(ReproError):
    """Catalog / metadata-service failure."""


class TransactionConflictError(CatalogError):
    """An optimistic transaction conflicted with a concurrent commit."""


class MetadataUnavailableError(CatalogError, TransientError):
    """Big Metadata was transiently unreachable (lookup or commit)."""


class CommitRetryExhaustedError(CatalogError, TransientError):
    """A pointer-CAS commit lost every retry of its budget to races.

    Raised by :meth:`repro.tableformats.iceberg.IcebergTable.commit_append`
    (and overwrite) when ``max_retries`` CAS attempts all collided with
    concurrent committers. Transient by construction: the table is healthy,
    the commit is simply contended — backing off and retrying the whole
    commit can succeed (§3.5's commit-rate ceiling made visible).
    """


class TransactionAbortedError(CatalogError):
    """The multi-table transaction was aborted (conflict loser or rolled
    back by recovery); its staged writes will never become visible.
    Deliberately not transient: the caller must begin a fresh transaction.
    """


class WriterCrashError(ReproError):
    """An injected writer death at a ``txn.crash`` hazard point.

    Simulates the writing process dying mid-publish: the transaction is
    left exactly as the crash found it (dangling intent, partial tagged
    commits) for the recovery sweep to finish. Not transient — a dead
    writer cannot retry itself.
    """


class SecurityError(ReproError):
    """Authentication or authorization failure."""


class AccessDeniedError(SecurityError):
    """The principal lacks permission for the attempted operation."""


class InvalidCredentialError(SecurityError):
    """Credential is malformed, expired, or out of scope."""


class TokenExpiredError(InvalidCredentialError):
    """A (previously valid) session token passed its expiry.

    Deliberately *not* transient: blind retry with the same token can never
    succeed — the caller must re-establish a fresh token first (see
    ``UntrustedProxy`` token re-establishment in :mod:`repro.omni.network`).
    """


class QueryError(ReproError):
    """Query front-end or execution failure."""


class SqlSyntaxError(QueryError):
    """The SQL text could not be parsed."""


class AnalysisError(QueryError):
    """The query is syntactically valid but semantically wrong."""


class ExecutionError(QueryError):
    """Runtime failure while executing a (valid) plan."""


class JobCancelledError(QueryError):
    """The job was cancelled (by its owner or an admin) before completion.

    Raised by :meth:`repro.serving.QueryJob.wait` / ``get_query_results``
    when the job reached the ``CANCELLED`` terminal state. Deliberately not
    transient: resubmission is a caller decision, not a retry.
    """


class TransientExecutionError(ExecutionError, TransientError):
    """A worker task died mid-flight (slot preemption / worker restart)."""


class StorageApiError(ReproError):
    """Read/Write API protocol failure."""


class SessionExpiredError(StorageApiError):
    """The read/write session is no longer usable."""


class StreamOffsetError(StorageApiError):
    """An append arrived at an unexpected offset (exactly-once violation)."""


class MlError(ReproError):
    """Model registry or inference failure."""


class ModelTooLargeError(MlError):
    """Model exceeds the in-engine (Dremel worker) loadable size limit."""


class OmniError(ReproError):
    """Multi-cloud control/data-plane failure."""


class VpnPolicyError(OmniError):
    """The VPN policy engine rejected a cross-plane RPC."""


class VpnUnavailableError(OmniError, TransientError):
    """The cross-cloud VPN tunnel flapped; the RPC never reached the peer."""


#: Stable machine-readable codes for ``INFORMATION_SCHEMA.JOBS.error_code``.
#: Ordered most-specific-first; the first matching class wins. Free-text
#: ``error`` strings stay for humans; retry dashboards and abort budgets
#: key off these instead.
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (TransactionAbortedError, "TXN_ABORTED"),
    (TransactionConflictError, "TXN_CONFLICT"),
    (CommitRetryExhaustedError, "COMMIT_RETRY_EXHAUSTED"),
    (WriterCrashError, "WRITER_CRASHED"),
    (JobCancelledError, "CANCELLED"),
    (TokenExpiredError, "TOKEN_EXPIRED"),
    (InvalidCredentialError, "INVALID_CREDENTIAL"),
    (AccessDeniedError, "ACCESS_DENIED"),
    (RateLimitedError, "RATE_LIMITED"),
    (PreconditionFailedError, "PRECONDITION_FAILED"),
    (NotFoundError, "NOT_FOUND"),
    (AlreadyExistsError, "ALREADY_EXISTS"),
    (SqlSyntaxError, "INVALID_SYNTAX"),
    (AnalysisError, "INVALID_QUERY"),
    (ModelTooLargeError, "MODEL_TOO_LARGE"),
    (VpnPolicyError, "VPN_POLICY_DENIED"),
    (StreamOffsetError, "STREAM_OFFSET_MISMATCH"),
    (SessionExpiredError, "SESSION_EXPIRED"),
)


def error_code(exc: BaseException | None) -> str:
    """The stable code for an exception surfaced as a job's terminal error.

    A *transient* error that still reached the caller means the retry
    budget ran out recovering it — those all map to
    ``RETRY_BUDGET_EXHAUSTED`` (unless a more specific code above applies),
    so "gave up retrying" is one queryable bucket instead of N error
    strings. Unclassified library errors map to ``ERROR``; non-library
    exceptions to ``INTERNAL``; ``None`` (no error) to ``""``.
    """
    if exc is None:
        return ""
    for cls, code in _ERROR_CODES:
        if isinstance(exc, cls):
            return code
    if isinstance(exc, TransientError):
        return "RETRY_BUDGET_EXHAUSTED"
    if isinstance(exc, ReproError):
        return "ERROR"
    return "INTERNAL"
