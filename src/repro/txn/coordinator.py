"""The transaction coordinator: begin/commit/abort + crash recovery.

A :class:`Transaction` gives one writer snapshot-isolated reads (pinned at
``begin_ms``) and buffered writes across BLMT and Iceberg tables. Nothing
touches shared table state until :meth:`Transaction.commit`, which runs the
publish protocol::

    prepare   validate first-writer-wins against the tables' current
              versions — conflicts abort here, before anything durable
    intent    CAS-create the INTENT record listing every planned commit
    table:T   publish each table's commit *tagged* with the txn id
              (BLMT: Big Metadata log append; Iceberg: pointer CAS) —
              tagged commits stay invisible to every reader
    marker    CAS the record INTENT -> COMMITTED (the atomic flip: all
              tables become visible at the marker's commit time)
    finalize  roll-forward side effects (catalog version bumps, metadata
              cache refresh) and stamp the record finalized

``ctx.faults.check("txn.crash", txn=..., step=...)`` runs before every step,
so a chaos plan can kill the writer at any point. A crash leaves state
exactly as-is — dangling intent, partial tagged commits — for
:meth:`TransactionCoordinator.recover` to finish: COMMITTED-but-unfinalized
records roll forward, INTENT records roll back (marker -> ABORTED, then
physical Iceberg cleanup; BLMT needs none — aborted tags are invisible
forever and GC reclaims the orphan files).

Isolation: snapshot reads resolve tagged commits through the marker, so a
transaction's tables flip atomically even for time-travel readers.
Conflict detection is first-writer-wins at *table* granularity: two
transactions that wrote the same table conflict, reads never do, and a
crashed transaction that already bumped a table version can abort an
innocent overlapper (a documented spurious abort — the loser just
retries). There is no read-your-own-writes: buffered writes are invisible
until the marker lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    NotFoundError,
    ReproError,
    TransactionAbortedError,
    TransactionConflictError,
    WriterCrashError,
)
from repro.metastore.bigmeta import FileEntry
from repro.metastore.catalog import TableInfo
from repro.tableformats.iceberg import DataFileInfo, IcebergTable
from repro.txn.log import (
    ABORTED,
    COMMITTED,
    INTENT,
    TableCommit,
    TransactionLog,
    TxnRecord,
)


@dataclass
class _BlmtWrite:
    """Buffered writes against one BLMT table."""

    table: TableInfo
    base_version: int  # Big Metadata version validated at publish
    added: list[FileEntry] = field(default_factory=list)
    deleted: list[str] = field(default_factory=list)


@dataclass
class _IcebergWrite:
    """Buffered writes against one Iceberg table."""

    table: IcebergTable
    base_snapshot_id: int | None  # pointer snapshot validated at publish
    added: list[DataFileInfo] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)


@dataclass
class RecoveryReport:
    """What one recovery sweep did."""

    rolled_forward: list[str] = field(default_factory=list)
    rolled_back: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rolled_forward) + len(self.rolled_back)

    def to_dict(self) -> dict:
        return {
            "rolled_forward": list(self.rolled_forward),
            "rolled_back": list(self.rolled_back),
        }


class Transaction:
    """One writer's open transaction (see module docstring for protocol)."""

    def __init__(self, coordinator: "TransactionCoordinator", principal, txn_id: str) -> None:
        self._coord = coordinator
        self.ctx = coordinator.ctx
        self.principal = principal
        self.txn_id = txn_id
        self.begin_ms = self.ctx.clock.now_ms
        self.state = "OPEN"  # OPEN | COMMITTED | ABORTED | CRASHED
        self._blmt: dict[str, _BlmtWrite] = {}
        self._iceberg: dict[str, _IcebergWrite] = {}

    # -- guards -----------------------------------------------------------------

    def _require_open(self) -> None:
        if self.state != "OPEN":
            raise TransactionAbortedError(
                f"transaction {self.txn_id} is {self.state}, not OPEN"
            )

    @property
    def tables_written(self) -> list[str]:
        return sorted(list(self._blmt) + list(self._iceberg))

    # -- reads and statements ---------------------------------------------------

    def execute(self, sql: str):
        """Run one statement inside this transaction.

        SELECTs read the transaction's begin snapshot (marker-time as-of,
        so concurrently committing transactions never show partially).
        DML against BLMT tables buffers into the transaction instead of
        committing; everything publishes together at :meth:`commit`.
        """
        self._require_open()
        platform = self._coord.platform
        queue = platform.job_queue
        head = sql.lstrip().upper()
        is_select = head.startswith("SELECT") or head.startswith("WITH")
        prev_active = self._coord.active
        prev_txn_id = queue.current_transaction_id
        self._coord.active = self
        queue.current_transaction_id = self.txn_id
        try:
            if is_select:
                return platform.home_engine.execute(
                    sql, self.principal, snapshot_ms=self.begin_ms
                )
            return platform.home_engine.execute(sql, self.principal)
        finally:
            self._coord.active = prev_active
            queue.current_transaction_id = prev_txn_id

    def scan_iceberg(
        self, iceberg: IcebergTable, constraints=None
    ) -> list[DataFileInfo]:
        """Snapshot-isolated Iceberg scan pinned at ``begin_ms``."""
        self._require_open()
        snapshot_id = iceberg.snapshot_id_as_of(self.begin_ms)
        if snapshot_id is None:
            return []
        return iceberg.scan(constraints, snapshot_id=snapshot_id)

    # -- write buffering --------------------------------------------------------

    def stage_blmt(
        self,
        table: TableInfo,
        added: list[FileEntry] | None = None,
        deleted: list[str] | None = None,
    ) -> None:
        """Buffer a BLMT commit (data files are already written — they are
        inert until a committed, marker-visible log record references them)."""
        self._require_open()
        write = self._blmt.get(table.table_id)
        if write is None:
            meta = self._coord.platform.bigmeta.table(table.table_id)
            write = _BlmtWrite(table=table, base_version=meta.version)
            self._blmt[table.table_id] = write
        write.added.extend(added or [])
        write.deleted.extend(deleted or [])

    def stage_iceberg(
        self,
        iceberg: IcebergTable,
        added: list[DataFileInfo] | None = None,
        removed_paths: list[str] | None = None,
    ) -> None:
        """Buffer an Iceberg commit for publish-time pointer CAS."""
        self._require_open()
        table_id = f"{iceberg.bucket}/{iceberg.prefix}"
        write = self._iceberg.get(table_id)
        if write is None:
            base = iceberg.read_metadata()["current_snapshot_id"]
            write = _IcebergWrite(table=iceberg, base_snapshot_id=base)
            self._iceberg[table_id] = write
        write.added.extend(added or [])
        write.removed.extend(removed_paths or [])

    # -- terminal operations ----------------------------------------------------

    def abort(self) -> None:
        """Drop the transaction. Nothing durable exists before commit(), so
        this is purely local; an unknown txn id already reads as ABORTED."""
        if self.state == "OPEN":
            self.state = "ABORTED"
            self.ctx.metrics.counter(
                "repro_txn_aborted_total", "Transactions aborted."
            ).inc(reason="explicit")

    def _crash_point(self, step: str) -> None:
        self.ctx.faults.check("txn.crash", txn=self.txn_id, step=step)

    def commit(self) -> float:
        """Publish every buffered write atomically; returns the marker's
        commit time. Raises :class:`TransactionConflictError` when this
        writer lost first-writer-wins, :class:`WriterCrashError` when a
        chaos plan kills it mid-publish (state is then left for recovery).
        """
        self._require_open()
        ctx = self.ctx
        coord = self._coord
        self._crash_point("prepare")

        # First-writer-wins: any table written by this transaction must be
        # unchanged since we first touched it. Conflicts abort *before*
        # anything durable exists.
        conflicts: list[str] = []
        for table_id, write in sorted(self._blmt.items()):
            meta = coord.platform.bigmeta.table(table_id)
            if meta.version != write.base_version:
                conflicts.append(
                    f"{table_id} v{write.base_version} -> v{meta.version}"
                )
        for table_id, write in sorted(self._iceberg.items()):
            current = write.table.read_metadata()["current_snapshot_id"]
            if current != write.base_snapshot_id:
                conflicts.append(
                    f"{table_id} snapshot {write.base_snapshot_id} -> {current}"
                )
        if conflicts:
            self.state = "ABORTED"
            ctx.metrics.counter(
                "repro_txn_aborted_total", "Transactions aborted."
            ).inc(reason="conflict")
            raise TransactionConflictError(
                f"transaction {self.txn_id} lost first-writer-wins: "
                + "; ".join(conflicts)
            )

        record = TxnRecord(
            txn_id=self.txn_id,
            state=INTENT,
            writer=str(self.principal),
            begin_ms=self.begin_ms,
            tables=(
                [
                    TableCommit(
                        table_id=table_id,
                        format="blmt",
                        base_version=write.base_version,
                        added=[e.file_path for e in write.added],
                        deleted=list(write.deleted),
                    )
                    for table_id, write in sorted(self._blmt.items())
                ]
                + [
                    TableCommit(
                        table_id=table_id,
                        format="iceberg",
                        base_version=write.base_snapshot_id or 0,
                        added=[f.path for f in write.added],
                        deleted=list(write.removed),
                    )
                    for table_id, write in sorted(self._iceberg.items())
                ]
            ),
        )
        ctx.with_retry("txn.intent", lambda: coord.log.create_intent(record))
        self._crash_point("intent")

        try:
            for table_id, write in sorted(self._blmt.items()):
                ctx.with_retry(
                    "bigmeta.commit",
                    lambda w=write: coord.platform.bigmeta.commit(
                        w.table.table_id,
                        added=w.added,
                        deleted=w.deleted,
                        txn_id=self.txn_id,
                    ),
                )
                self._crash_point(f"table:{table_id}")
            for table_id, write in sorted(self._iceberg.items()):
                if write.removed:
                    write.table.commit_overwrite(
                        write.added, write.removed, txn_id=self.txn_id
                    )
                else:
                    write.table.commit_append(write.added, txn_id=self.txn_id)
                self._crash_point(f"table:{table_id}")
            self._crash_point("marker")
        except WriterCrashError:
            # The writer is dead: leave the dangling intent and partial
            # tagged commits exactly as they are for the recovery sweep.
            self.state = "CRASHED"
            raise
        except TransactionConflictError as exc:
            # Publish-time conflict detection backstops prepare-time FWW:
            # a competing commit can land *before* this transaction stages
            # a table (so the base version already includes it) and retire
            # a file this transaction's copy-on-write rewrite still
            # references. Big Metadata's delete-liveness check catches
            # that; surface it as the conflict it is (retry with a fresh
            # transaction) after rolling back whatever already published.
            coord.roll_back(record.txn_id)
            self.state = "ABORTED"
            ctx.metrics.counter(
                "repro_txn_aborted_total", "Transactions aborted."
            ).inc(reason="conflict")
            raise TransactionConflictError(
                f"transaction {self.txn_id} lost a publish-time conflict: {exc}"
            ) from exc
        except ReproError as exc:
            # A real publish failure with the writer still alive: roll the
            # transaction back inline (same path recovery would take).
            coord.roll_back(record.txn_id)
            self.state = "ABORTED"
            ctx.metrics.counter(
                "repro_txn_aborted_total", "Transactions aborted."
            ).inc(reason="publish_error")
            raise TransactionAbortedError(
                f"transaction {self.txn_id} failed during publish: {exc}"
            ) from exc

        try:
            committed = ctx.with_retry(
                "txn.marker",
                lambda: coord.log.transition(
                    self.txn_id, COMMITTED, commit_ms=ctx.clock.now_ms
                ),
            )
        except TransactionAbortedError:
            self.state = "ABORTED"
            raise
        self.state = "COMMITTED"
        coord._terminal_cache[self.txn_id] = (COMMITTED, committed.commit_ms)
        ctx.metrics.counter(
            "repro_txn_committed_total", "Transactions committed."
        ).inc()
        self._crash_point("finalize")
        coord.finalize(committed)
        return committed.commit_ms


class TransactionCoordinator:
    """Owns the transaction log, hands out transactions, runs recovery."""

    def __init__(self, platform, bucket: str = "repro-txn-log") -> None:
        self.platform = platform
        self.ctx = platform.ctx
        store = platform.stores.store_for(platform.config.home_region.location)
        self.log = TransactionLog(store, bucket=bucket)
        # Terminal states never change, so cache them: resolution happens on
        # every snapshot read of a tagged record and would otherwise turn
        # each scan into O(tagged records) store GETs.
        self._terminal_cache: dict[str, tuple[str, float]] = {}
        #: The transaction DML currently buffers into (set around
        #: Transaction.execute; BlmtManager consults it).
        self.active: Transaction | None = None
        # Deterministic txn ids, seeded past whatever the log already holds
        # so a restarted coordinator never reuses a published id.
        self._seq = 0
        for record in self.log.entries():
            tail = record.txn_id.rsplit("_", 1)[-1]
            if tail.isdigit():
                self._seq = max(self._seq, int(tail))
        # Wire marker resolution into every reader path: Big Metadata
        # (BLMT log records) and the object stores (Iceberg snapshots).
        platform.bigmeta.set_txn_resolver(self.status)
        platform.stores.set_txn_resolver(self.status)
        platform.tables.blmt.coordinator = self
        platform.system_tables.txn_log = self.log
        # Crash-safe start: finish whatever a dead writer left behind.
        self.recover()

    # -- transactions -----------------------------------------------------------

    def begin(self, principal) -> Transaction:
        self._seq += 1
        return Transaction(self, principal, f"txn_{self._seq:06d}")

    def status(self, txn_id: str) -> tuple[str, float]:
        """Marker resolution (``fn(txn_id) -> (state, commit_ms)``)."""
        cached = self._terminal_cache.get(txn_id)
        if cached is not None:
            return cached
        state, commit_ms = self.log.status(txn_id)
        if state in (COMMITTED, ABORTED):
            self._terminal_cache[txn_id] = (state, commit_ms)
        return state, commit_ms

    # -- recovery ---------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """One recovery sweep over the whole log (idempotent).

        COMMITTED-but-unfinalized records roll *forward* (their data is
        already visible — the marker landed; only side effects are owed).
        INTENT records roll *back*: the writer died before the marker, so
        the marker flips to ABORTED and Iceberg tables shed the aborted
        snapshots. Post-condition: zero dangling intents.
        """
        report = RecoveryReport()
        for record in self.log.entries():
            if record.state == COMMITTED and not record.finalized:
                self.finalize(record)
                report.rolled_forward.append(record.txn_id)
                self.ctx.metrics.counter(
                    "repro_txn_recovered_total", "Recovery sweep actions."
                ).inc(action="roll_forward")
            elif record.state == INTENT:
                self.roll_back(record.txn_id)
                report.rolled_back.append(record.txn_id)
                self.ctx.metrics.counter(
                    "repro_txn_recovered_total", "Recovery sweep actions."
                ).inc(action="roll_back")
        return report

    def finalize(self, record: TxnRecord) -> None:
        """Roll-forward side effects for a COMMITTED record, then stamp it
        finalized. Safe to re-run: the stamp is idempotent and the side
        effects (version bump, cache refresh) are monotone hints."""
        for commit in record.tables:
            if commit.format != "blmt":
                continue
            table = self._table_info(commit.table_id)
            if table is not None:
                table.version += 1
                self.platform.read_api.mark_cache_refreshed(commit.table_id)
        self.ctx.with_retry(
            "txn.finalize", lambda: self.log.mark_finalized(record.txn_id)
        )

    def roll_back(self, txn_id: str) -> None:
        """Abort a transaction stuck in INTENT: flip the marker first (so
        nothing tagged can ever become visible), then physically undo any
        Iceberg snapshots it landed. BLMT needs no physical undo — aborted
        tags are invisible forever and GC reclaims the orphan data files."""
        try:
            record = self.ctx.with_retry(
                "txn.marker", lambda: self.log.transition(txn_id, ABORTED)
            )
        except TransactionAbortedError:
            # Already terminal (e.g. double recovery); honor the marker.
            record, _ = self.log.read(txn_id)
            if record.state != ABORTED:
                return
        self._terminal_cache[txn_id] = (ABORTED, 0.0)
        for commit in record.tables:
            if commit.format != "iceberg":
                continue
            bucket, _, prefix = commit.table_id.partition("/")
            try:
                store = self.platform.stores.find_bucket(bucket)
            except NotFoundError:
                continue
            IcebergTable(store, bucket, prefix).rollback_txn(
                txn_id, added_paths=commit.added
            )

    # -- helpers ----------------------------------------------------------------

    def _table_info(self, table_id: str):
        parts = table_id.split(".")
        if len(parts) != 3:
            return None
        try:
            return self.platform.catalog.get_table(parts[1], parts[2])
        except ReproError:
            return None
