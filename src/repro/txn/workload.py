"""The E16 transaction chaos workload: order/lineitem co-mutation.

Concurrent seeded writers each run multi-statement transactions against a
pair of BLMT tables — ``txn.orders (order_id, total)`` and
``txn.lineitems (order_id, item_id, amount)`` — where every committed
transaction inserts a lineitem *and* bumps the matching order's total in
the same atomic publish. The cross-table invariant::

    for every order: total == SUM(lineitems.amount where same order_id)

must hold in every view a reader can obtain: the latest committed state
mid-flight (while other writers are between publish steps), the final
state after all writers finish, and the historical as-of view at each
commit marker's timestamp. Writers interleave at deterministic yield
points driven by one seeded RNG, and a chaos plan can kill any writer at
any publish step (``txn.crash``) or inject storage/metadata transients —
so the oracle exercises torn-state windows deliberately. Same seed ⇒
byte-identical report (the determinism gate in ``scripts/check.sh``).
"""

from __future__ import annotations

import random
from typing import Any, Iterator

from repro.core.platform import LakehousePlatform
from repro.data import DataType, Schema, batch_from_pydict
from repro.errors import (
    ReproError,
    TransactionAbortedError,
    TransactionConflictError,
    TransientError,
    WriterCrashError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.security.iam import Principal, Role
from repro.txn.log import COMMITTED

ORDERS_SCHEMA = Schema.of(
    ("order_id", DataType.INT64),
    ("total", DataType.FLOAT64),
)

LINEITEMS_SCHEMA = Schema.of(
    ("order_id", DataType.INT64),
    ("item_id", DataType.INT64),
    ("amount", DataType.FLOAT64),
)

#: Interleaved attempts before a writer falls back to running the whole
#: transaction without yield points. Table-granularity first-writer-wins
#: means heavily interleaved writers conflict often; the fallback bounds
#: retry storms without weakening the oracle (early attempts still
#: interleave through every torn-state window).
_INTERLEAVED_ATTEMPTS = 8


def build_txn_platform(orders: int = 4) -> tuple[LakehousePlatform, Principal]:
    """A platform with the seeded ``txn.orders`` / ``txn.lineitems`` lake.

    Each order starts with two lineitems whose amounts sum to its total,
    so the invariant holds before any transaction runs.
    """
    platform = LakehousePlatform()
    admin = platform.admin_user()
    store = platform.stores.store_for(platform.config.home_region.location)
    store.create_bucket("txn-lake")
    conn = platform.connections.create_connection("txn.lake")
    platform.connections.grant_lake_access(conn, "txn-lake", writable=True)
    platform.iam.grant("connections/txn.lake", Role.CONNECTION_USER, admin)
    platform.catalog.create_dataset("txn")
    orders_table = platform.tables.create_blmt(
        admin, "txn", "orders", ORDERS_SCHEMA, "txn-lake", "orders", "txn.lake"
    )
    lineitems_table = platform.tables.create_blmt(
        admin, "txn", "lineitems", LINEITEMS_SCHEMA, "txn-lake", "lineitems", "txn.lake"
    )
    order_ids = list(range(1, orders + 1))
    platform.tables.blmt.insert(
        orders_table,
        [batch_from_pydict(ORDERS_SCHEMA, {
            "order_id": order_ids,
            "total": [3.0 * oid for oid in order_ids],
        })],
    )
    platform.tables.blmt.insert(
        lineitems_table,
        [batch_from_pydict(LINEITEMS_SCHEMA, {
            "order_id": [oid for oid in order_ids for _ in (0, 1)],
            "item_id": [oid * 10 + k for oid in order_ids for k in (0, 1)],
            "amount": [amt for oid in order_ids for amt in (1.0 * oid, 2.0 * oid)],
        })],
    )
    return platform, admin


def _query_rows(platform, admin, sql: str, snapshot_ms: float | None):
    """Run one oracle query, absorbing injected transients.

    The oracle runs with the chaos plan still installed (clearing it
    would reseed the injector and break replay), so a read can exhaust
    its retry budget; re-running is deterministic because the injector's
    RNG stream only ever advances.
    """
    last: Exception | None = None
    for _ in range(6):
        try:
            return platform.home_engine.execute(
                sql, admin, snapshot_ms=snapshot_ms
            ).rows()
        except TransientError as exc:
            last = exc
    raise last  # pragma: no cover - 6 consecutive budget exhaustions


def _absorb_transients(fn):
    """Run ``fn`` to completion under chaos, absorbing retry-budget
    exhaustion. The per-op retry policy already handles most transients;
    this covers the tail (e.g. a whole log sweep re-rolling). Deterministic:
    the injector's RNG stream only ever advances."""
    last: Exception | None = None
    for _ in range(6):
        try:
            return fn()
        except TransientError as exc:
            last = exc
    raise last  # pragma: no cover - 6 consecutive budget exhaustions


def check_invariant(
    platform, admin, snapshot_ms: float | None = None, label: str = "latest"
) -> list[str]:
    """The torn-state oracle: one list of violations (empty == consistent).

    Checks, at ``snapshot_ms`` (or the latest committed state when None):
    every order's total equals the sum of its lineitems' amounts, no order
    row is duplicated or missing, and no lineitem is orphaned.
    """
    order_rows = _query_rows(
        platform, admin, "SELECT order_id, total FROM txn.orders", snapshot_ms
    )
    item_rows = _query_rows(
        platform,
        admin,
        "SELECT order_id, SUM(amount) AS amount_sum FROM txn.lineitems "
        "GROUP BY order_id",
        snapshot_ms,
    )
    violations: list[str] = []
    totals: dict[int, float] = {}
    for order_id, total in order_rows:
        if order_id in totals:
            violations.append(f"[{label}] duplicate order row for order {order_id}")
        totals[order_id] = total
    sums = {order_id: amount_sum for order_id, amount_sum in item_rows}
    for order_id in sorted(totals):
        expected = sums.get(order_id)
        if expected is None:
            violations.append(f"[{label}] order {order_id} has no lineitems")
        elif abs(totals[order_id] - expected) > 1e-6:
            violations.append(
                f"[{label}] order {order_id}: total {totals[order_id]:.6f} != "
                f"lineitem sum {expected:.6f}"
            )
    for order_id in sorted(sums):
        if order_id not in totals:
            violations.append(
                f"[{label}] lineitems reference missing order {order_id}"
            )
    return violations


def chaos_plan(rate: float, seed: int) -> FaultPlan:
    """The E16 chaos mix: writer crashes at every publish step plus the
    usual storage/metadata transients, all at ``rate``."""
    if rate <= 0.0:
        return FaultPlan(seed=seed, specs=[])
    return FaultPlan(seed=seed, specs=[
        FaultSpec(op="txn.crash", error="WriterCrashError", rate=rate),
        FaultSpec(op="objectstore.get", error="UnavailableError", rate=rate),
        FaultSpec(op="bigmeta.lookup", error="MetadataUnavailableError", rate=rate),
    ])


def _writer(
    platform,
    principal: Principal,
    windex: int,
    txns_per_writer: int,
    orders: int,
    max_attempts: int,
    stats: dict[str, Any],
) -> Iterator[None]:
    """One writer as a generator: yields at every torn-state window so the
    driver can interleave it with the other writers."""
    for t in range(txns_per_writer):
        order_id = (windex * 7 + t * 5) % orders + 1
        amount = round(float((windex + 1) * 10 + t + 1), 2)
        attempt = 0
        while True:
            attempt += 1
            interleave = attempt <= _INTERLEAVED_ATTEMPTS
            txn = platform.begin(principal)
            item_id = (windex + 1) * 100_000 + t * 100 + attempt
            try:
                if interleave:
                    yield
                txn.execute(
                    "INSERT INTO txn.lineitems (order_id, item_id, amount) "
                    f"VALUES ({order_id}, {item_id}, {amount})"
                )
                if interleave:
                    yield
                txn.execute(
                    f"UPDATE txn.orders SET total = total + {amount} "
                    f"WHERE order_id = {order_id}"
                )
                if interleave:
                    yield
                commit_ms = txn.commit()
            except TransactionConflictError:
                stats["conflicts"] += 1
            except WriterCrashError:
                # The writer "died" mid-publish; a fresh coordinator sweep
                # stands in for the restart. The transaction may still have
                # committed (crash after the marker landed) — honor the
                # marker instead of double-applying.
                stats["crashes"] += 1
                report = _absorb_transients(platform.txn.recover)
                stats["recovery_sweeps"] += 1
                stats["rolled_forward"] += len(report.rolled_forward)
                stats["rolled_back"] += len(report.rolled_back)
                state, commit_ms = _absorb_transients(
                    lambda: platform.txn.status(txn.txn_id)
                )
                if state == COMMITTED:
                    stats["commits"] += 1
                    stats["timeline"].append(_commit_entry(txn, order_id, amount, commit_ms))
                    break
            except TransactionAbortedError:
                stats["aborts"] += 1
            except TransientError:
                # A retry budget ran dry mid-statement; drop the open
                # transaction (nothing durable exists) and try again.
                stats["transient_failures"] += 1
                txn.abort()
            else:
                stats["commits"] += 1
                stats["timeline"].append(_commit_entry(txn, order_id, amount, commit_ms))
                break
            if attempt >= max_attempts:
                stats["gave_up"] += 1
                break
        yield


def _commit_entry(txn, order_id: int, amount: float, commit_ms: float) -> dict:
    return {
        "txn_id": txn.txn_id,
        "writer": str(txn.principal),
        "order_id": order_id,
        "amount": amount,
        "commit_ms": round(commit_ms, 3),
    }


def run_txn_workload(
    seed: int = 0,
    writers: int = 4,
    txns_per_writer: int = 3,
    orders: int = 4,
    rate: float = 0.0,
    plans: list[str] | None = None,
    check_every: int = 7,
    max_attempts: int = 40,
) -> dict[str, Any]:
    """Run the full chaos workload; returns the deterministic report.

    ``violations`` empty and ``dangling_intents`` zero are the pass
    condition; everything else is accounting. ``plans`` overrides the
    default :func:`chaos_plan` mix with explicit CLI-style fault specs.
    """
    platform, admin = build_txn_platform(orders=orders)
    principals = [
        platform.create_user(
            f"writer{i}", [Role.DATA_EDITOR, Role.JOB_USER, Role.CONNECTION_USER]
        )
        for i in range(writers)
    ]
    # Force coordinator creation (and its recovery sweep) before chaos.
    platform.txn
    if plans:
        plan = FaultPlan.parse(plans, seed=seed)
    else:
        plan = chaos_plan(rate, seed)
    platform.ctx.faults.install(plan)

    stats: dict[str, Any] = {
        "commits": 0, "conflicts": 0, "crashes": 0, "aborts": 0,
        "transient_failures": 0, "gave_up": 0, "recovery_sweeps": 0,
        "rolled_forward": 0, "rolled_back": 0, "timeline": [],
    }
    generators = [
        _writer(platform, principals[i], i, txns_per_writer, orders, max_attempts, stats)
        for i in range(writers)
    ]
    live = list(range(writers))
    rng = random.Random(seed)
    steps = 0
    midflight_checks = 0
    violations: list[str] = []
    while live:
        index = rng.choice(live)
        try:
            next(generators[index])
        except StopIteration:
            live.remove(index)
        steps += 1
        if steps % check_every == 0:
            midflight_checks += 1
            violations.extend(
                check_invariant(platform, admin, label=f"midflight@step{steps}")
            )

    # Final sweep: nothing a dead writer left behind may survive it.
    final_report = _absorb_transients(platform.txn.recover)
    stats["recovery_sweeps"] += 1
    stats["rolled_forward"] += len(final_report.rolled_forward)
    stats["rolled_back"] += len(final_report.rolled_back)
    dangling = _absorb_transients(platform.txn.log.dangling_intents)

    violations.extend(check_invariant(platform, admin, label="final"))
    snapshot_checks = 0
    for entry in stats["timeline"]:
        snapshot_checks += 1
        violations.extend(
            check_invariant(
                platform, admin,
                snapshot_ms=entry["commit_ms"],
                label=f"as-of {entry['txn_id']}",
            )
        )

    final_totals = {
        str(order_id): round(total, 6)
        for order_id, total in sorted(
            _query_rows(platform, admin, "SELECT order_id, total FROM txn.orders", None)
        )
    }
    return {
        "seed": seed,
        "writers": writers,
        "txns_per_writer": txns_per_writer,
        "orders": orders,
        "plan": plans or ([f"txn-chaos:rate={rate:g}"] if rate > 0 else []),
        "commits": stats["commits"],
        "conflicts": stats["conflicts"],
        "crashes": stats["crashes"],
        "aborts": stats["aborts"],
        "transient_failures": stats["transient_failures"],
        "gave_up": stats["gave_up"],
        "recovery": {
            "sweeps": stats["recovery_sweeps"],
            "rolled_forward": stats["rolled_forward"],
            "rolled_back": stats["rolled_back"],
        },
        "dangling_intents": len(dangling),
        "midflight_checks": midflight_checks,
        "snapshot_checks": snapshot_checks,
        "violations": violations,
        "commit_timeline": sorted(
            stats["timeline"], key=lambda e: (e["commit_ms"], e["txn_id"])
        ),
        "final_totals": final_totals,
        "driver_steps": steps,
        "sim_elapsed_ms": round(platform.ctx.clock.now_ms, 3),
    }
