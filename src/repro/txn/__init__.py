"""Multi-table ACID transactions over BLMT + Iceberg (LakeVilla-style).

A small CAS-bounded transaction log on the object store extends the
single-table commit protocols (BLMT's Big Metadata log appends, Iceberg's
pointer CAS) to atomic multi-table publishes with snapshot-isolated reads,
first-writer-wins conflict detection, and a crash-safe recovery sweep.
See DESIGN.md §12 for the log layout and the recovery state machine.
"""

from repro.txn.coordinator import (
    RecoveryReport,
    Transaction,
    TransactionCoordinator,
)
from repro.txn.log import (
    ABORTED,
    COMMITTED,
    INTENT,
    TransactionLog,
    TxnRecord,
)

__all__ = [
    "ABORTED",
    "COMMITTED",
    "INTENT",
    "RecoveryReport",
    "Transaction",
    "TransactionCoordinator",
    "TransactionLog",
    "TxnRecord",
]
