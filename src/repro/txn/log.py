"""The transaction log: one CAS-guarded record per transaction.

Layout under ``{bucket}/{prefix}/``::

    log/txn_000001.json    <- one record per transaction

Each record is created with a conditional PUT (``expected_generation=0``,
so a txn id can never be double-claimed) in the ``INTENT`` state, listing
every per-table commit the transaction plans to publish. State transitions
are generation-matched CAS swaps of the record object::

    INTENT --> COMMITTED   (the atomic publish point; stamps commit_ms)
    INTENT --> ABORTED     (conflict loser, explicit abort, or recovery)

``COMMITTED``/``ABORTED`` are terminal and immutable — the only further
write is the idempotent ``finalized`` stamp on a COMMITTED record once
roll-forward side effects (cache refresh, catalog version bumps) have run.
The marker is the *sole source of truth*: readers and recovery never infer
a transaction's fate from the per-table logs, only from this record — so a
writer can die between any two publish steps without a torn state becoming
visible (the ``txn.crash`` hazard points exercise exactly that).

The CAS budget extends the §3.5 commit-rate tradeoff naturally: the log
shares the object store's per-object pointer-mutation rate limit, so
transaction *markers* are CAS-bounded while per-table BLMT commits stay
memory-speed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    NotFoundError,
    PreconditionFailedError,
    TransactionAbortedError,
)
from repro.objectstore import ObjectStore

#: Transaction states. INTENT is the only non-terminal state.
INTENT = "INTENT"
COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


@dataclass
class TableCommit:
    """One planned per-table commit inside a transaction's intent.

    ``added``/``deleted`` list the file paths the commit publishes and
    retires — enough for recovery to roll an *aborted* Iceberg commit back
    physically (remove its added files) even if later snapshots carried
    them forward. ``base_version`` is the table version (BLMT) or current
    snapshot id (Iceberg) the transaction validated against, recorded for
    audit/debugging of first-writer-wins aborts.
    """

    table_id: str
    format: str  # "blmt" | "iceberg"
    base_version: int
    added: list[str] = field(default_factory=list)
    deleted: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "table_id": self.table_id,
            "format": self.format,
            "base_version": self.base_version,
            "added": list(self.added),
            "deleted": list(self.deleted),
        }

    @staticmethod
    def from_dict(d: dict[str, Any]) -> "TableCommit":
        return TableCommit(
            table_id=d["table_id"],
            format=d["format"],
            base_version=d["base_version"],
            added=list(d["added"]),
            deleted=list(d["deleted"]),
        )


@dataclass
class TxnRecord:
    """The durable state of one transaction (the log object's content)."""

    txn_id: str
    state: str  # INTENT | COMMITTED | ABORTED
    writer: str  # str() of the owning principal
    begin_ms: float
    commit_ms: float = 0.0  # stamped by the INTENT -> COMMITTED CAS
    finalized: bool = False  # roll-forward side effects already ran
    tables: list[TableCommit] = field(default_factory=list)

    def to_json(self) -> bytes:
        doc = {
            "txn_id": self.txn_id,
            "state": self.state,
            "writer": self.writer,
            "begin_ms": self.begin_ms,
            "commit_ms": self.commit_ms,
            "finalized": self.finalized,
            "tables": [t.to_dict() for t in self.tables],
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    @staticmethod
    def from_json(data: bytes) -> "TxnRecord":
        doc = json.loads(data)
        return TxnRecord(
            txn_id=doc["txn_id"],
            state=doc["state"],
            writer=doc["writer"],
            begin_ms=doc["begin_ms"],
            commit_ms=doc["commit_ms"],
            finalized=doc["finalized"],
            tables=[TableCommit.from_dict(t) for t in doc["tables"]],
        )


class TransactionLog:
    """CAS-guarded transaction records in a dedicated log bucket."""

    def __init__(
        self,
        store: ObjectStore,
        bucket: str = "repro-txn-log",
        prefix: str = "log",
    ) -> None:
        self.store = store
        self.bucket = bucket
        self.prefix = prefix.rstrip("/")
        if not store.has_bucket(bucket):
            store.create_bucket(bucket)

    def _key(self, txn_id: str) -> str:
        return f"{self.prefix}/{txn_id}.json"

    # -- writes ---------------------------------------------------------------

    def create_intent(self, record: TxnRecord) -> None:
        """Durably claim ``record.txn_id`` (must-not-exist CAS)."""
        record.state = INTENT
        self.store.put_if_generation(
            self.bucket, self._key(record.txn_id), record.to_json(),
            expected_generation=0,
        )

    def transition(self, txn_id: str, to_state: str, commit_ms: float = 0.0) -> TxnRecord:
        """CAS the record from INTENT to a terminal state.

        Raises :class:`TransactionAbortedError` if the record is no longer
        in INTENT (e.g. recovery aborted it out from under a slow writer) —
        the marker, not the writer's memory, decides the transaction's fate.
        """
        record, generation = self.read(txn_id)
        if record.state != INTENT:
            raise TransactionAbortedError(
                f"transaction {txn_id} is already {record.state}; "
                f"cannot transition to {to_state}"
            )
        record.state = to_state
        if to_state == COMMITTED:
            record.commit_ms = commit_ms
        try:
            self.store.put_if_generation(
                self.bucket, self._key(txn_id), record.to_json(),
                expected_generation=generation,
            )
        except PreconditionFailedError:
            # Someone (recovery) swapped the record between our read and
            # CAS; its verdict wins.
            current, _ = self.read(txn_id)
            raise TransactionAbortedError(
                f"transaction {txn_id} lost the marker race "
                f"(now {current.state})"
            ) from None
        return record

    def mark_finalized(self, txn_id: str) -> TxnRecord:
        """Stamp a COMMITTED record as finalized (idempotent)."""
        record, generation = self.read(txn_id)
        if record.state != COMMITTED:
            raise TransactionAbortedError(
                f"cannot finalize transaction {txn_id} in state {record.state}"
            )
        if record.finalized:
            return record
        record.finalized = True
        self.store.put_if_generation(
            self.bucket, self._key(txn_id), record.to_json(),
            expected_generation=generation,
        )
        return record

    # -- reads ----------------------------------------------------------------

    def read(self, txn_id: str) -> tuple[TxnRecord, int]:
        """(record, object generation) for one transaction.

        Retried as a unit: the log is consulted by readers and recovery,
        which must survive the same storage transients chaos plans aim at
        data files. NotFoundError passes through (it is an answer, not a
        failure — see :meth:`status`)."""
        key = self._key(txn_id)

        def attempt() -> tuple[TxnRecord, int]:
            meta = self.store.head_object(self.bucket, key)
            data = self.store.get_object(self.bucket, key)
            return TxnRecord.from_json(data), meta.generation

        return self.store.ctx.with_retry("txn.log.read", attempt)

    def status(self, txn_id: str) -> tuple[str, float]:
        """(state, commit_ms) — what readers resolve tagged commits with.

        A txn id with no record (writer died before the intent PUT landed)
        reads as ABORTED: nothing tagged with it can ever become visible.
        """
        try:
            record, _ = self.read(txn_id)
        except NotFoundError:
            return ABORTED, 0.0
        return record.state, record.commit_ms

    def entries(self) -> list[TxnRecord]:
        """Every transaction record, ordered by txn id (deterministic).

        The listing and each record read retry *independently* — a sweep
        over N records must not re-roll the whole pass because one GET
        hiccuped, or recovery would get less reliable as the log grows."""
        ctx = self.store.ctx
        objects = ctx.with_retry(
            "txn.log.list",
            lambda: list(self.store.list_objects(self.bucket, prefix=f"{self.prefix}/")),
        )
        records = [
            ctx.with_retry(
                "txn.log.read",
                lambda key=obj.key: TxnRecord.from_json(
                    self.store.get_object(self.bucket, key)
                ),
            )
            for obj in objects
        ]
        return sorted(records, key=lambda r: r.txn_id)

    def dangling_intents(self) -> list[TxnRecord]:
        """Records still in INTENT (what recovery must clear)."""
        return [r for r in self.entries() if r.state == INTENT]
