"""Shared machinery for the experiment benchmarks.

Each benchmark in ``benchmarks/`` regenerates one of the paper's
tables/figures (see DESIGN.md's experiment index). The harness provides
platform builders for the standard workloads, a sequential "power run"
runner (the measurement mode Fig. 4 uses), plain-text table printing so
benchmark output reads like the paper's reported series, and a
machine-readable report (``record_bench`` / ``write_bench_report``) the
suite conftest dumps to ``BENCH_PR4.json`` — schema in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cache import CacheConfig
from repro.core import LakehousePlatform
from repro.core.platform import PlatformConfig
from repro.engine.engine import QueryStats
from repro.metastore.catalog import MetadataCacheMode
from repro.obs.trace import summarize_trace
from repro.workloads import tpcds_lite, tpch_lite


@dataclass
class PowerRunResult:
    """Per-query and total simulated timings for one power run."""

    query_stats: dict[str, QueryStats] = field(default_factory=dict)
    total_elapsed_ms: float = 0.0
    # name -> {"total_ms", "span_count", "layers_ms"} when tracing is on.
    trace_summaries: dict[str, dict] = field(default_factory=dict)

    def elapsed(self, name: str) -> float:
        return self.query_stats[name].elapsed_ms


def power_run(engine, queries: dict[str, str], principal) -> PowerRunResult:
    """Run each query sequentially (the paper's TPC-DS power-run mode)."""
    result = PowerRunResult()
    for name, sql in queries.items():
        query_result = engine.execute(sql, principal)
        result.query_stats[name] = query_result.stats
        result.total_elapsed_ms += query_result.stats.elapsed_ms
        if query_result.trace is not None:
            result.trace_summaries[name] = summarize_trace(query_result.trace)
    return result


def _make_platform(data_cache: CacheConfig | None) -> LakehousePlatform:
    if data_cache is None:
        return LakehousePlatform()
    return LakehousePlatform(PlatformConfig(data_cache=data_cache))


def build_tpcds_platform(
    scale: float = 0.3,
    cache_mode: MetadataCacheMode = MetadataCacheMode.AUTOMATIC,
    fact_files: int = 24,
    data_cache: CacheConfig | None = None,
    **engine_flags: Any,
):
    """(platform, admin, engine, queries) over a BigLake TPC-DS lake."""
    platform = _make_platform(data_cache)
    admin = platform.admin_user()
    data = tpcds_lite.generate(scale=scale)
    tpcds_lite.load_as_biglake(
        platform, admin, data, cache_mode=cache_mode, fact_files=fact_files
    )
    engine = platform.home_engine
    for flag, value in engine_flags.items():
        setattr(engine, flag, value)
    return platform, admin, engine, tpcds_lite.queries()


def build_tpch_platform(
    scale: float = 0.3,
    cache_mode: MetadataCacheMode = MetadataCacheMode.AUTOMATIC,
    data_cache: CacheConfig | None = None,
    lineitem_files: int = 16,
    **engine_flags: Any,
):
    platform = _make_platform(data_cache)
    admin = platform.admin_user()
    data = tpch_lite.generate(scale=scale)
    tpch_lite.load_as_biglake(
        platform, admin, data, cache_mode=cache_mode, lineitem_files=lineitem_files
    )
    engine = platform.home_engine
    for flag, value in engine_flags.items():
        setattr(engine, flag, value)
    return platform, admin, engine, tpch_lite.queries()


# --------------------------------------------------------------------------
# Machine-readable bench report (BENCH_PR4.json)
# --------------------------------------------------------------------------

#: Accumulates across one pytest session; the benchmarks/ conftest writes
#: it out at session finish. Keyed by bench id ("e1", "e2", ...).
_REPORT: dict[str, dict[str, Any]] = {}

REPORT_SCHEMA_VERSION = 1


def record_bench(bench: str, **fields: Any) -> None:
    """Merge result fields into one bench's report entry.

    Values must be JSON-serializable; simulated times are milliseconds and
    speedups are plain ratios (``4.2`` meaning 4.2x), so downstream tooling
    never parses ``"4.2x"`` strings.
    """
    _REPORT.setdefault(bench, {}).update(fields)


def record_power_run(bench: str, label: str, result: PowerRunResult) -> None:
    """Attach one power run's per-query timings + layer summary to a bench."""
    layers: dict[str, float] = {}
    for summary in result.trace_summaries.values():
        for layer, ms in summary["layers_ms"].items():
            layers[layer] = round(layers.get(layer, 0.0) + ms, 3)
    runs = _REPORT.setdefault(bench, {}).setdefault("runs", {})
    runs[label] = {
        "total_ms": round(result.total_elapsed_ms, 3),
        "queries_ms": {
            name: round(stats.elapsed_ms, 3)
            for name, stats in result.query_stats.items()
        },
        "layers_ms": layers,
    }


def bench_report() -> dict[str, Any]:
    """The report document (shared dict — callers must not mutate it)."""
    return {"schema_version": REPORT_SCHEMA_VERSION, "benches": _REPORT}


def write_bench_report(path: str) -> str | None:
    """Dump the accumulated report as JSON; a no-op when nothing recorded
    (e.g. a ``-k``-filtered run that touched no recording bench)."""
    if not _REPORT:
        return None
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench_report(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table (the benches print these)."""
    formatted_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted_rows)) if formatted_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
