"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    build_tpcds_platform,
    build_tpch_platform,
    format_table,
    power_run,
    PowerRunResult,
)

__all__ = [
    "build_tpcds_platform",
    "build_tpch_platform",
    "format_table",
    "power_run",
    "PowerRunResult",
]
