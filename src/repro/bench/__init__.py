"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    PowerRunResult,
    bench_report,
    build_tpcds_platform,
    build_tpch_platform,
    format_table,
    power_run,
    record_bench,
    record_power_run,
    write_bench_report,
)

__all__ = [
    "PowerRunResult",
    "bench_report",
    "build_tpcds_platform",
    "build_tpch_platform",
    "format_table",
    "power_run",
    "record_bench",
    "record_power_run",
    "write_bench_report",
]
