"""Foreign-cloud data planes: Kubernetes, binary authorization, realms.

§5.1/§5.4/§5.3.5: the Omni data plane runs inside a Kubernetes cluster on
the foreign cloud, hosting Dremel plus the minimal Borg-like dependency
set (Chubby, Stubby/Envelope, the in-memory shuffle tier). Only binaries
built and checksummed by the (simulated) trusted build system may run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cloud import Cloud, Region
from repro.errors import OmniError, VpnPolicyError
from repro.omni.network import RpcPolicy, SecurityRealm, UntrustedProxy, VpnChannel

# The dependency set Dremel needs on a foreign cloud (§5.4).
DATA_PLANE_SERVICES = ["chubby", "envelope", "shuffle", "dremel", "pony-net"]
CONTROL_PLANE_SERVICES = ["job-server", "metadata", "iam", "spanner-catalog"]


class BinaryRegistry:
    """Trusted build system: binaries are registered with their checksum
    at "build" time; pods may only run verified binaries (§5.3.5)."""

    def __init__(self) -> None:
        self._checksums: dict[str, str] = {}

    @staticmethod
    def checksum(binary: bytes) -> str:
        return hashlib.sha256(binary).hexdigest()

    def register(self, name: str, binary: bytes) -> str:
        digest = self.checksum(binary)
        self._checksums[name] = digest
        return digest

    def verify(self, name: str, binary: bytes) -> bool:
        expected = self._checksums.get(name)
        return expected is not None and expected == self.checksum(binary)


@dataclass
class Pod:
    name: str
    service: str
    binary_name: str
    identity: str  # realm-scoped service user
    running: bool = True


class KubernetesCluster:
    """A (very) small Kubernetes: pods run verified binaries only."""

    def __init__(self, region: Region, binaries: BinaryRegistry, realm: SecurityRealm) -> None:
        self.region = region
        self.binaries = binaries
        self.realm = realm
        self.pods: list[Pod] = []

    def launch_pod(self, service: str, binary_name: str, binary: bytes) -> Pod:
        """Schedule a pod; binary authorization gates admission."""
        if not self.binaries.verify(binary_name, binary):
            raise OmniError(
                f"binary authorization rejected {binary_name!r}: checksum not "
                "registered by the trusted build system (§5.3.5)"
            )
        pod = Pod(
            name=f"{service}-{len(self.pods)}",
            service=service,
            binary_name=binary_name,
            identity=self.realm.service_user(service),
        )
        self.pods.append(pod)
        return pod

    def pods_for(self, service: str) -> list[Pod]:
        return [p for p in self.pods if p.service == service and p.running]


@dataclass
class OmniRegion:
    """One deployed Omni region: engine + cluster + networking."""

    region: Region
    engine: "object"  # QueryEngine
    cluster: KubernetesCluster
    channel: VpnChannel
    proxy: UntrustedProxy
    realm: SecurityRealm


@dataclass
class OmniDeployment:
    """All Omni regions of a platform, plus the shared build registry."""

    platform: "object"
    binaries: BinaryRegistry = field(default_factory=BinaryRegistry)
    regions: dict[str, OmniRegion] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # "Build" the data-plane binaries once, inside the trusted system.
        for service in DATA_PLANE_SERVICES:
            self.binaries.register(service, _binary_for(service))

    def deploy_region(self, region: Region, engine_slots: int | None = None) -> OmniRegion:
        """Bring up a foreign-cloud Omni region (§5.1).

        Deploys object storage, the Kubernetes cluster with the verified
        Dremel dependency set, the VPN channel back to the GCP control
        plane, the untrusted proxy, and a realm-isolated engine.
        """
        if region.cloud is Cloud.GCP:
            raise OmniError("Omni regions are non-GCP; GCP regions deploy natively")
        if region.location in self.regions:
            return self.regions[region.location]
        platform = self.platform
        platform.add_region(region)
        realm = SecurityRealm(region.location)
        cluster = KubernetesCluster(region, self.binaries, realm)
        for service in DATA_PLANE_SERVICES:
            cluster.launch_pod(service, service, _binary_for(service))

        policy = RpcPolicy()
        control = platform.config.home_region.location
        channel = VpnChannel(platform.ctx, control, region.location, policy)
        # Static rules: the job server may call the data plane's dremel;
        # data-plane identities may call back only via allowed services.
        policy.allow("dremel", "job-server@gcp")
        for service in CONTROL_PLANE_SERVICES:
            policy.allow(service, realm.service_user("dremel"))
        proxy = UntrustedProxy(channel, realm)

        engine = platform.add_engine(region, name=f"omni-{region.location.replace('/', '-')}")
        if engine_slots:
            engine.slots = engine_slots
        omni_region = OmniRegion(
            region=region, engine=engine, cluster=cluster,
            channel=channel, proxy=proxy, realm=realm,
        )
        self.regions[region.location] = omni_region
        return omni_region

    def region_for(self, location: str) -> OmniRegion:
        try:
            return self.regions[location]
        except KeyError:
            raise OmniError(f"no Omni region deployed at {location!r}") from None


def _binary_for(service: str) -> bytes:
    """Deterministic stand-in for a built binary."""
    return f"ELF::{service}::v1".encode()


def validate_cross_realm_isolation(a: OmniRegion, b: OmniRegion) -> None:
    """Assert two regions' realms are disjoint (used by tests): a worker
    identity from region A must be rejected by region B's proxy."""
    foreign_worker = a.realm.service_user("dremel")
    if b.realm.owns(foreign_worker):
        raise VpnPolicyError("realms are not isolated")
