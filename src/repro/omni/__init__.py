"""Omni: BigQuery's data plane on non-GCP clouds (§5).

* :mod:`repro.omni.network` — the QUIC-style zero-trust VPN between the
  GCP control plane and foreign-cloud data planes: policy engine,
  per-query session tokens, and the untrusted proxy (§5.2, §5.3.2).
* :mod:`repro.omni.deployment` — foreign-cloud data planes: a Kubernetes
  cluster simulation hosting Dremel + the Borg-like dependency set
  (Chubby, Envelope, shuffle), binary authorization (§5.3.5), and
  per-region security realms (§5.3.3).
* :mod:`repro.omni.control_plane` — the Job Server: query validation, IAM
  authorization, metadata lookup, per-query credential downscoping
  (§5.3.1), and routing to the engine colocated with the data.
* :mod:`repro.omni.crosscloud` — cross-cloud queries (§5.6.1): regional
  subqueries with filter pushdown, results streamed back to the primary
  region, local join over temp tables.
* :mod:`repro.omni.ccmv` — cross-cloud materialized views (§5.6.2):
  partition-level incremental replication from foreign clouds to GCP.
"""

from repro.omni.network import (
    RpcPolicy,
    SecurityRealm,
    SessionToken,
    UntrustedProxy,
    VpnChannel,
)
from repro.omni.deployment import (
    BinaryRegistry,
    KubernetesCluster,
    OmniDeployment,
    OmniRegion,
)
from repro.omni.control_plane import JobServer
from repro.omni.crosscloud import CrossCloudQueryPlanner
from repro.omni.ccmv import CrossCloudMaterializedView
from repro.omni.release import Release, ReleaseKind, RolloutManager
from repro.omni.access import (
    CorporateSshCa,
    ProductionAccessService,
    ProductionCredential,
    SecurityKey,
    SshCertificate,
)

__all__ = [
    "RpcPolicy",
    "SecurityRealm",
    "SessionToken",
    "UntrustedProxy",
    "VpnChannel",
    "BinaryRegistry",
    "KubernetesCluster",
    "OmniDeployment",
    "OmniRegion",
    "JobServer",
    "CrossCloudQueryPlanner",
    "CrossCloudMaterializedView",
    "Release",
    "ReleaseKind",
    "RolloutManager",
    "CorporateSshCa",
    "ProductionAccessService",
    "ProductionCredential",
    "SecurityKey",
    "SshCertificate",
]
