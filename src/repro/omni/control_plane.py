"""The Omni control plane: the Job Server (§5.1, §5.3.1).

All query requests enter through the Job Server on GCP: it validates the
SQL, authorizes the principal, looks up table metadata to find where the
data lives, downscopes credentials to the exact paths the query needs, and
forwards execution to the engine colocated with the data — over the VPN
when that engine runs in a foreign cloud. Queries spanning locations hand
off to the cross-cloud planner (§5.6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessDeniedError, AnalysisError
from repro.metastore.catalog import TableInfo
from repro.security.connections import ScopedCredential
from repro.security.iam import Permission, Principal
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement

from repro.omni.crosscloud import CrossCloudQueryPlanner
from repro.omni.deployment import OmniDeployment


@dataclass
class JobInfo:
    """Bookkeeping for one submitted job."""

    job_id: str
    principal: Principal
    locations: list[str]
    scoped_credentials: list[ScopedCredential] = field(default_factory=list)
    routed_engine: str = ""
    cross_cloud: bool = False


class JobServer:
    """The BigQuery public API front end for a multi-cloud deployment."""

    def __init__(self, platform, omni: OmniDeployment) -> None:
        self.platform = platform
        self.omni = omni
        self.jobs: list[JobInfo] = []
        self._job_counter = 0

    def submit(self, sql: str, principal: Principal):
        """Validate, authorize, scope credentials, route, execute."""
        statement = parse_statement(sql)  # query validation
        project = self.platform.config.project
        decision = self.platform.iam.is_allowed(
            principal, Permission.JOBS_CREATE, f"projects/{project}"
        )
        self.platform.audit.record(
            principal, "job.submit", f"projects/{project}", decision.allowed,
            decision.reason,
        )
        if not decision.allowed:
            raise AccessDeniedError(f"{principal} cannot create jobs: {decision.reason}")

        self._job_counter += 1
        job = JobInfo(
            job_id=f"job-{self._job_counter:08d}",
            principal=principal,
            locations=[],
        )
        self.jobs.append(job)

        if not isinstance(statement, ast.Select):
            # DML executes in the home region (the catalog's home).
            job.routed_engine = self.platform.home_engine.name
            return self.platform.home_engine.execute(sql, principal)

        tables = self._referenced_tables(statement)
        job.scoped_credentials = self._downscope_credentials(tables)
        locations = sorted({t.location for t in tables})
        job.locations = locations
        home = self.platform.config.home_region.location

        try:
            if len(locations) > 1:
                job.cross_cloud = True
                planner = CrossCloudQueryPlanner(self.platform, self.omni)
                primary = self.platform.engine_in(home)
                job.routed_engine = primary.name
                return planner.execute(statement, principal, primary)

            target_location = locations[0] if locations else home
            engine = self.platform.engine_in(target_location)
            job.routed_engine = engine.name
            if target_location != home:
                self._forward_over_vpn(job, sql, target_location)
            result = engine.execute(statement, principal)
            if target_location != home:
                self._return_over_vpn(job, result, target_location)
            return result
        finally:
            for credential in job.scoped_credentials:
                self.platform.connections.revoke(credential)

    # ------------------------------------------------------------------

    def _referenced_tables(self, select: ast.Select) -> list[TableInfo]:
        tables: list[TableInfo] = []

        def walk_from(item) -> None:
            if item is None:
                return
            if isinstance(item, ast.TableRef):
                tables.append(self.platform.catalog.resolve(item.path))
            elif isinstance(item, ast.SubqueryRef):
                walk_select(item.query)
            elif isinstance(item, ast.TvfRef):
                if item.input_table is not None:
                    tables.append(self.platform.catalog.resolve(item.input_table))
                if item.input_query is not None:
                    walk_select(item.input_query)
            elif isinstance(item, ast.Join):
                walk_from(item.left)
                walk_from(item.right)

        def walk_select(select: ast.Select) -> None:
            walk_from(select.from_item)
            if select.union_all is not None:
                walk_select(select.union_all)

        walk_select(select)
        return tables

    def _downscope_credentials(self, tables: list[TableInfo]) -> list[ScopedCredential]:
        """§5.3.1: compute the superset of object paths the query touches
        and mint credentials scoped to exactly those paths, per connection."""
        by_connection: dict[str, list[str]] = {}
        for table in tables:
            if table.connection_name is None or table.storage is None:
                continue
            path = f"{table.storage.bucket}/{table.storage.prefix.rstrip('/')}/"
            by_connection.setdefault(table.connection_name, []).append(path)
        credentials = []
        for connection_name, paths in by_connection.items():
            connection = self.platform.connections.get_connection(connection_name)
            credentials.append(
                self.platform.connections.mint_scoped_credential(connection, paths)
            )
        return credentials

    def _forward_over_vpn(self, job: JobInfo, sql: str, location: str) -> None:
        """Ship the query + session token to a foreign-cloud data plane."""
        region = self.omni.regions.get(location)
        if region is None:
            raise AnalysisError(
                f"table data lives in {location!r} but no Omni region is deployed there"
            )
        token = region.channel.mint_session_token(
            job.job_id, allowed_services=["job-server", "metadata", "shuffle"]
        )
        region.channel.ctx.with_retry(
            "vpn.call",
            lambda: region.channel.call(
                "job-server@gcp", "dremel", "ExecuteQuery",
                payload_bytes=len(sql.encode()) + 2048,  # query + creds + token
            ),
        )
        job.cross_cloud = False
        del token  # the data plane holds it for callbacks; modeled in tests

    def _return_over_vpn(self, job: JobInfo, result, location: str) -> None:
        """Stream the (final) result rows back to the control plane."""
        region = self.omni.regions[location]
        result_bytes = sum(b.nbytes() for b in result.batches)
        region.channel.ctx.with_retry(
            "vpn.call",
            lambda: region.channel.call(
                region.realm.service_user("dremel"), "job-server",
                "ReturnResults", payload_bytes=result_bytes, toward_data_plane=False,
            ),
        )
